"""Setuptools entry point.

Minimal metadata kept here (no ``pyproject.toml`` in this repo) so that
``pip install .`` works in offline environments whose pip/setuptools
combination cannot perform PEP 660 editable installs.
"""

from setuptools import find_packages, setup

setup(
    name="sofya-repro",
    version="0.1.0",
    description="Reproduction of SOFYA-style online relation alignment (EDBT'16)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        # The ID-triple indexes use SortedList for their third level; a
        # bisect-based fallback exists but degrades bulk-load complexity.
        "sortedcontainers>=2.0",
    ],
)
