"""Setuptools entry point.

Kept for environments whose pip/setuptools combination cannot perform
PEP 660 editable installs (no ``wheel`` package available offline); all
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
