"""Setuptools entry point.

Minimal metadata kept here (no ``pyproject.toml`` in this repo) so that
``pip install .`` works in offline environments whose pip/setuptools
combination cannot perform PEP 660 editable installs.
"""

from setuptools import find_packages, setup

setup(
    name="sofya-repro",
    version="0.1.0",
    description="Reproduction of SOFYA-style online relation alignment (EDBT'16)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # No hard runtime dependencies: the ID-triple indexes keep their sorted
    # third level in a built-in bisect-maintained list (faster than chunked
    # sorted containers at this store's run lengths), and numpy — when
    # present — only accelerates the bulk-load column sort.
    install_requires=[],
)
