"""Unit tests for scatter/gather evaluation and sharded explain."""

import random

import pytest

from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard import ShardedTripleStore
from repro.sparql import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.scatter import (
    ShardedBGPPlan,
    ShardedQueryEvaluator,
    co_partition_subject,
    evaluate_sharded,
)
from repro.sparql.bindings import Variable
from repro.store import TripleStore

EX = Namespace("http://scatter.test/")


def build_triples(seed=3):
    rng = random.Random(seed)
    triples = [
        Triple(
            EX[f"s{rng.randint(0, 40)}"],
            EX[f"p{rng.randint(0, 4)}"],
            EX[f"o{rng.randint(0, 40)}"],
        )
        for _ in range(500)
    ]
    # Chain-join fodder: objects that are themselves subjects elsewhere.
    triples += [Triple(EX[f"o{i}"], EX.link, EX[f"s{i % 40}"]) for i in range(40)]
    return triples


@pytest.fixture(scope="module")
def stores():
    triples = build_triples()
    return TripleStore(triples=triples), ShardedTripleStore(
        num_shards=4, triples=triples
    )


@pytest.fixture(scope="module")
def evaluator(stores):
    return ShardedQueryEvaluator(stores[1])


def multiset(result):
    from collections import Counter

    return Counter(frozenset(row.items()) for row in result)


class TestCoPartitionAnalysis:
    def where(self, query):
        return parse_query(query).where

    def test_star_query_is_co_partitioned(self):
        group = self.where(
            "SELECT * WHERE { ?s <http://x/p> ?o . ?s <http://x/q> ?o2 }"
        )
        assert co_partition_subject(group) == Variable("s")

    def test_chain_query_is_not(self):
        group = self.where(
            "SELECT * WHERE { ?s <http://x/p> ?o . ?o <http://x/q> ?z }"
        )
        assert co_partition_subject(group) is None

    def test_constant_subject_is_not(self):
        group = self.where("SELECT * WHERE { <http://x/a> <http://x/p> ?o }")
        assert co_partition_subject(group) is None

    def test_values_only_group_is_not(self):
        group = self.where("SELECT * WHERE { VALUES ?s { <http://x/a> } }")
        assert co_partition_subject(group) is None

    def test_optional_and_union_share_subject(self):
        group = self.where(
            "SELECT * WHERE { ?s <http://x/p> ?o "
            "OPTIONAL { ?s <http://x/q> ?o2 } "
            "{ ?s <http://x/r> ?a } UNION { ?s <http://x/t> ?b } }"
        )
        assert co_partition_subject(group) == Variable("s")

    def test_optional_with_foreign_subject_is_not(self):
        group = self.where(
            "SELECT * WHERE { ?s <http://x/p> ?o OPTIONAL { ?o <http://x/q> ?z } }"
        )
        assert co_partition_subject(group) is None

    def test_exists_filter_recurses(self):
        same = self.where(
            "SELECT * WHERE { ?s <http://x/p> ?o "
            "FILTER NOT EXISTS { ?s <http://x/q> ?o } }"
        )
        assert co_partition_subject(same) == Variable("s")
        foreign = self.where(
            "SELECT * WHERE { ?s <http://x/p> ?o "
            "FILTER NOT EXISTS { ?o <http://x/q> ?s } }"
        )
        assert co_partition_subject(foreign) is None


class TestScatterEquivalence:
    QUERIES = [
        "SELECT ?s ?o WHERE { ?s <http://scatter.test/p1> ?o . ?s <http://scatter.test/p2> ?o2 }",
        "SELECT ?s ?o ?z WHERE { ?s <http://scatter.test/p1> ?o . ?o <http://scatter.test/link> ?z }",
        "SELECT DISTINCT ?s WHERE { ?s <http://scatter.test/p1> ?o . ?s <http://scatter.test/p0> ?o2 }",
        "SELECT ?s ?o WHERE { ?s <http://scatter.test/p1> ?o OPTIONAL { ?s <http://scatter.test/p2> ?o2 } }",
        "SELECT ?s WHERE { ?s <http://scatter.test/p1> ?o FILTER NOT EXISTS { ?s <http://scatter.test/p2> ?o } }",
        "SELECT ?s ?p ?o WHERE { VALUES ?s { <http://scatter.test/s1> <http://scatter.test/s20> } ?s ?p ?o }",
        "SELECT (COUNT(*) AS ?c) (COUNT(DISTINCT ?s) AS ?d) WHERE { ?s <http://scatter.test/p1> ?o }",
        "ASK { ?s <http://scatter.test/p3> ?o . ?s <http://scatter.test/p1> ?o2 }",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_single_store_planned_and_naive(self, stores, evaluator, query):
        single, _ = stores
        sharded_result = evaluator.evaluate(query)
        planned = QueryEvaluator(single).evaluate(query)
        naive = QueryEvaluator(single, use_planner=False).evaluate(query)
        if query.startswith("ASK"):
            assert bool(sharded_result) == bool(planned) == bool(naive)
        else:
            assert multiset(sharded_result) == multiset(planned) == multiset(naive)

    def test_limit_returns_valid_subset(self, stores, evaluator):
        single, _ = stores
        query = "SELECT ?s ?o WHERE { ?s <http://scatter.test/p0> ?o } LIMIT 5"
        page = evaluator.evaluate(query)
        assert len(page) == 5
        full = multiset(
            QueryEvaluator(single).evaluate(
                "SELECT ?s ?o WHERE { ?s <http://scatter.test/p0> ?o }"
            )
        )
        for key in multiset(page):
            assert key in full

    def test_convenience_wrapper(self, stores):
        _, sharded = stores
        result = evaluate_sharded(
            sharded, "SELECT ?s WHERE { ?s <http://scatter.test/p1> ?o }"
        )
        assert len(result) == sharded.count(predicate=EX.p1)

    def test_rejects_plain_store(self, stores):
        single, _ = stores
        with pytest.raises(TypeError):
            ShardedQueryEvaluator(single)


class TestShortCircuit:
    def _spy_locals(self, evaluator):
        """Wrap each per-shard evaluator to record which shards evaluate."""
        touched = []

        def wrap(index, original):
            def spy(group, initial):
                touched.append(index)
                return original(group, initial)

            return spy

        for index, local in enumerate(evaluator._locals):
            local._evaluate_group = wrap(index, local._evaluate_group)
        return touched

    def test_ask_stops_at_first_contributing_shard(self, stores):
        _, sharded = stores
        evaluator = ShardedQueryEvaluator(sharded)
        touched = self._spy_locals(evaluator)
        assert evaluator.evaluate(
            "ASK { ?s <http://scatter.test/p1> ?o . ?s <http://scatter.test/p2> ?o2 }"
        )
        plan = evaluator.explain(
            "SELECT * WHERE { ?s <http://scatter.test/p1> ?o . ?s <http://scatter.test/p2> ?o2 }"
        )
        assert plan.mode == "scatter"
        # The first shard yielding a solution satisfies ASK; later shards
        # must never have been entered.
        assert touched == [min(plan.shards)]

    def test_limit_skips_trailing_shards(self, stores):
        _, sharded = stores
        evaluator = ShardedQueryEvaluator(sharded)
        touched = self._spy_locals(evaluator)
        result = evaluator.evaluate(
            "SELECT ?s ?o WHERE { ?s <http://scatter.test/p1> ?o } LIMIT 2"
        )
        assert len(result) == 2
        assert len(set(touched)) < sharded.num_shards


class TestShardedExplain:
    def test_star_query_scatters(self, evaluator):
        plan = evaluator.explain(
            "SELECT ?s ?o WHERE { ?s <http://scatter.test/p1> ?o . "
            "?s <http://scatter.test/p2> ?o2 }"
        )
        assert isinstance(plan, ShardedBGPPlan)
        assert plan.mode == "scatter"
        assert plan.subject_variable == Variable("s")
        assert plan.shard_count == 4
        assert len(plan.routing) == len(plan.steps) == 2
        assert plan.operators() == plan.plan.operators()
        for route in plan.routing:
            assert set(route.probed) | set(route.pruned) == set(range(4))

    def test_chain_query_ships(self, evaluator):
        plan = evaluator.explain(
            "SELECT * WHERE { ?s <http://scatter.test/p1> ?o . "
            "?o <http://scatter.test/link> ?z }"
        )
        assert plan.mode == "ship"
        # The link relation (40 triples) is the cheaper broadcast side, so
        # the p1 patterns anchor on ?s and the link pattern ships.
        assert plan.subject_variable == Variable("s")
        assert plan.fallback_reason is None
        shipped = [route for route in plan.routing if route.shipped]
        assert len(shipped) == 1
        assert "broadcast" in plan.describe()

    def test_constant_subject_chain_ships(self, evaluator):
        # A constant-subject pattern can ride along as a broadcast table:
        # the variable-subject pattern anchors the scatter.
        plan = evaluator.explain(
            "SELECT * WHERE { <http://scatter.test/s1> "
            "<http://scatter.test/p1> ?o . ?o <http://scatter.test/link> ?z }"
        )
        assert plan.mode == "ship"
        assert plan.subject_variable == Variable("o")

    def test_mixed_shape_falls_back_with_reason(self, evaluator):
        plan = evaluator.explain(
            "SELECT * WHERE { ?s <http://scatter.test/p1> ?o "
            "OPTIONAL { ?o <http://scatter.test/link> ?z } }"
        )
        assert plan.mode == "global"
        assert plan.subject_variable is None
        assert "not co-partitioned" in plan.fallback_reason
        assert "join shipping rejected" in plan.fallback_reason
        assert "mixes non-pattern elements" in plan.fallback_reason
        assert "fallback:" in plan.describe()

    def test_disconnected_product_falls_back_with_reason(self, evaluator):
        plan = evaluator.explain(
            "SELECT * WHERE { ?s <http://scatter.test/p1> ?o . "
            "?x <http://scatter.test/p2> ?y }"
        )
        assert plan.mode == "global"
        assert "connects every pattern" in plan.fallback_reason

    def test_broadcast_limit_rejects_with_reason(self, stores, monkeypatch):
        _, sharded = stores
        monkeypatch.setenv("REPRO_BROADCAST_LIMIT", "1")
        fresh = ShardedQueryEvaluator(sharded)
        plan = fresh.explain(
            "SELECT * WHERE { ?s <http://scatter.test/p1> ?o . "
            "?o <http://scatter.test/link> ?z }"
        )
        assert plan.mode == "global"
        assert "broadcast side too large" in plan.fallback_reason
        assert "REPRO_BROADCAST_LIMIT" in plan.fallback_reason

    def test_grouped_aggregate_with_limit_reports_parent_fold(self, evaluator):
        plan = evaluator.explain(
            "SELECT ?o (COUNT(?s) AS ?c) WHERE "
            "{ ?s <http://scatter.test/p1> ?o . ?s <http://scatter.test/p2> ?o2 } "
            "GROUP BY ?o LIMIT 2"
        )
        assert plan.mode == "scatter"
        assert "LIMIT/OFFSET" in plan.fallback_reason

    def test_non_count_aggregate_reports_parent_fold(self, evaluator):
        plan = evaluator.explain(
            "SELECT (STR(?o) AS ?x) (COUNT(*) AS ?c) WHERE "
            "{ ?s <http://scatter.test/p1> ?o . ?s <http://scatter.test/p2> ?o2 }"
        )
        assert plan.mode == "scatter"
        assert "cannot fold" in plan.fallback_reason

    def test_foldable_aggregate_has_no_fallback_reason(self, evaluator):
        plan = evaluator.explain(
            "SELECT (COUNT(*) AS ?c) (COUNT(DISTINCT ?o) AS ?d) WHERE "
            "{ ?s <http://scatter.test/p1> ?o . ?s <http://scatter.test/p2> ?o2 }"
        )
        assert plan.mode == "scatter"
        assert plan.fallback_reason is None

    def test_values_narrow_routing(self, stores, evaluator):
        _, sharded = stores
        subject = EX.s1
        home = sharded.shard_index_for_subject(sharded.term_id(subject))
        plan = evaluator.explain(
            f"SELECT ?p ?o WHERE {{ VALUES ?s {{ <{subject.value}> }} ?s ?p ?o }}"
        )
        assert plan.mode == "scatter"
        assert plan.shards == (home,)

    def test_describe_renders_routing(self, evaluator):
        plan = evaluator.explain(
            "SELECT ?s ?o WHERE { ?s <http://scatter.test/p1> ?o . "
            "?s <http://scatter.test/p2> ?o2 }"
        )
        text = plan.describe()
        assert "scatter on ?s" in text
        assert "shards probed=" in text and "pruned=" in text

    def test_unknown_constant_prunes_everything(self, evaluator):
        plan = evaluator.explain(
            "SELECT ?s WHERE { ?s <http://scatter.test/never_used> ?o }"
        )
        assert plan.shards == ()


class TestStalePlanInvalidation:
    """Regression: plans must refresh after mutations that keep the size."""

    def test_plan_cache_refreshes_after_equal_size_mutation(self):
        store = TripleStore(
            triples=[Triple(EX[f"a{i}"], EX.p, EX[f"b{i}"]) for i in range(10)]
        )
        evaluator = QueryEvaluator(store)
        query = "SELECT ?s WHERE { ?s <http://scatter.test/p> ?o . ?s <http://scatter.test/q> ?o2 }"
        before = evaluator.explain(query)
        assert before.steps[0].estimate == 0.0  # q has no facts yet
        # Swap one p-fact for a q-fact: size unchanged, content different.
        store.remove(Triple(EX.a0, EX.p, EX.b0))
        store.add(Triple(EX.a1, EX.q, EX.b1))
        assert len(store) == 10
        after = evaluator.explain(query)
        assert after is not before
        assert any(step.estimate > 0 for step in after.steps)
        # And the refreshed plan yields the (now non-empty) answer.
        result = evaluator.evaluate(query)
        assert len(result) == 1
