"""Unit tests for endpoint access policies and the query log."""

import pytest

from repro.endpoint.log import QueryLog, QueryRecord
from repro.endpoint.policy import AccessPolicy


class TestAccessPolicy:
    def test_defaults(self):
        policy = AccessPolicy()
        assert policy.max_queries is None
        assert policy.max_result_rows == 10_000
        assert policy.allow_full_scan

    def test_unlimited_preset(self):
        policy = AccessPolicy.unlimited()
        assert policy.max_result_rows is None
        assert policy.estimated_cost(1000) == 0.0

    def test_public_endpoint_preset(self):
        policy = AccessPolicy.public_endpoint()
        assert not policy.allow_full_scan
        assert policy.max_result_rows == 10_000

    def test_strict_preset(self):
        policy = AccessPolicy.strict(max_queries=7)
        assert policy.max_queries == 7
        assert not policy.allow_full_scan

    def test_estimated_cost(self):
        policy = AccessPolicy(latency_per_query=0.5, latency_per_row=0.01)
        assert policy.estimated_cost(10) == pytest.approx(0.6)

    def test_negative_max_queries_rejected(self):
        with pytest.raises(ValueError):
            AccessPolicy(max_queries=-1)

    def test_zero_result_rows_rejected(self):
        with pytest.raises(ValueError):
            AccessPolicy(max_result_rows=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            AccessPolicy(latency_per_query=-0.1)


class TestQueryLog:
    def _record(self, rows=5, truncated=False, form="SELECT", seconds=0.1):
        return QueryRecord(
            query="SELECT ...", form=form, row_count=rows, truncated=truncated,
            virtual_seconds=seconds,
        )

    def test_accumulates_records(self):
        log = QueryLog()
        log.record(self._record(rows=3))
        log.record(self._record(rows=7, form="ASK"))
        assert log.query_count == 2
        assert log.total_rows == 10
        assert len(list(log)) == 2

    def test_virtual_time_and_truncation(self):
        log = QueryLog()
        log.record(self._record(seconds=0.25, truncated=True))
        log.record(self._record(seconds=0.75))
        assert log.total_virtual_seconds == pytest.approx(1.0)
        assert log.truncated_count == 1

    def test_by_form(self):
        log = QueryLog()
        log.record(self._record(form="SELECT"))
        log.record(self._record(form="SELECT"))
        log.record(self._record(form="ASK"))
        assert log.by_form() == {"SELECT": 2, "ASK": 1}

    def test_snapshot_and_reset(self):
        log = QueryLog()
        log.record(self._record(rows=4))
        snapshot = log.snapshot()
        assert snapshot["queries"] == 1.0
        assert snapshot["rows"] == 4.0
        log.reset()
        assert log.query_count == 0
