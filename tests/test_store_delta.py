"""Snapshot delta chains: append-only persistence for mutation bursts.

``save_delta`` writes only the terms interned since the chain tip plus
the net added/removed ID triples; ``open`` replays the chain
transparently and ``compact`` folds it back into a fresh base.  These
tests pin the crash-safety contracts: stale deltas of a crashed compact
are ignored via the ``base_chain`` stamp (single-file chains), while the
sharded directory's atomically-replaced manifest is the sole authority
over which delta files apply.
"""

import pytest

from repro.errors import StoreError
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.store.persist import _read_manifest
from repro.store.triplestore import TripleStore

EX = Namespace("http://delta.test/")


def _seed_triples(subjects=20, predicates=3):
    return [
        Triple(EX[f"s{s:03d}"], EX[f"p{p}"], EX[f"o{s % 7}"])
        for s in range(subjects)
        for p in range(predicates)
    ]


def _burst(count, start=0, tag="new"):
    """Triples whose subjects are brand-new terms (intern after the base)."""
    return [
        Triple(EX[f"zz_{tag}{start + i}"], EX.p0, EX[f"o{i % 5}"])
        for i in range(count)
    ]


def _delta_files(path):
    return sorted(
        p.name for p in path.parent.iterdir() if p.name.startswith(path.name + ".d")
    )


class TestStoreDelta:
    def test_delta_round_trip(self, tmp_path):
        store = TripleStore(triples=_seed_triples())
        path = tmp_path / "base.snap"
        store.save(path)
        for triple in _burst(30):
            store.add(triple)
        assert store.save_delta(path) is True
        assert _delta_files(path) == ["base.snap.d1"]
        assert set(TripleStore.open(path)) == set(store)

    def test_multiple_deltas_chain(self, tmp_path):
        store = TripleStore(triples=_seed_triples())
        path = tmp_path / "base.snap"
        store.save(path)
        for round_number in range(3):
            for triple in _burst(10, start=round_number * 100):
                store.add(triple)
            assert store.save_delta(path) is True
        assert _delta_files(path) == [
            "base.snap.d1",
            "base.snap.d2",
            "base.snap.d3",
        ]
        assert set(TripleStore.open(path)) == set(store)

    def test_removal_delta_round_trips(self, tmp_path):
        triples = _seed_triples()
        store = TripleStore(triples=triples)
        path = tmp_path / "base.snap"
        store.save(path)
        for triple in triples[:10]:
            store.remove(triple)
        store.add(Triple(EX.zz_fresh, EX.p0, EX.o0))
        assert store.save_delta(path) is True
        reopened = TripleStore.open(path)
        assert set(reopened) == set(store)
        assert len(reopened) == len(triples) - 10 + 1

    def test_clean_store_writes_nothing(self, tmp_path):
        store = TripleStore(triples=_seed_triples())
        path = tmp_path / "base.snap"
        store.save(path)
        assert store.save_delta(path) is False
        assert _delta_files(path) == []

    def test_delta_without_base_raises(self, tmp_path):
        store = TripleStore(triples=_seed_triples())
        store.add(Triple(EX.zz, EX.p0, EX.o0))
        with pytest.raises(StoreError):
            store.save_delta(tmp_path / "never-saved.snap")

    def test_lost_journal_raises(self, tmp_path):
        store = TripleStore(triples=_seed_triples())
        path = tmp_path / "base.snap"
        store.save(path)
        store.clear()  # drops the journal
        store.add(Triple(EX.zz, EX.p0, EX.o0))
        with pytest.raises(StoreError):
            store.save_delta(path)

    def test_foreign_base_raises(self, tmp_path):
        TripleStore(triples=_seed_triples()).save(tmp_path / "base.snap")
        other = TripleStore(
            triples=[Triple(EX.alien, EX.p0, EX[f"o{i}"]) for i in range(5)]
        )
        other.add(Triple(EX.zz, EX.p0, EX.o0))
        with pytest.raises(StoreError):
            other.save_delta(tmp_path / "base.snap")

    def test_compact_folds_chain(self, tmp_path):
        store = TripleStore(triples=_seed_triples())
        path = tmp_path / "base.snap"
        store.save(path)
        for round_number in range(2):
            for triple in _burst(10, start=round_number * 100):
                store.add(triple)
            store.save_delta(path)
        store.compact(path)
        assert _delta_files(path) == []
        assert set(TripleStore.open(path)) == set(store)
        # The compacted base is a fresh chain tip: new deltas keep working.
        store.add(Triple(EX.zz_after, EX.p0, EX.o0))
        assert store.save_delta(path) is True
        assert set(TripleStore.open(path)) == set(store)

    def test_stale_delta_after_crashed_compact_is_ignored(self, tmp_path):
        store = TripleStore(triples=_seed_triples())
        path = tmp_path / "base.snap"
        store.save(path)
        for triple in _burst(10):
            store.add(triple)
        store.save_delta(path)
        # Simulate a compact that crashed between writing the new base
        # and unlinking the folded delta: the old .d1 survives but its
        # base_chain no longer continues the new base's chain stamp.
        stale = (path.parent / "base.snap.d1").read_bytes()
        store.compact(path)
        (path.parent / "base.snap.d1").write_bytes(stale)
        reopened = TripleStore.open(path)
        assert set(reopened) == set(store)


class TestShardedDelta:
    def _saved_store(self, tmp_path, num_shards=2):
        store = ShardedTripleStore(num_shards=num_shards)
        store.bulk_load(_seed_triples())
        directory = tmp_path / "shd"
        store.save(directory)
        return store, directory

    def test_delta_touches_only_changed_shards(self, tmp_path):
        store, directory = self._saved_store(tmp_path)
        before = {p.name for p in directory.iterdir()}
        # New subjects intern above every existing ID, so they all route
        # to the last shard's open range: only that shard gets a delta.
        for triple in _burst(25):
            store.add(triple)
        assert store.save_delta(directory) is True
        added = {p.name for p in directory.iterdir()} - before
        assert "shard1-d1-g1.snap" in added
        assert not any(name.startswith("shard0-d") for name in added)
        assert "dictionary-d1-g1.snap" in added  # new terms were interned
        assert set(ShardedTripleStore.open(directory)) == set(store)

    def test_multi_delta_chain_replays_every_link(self, tmp_path):
        # Regression: per-shard deltas carry no base_chain stamp (the
        # manifest is authoritative), and replay used to silently drop
        # every delta after the first when it tried to chain-validate
        # them anyway.
        store, directory = self._saved_store(tmp_path)
        for round_number in range(3):
            for triple in _burst(20, start=round_number * 100):
                store.add(triple)
            assert store.save_delta(directory) is True
        manifest = _read_manifest(directory)
        assert len(manifest["shards"][-1]["deltas"]) == 3
        reopened = ShardedTripleStore.open(directory)
        assert set(reopened) == set(store)
        assert len(reopened) == len(store)

    def test_clean_sharded_store_writes_nothing(self, tmp_path):
        store, directory = self._saved_store(tmp_path)
        before = {p.name for p in directory.iterdir()}
        assert store.save_delta(directory) is False
        assert {p.name for p in directory.iterdir()} == before

    def test_delta_into_foreign_directory_raises(self, tmp_path):
        store, _ = self._saved_store(tmp_path)
        store.add(Triple(EX.zz, EX.p0, EX.o0))
        with pytest.raises(StoreError):
            store.save_delta(tmp_path / "elsewhere")

    def test_delta_after_journals_consumed_elsewhere_raises(self, tmp_path):
        # A full save into a *different* directory resets the journals;
        # a later delta into the original directory can no longer bridge
        # its manifest to the live state and must refuse (silently
        # writing one would record the new triple count without the
        # triples).
        store, directory = self._saved_store(tmp_path)
        for triple in _burst(25):
            store.add(triple)
        store.save(tmp_path / "elsewhere")
        store._snapshot_dir = directory  # point back at the stale snapshot
        with pytest.raises(StoreError, match="consumed by a save"):
            store.save_delta(directory)
        # The fallback the error demands really does repair the snapshot.
        store.save(directory)
        assert set(ShardedTripleStore.open(directory)) == set(store)

    def test_compact_folds_sharded_chains(self, tmp_path):
        store, directory = self._saved_store(tmp_path)
        for round_number in range(2):
            for triple in _burst(20, start=round_number * 100):
                store.add(triple)
            store.save_delta(directory)
        store.compact(directory)
        manifest = _read_manifest(directory)
        assert all(entry["deltas"] == [] for entry in manifest["shards"])
        assert manifest["dictionary_deltas"] == []
        # Folded chain files were swept with the manifest replacement.
        assert not any("-d1-" in p.name for p in directory.iterdir())
        assert set(ShardedTripleStore.open(directory)) == set(store)

    def test_orphan_delta_files_are_ignored(self, tmp_path):
        # A crash after writing a delta file but before the manifest
        # replacement leaves an orphan; the manifest names exactly the
        # files that apply, so the orphan must not replay.
        store, directory = self._saved_store(tmp_path)
        (directory / "shard0-d1-g1.snap").write_bytes(b"torn delta write")
        reopened = ShardedTripleStore.open(directory)
        assert set(reopened) == set(store)

    def test_delta_then_rebalance_then_delta(self, tmp_path):
        # The refresh() lifecycle: burst, persist, rebalance (boundary
        # rewrite dirties moved shards), persist again — every layer of
        # that history must replay to the live state.
        store, directory = self._saved_store(tmp_path)
        for triple in _burst(60):
            store.add(triple)
        assert store.save_delta(directory) is True
        report = store.rebalance()
        assert report["moved"] > 0
        for triple in _burst(10, tag="late"):
            store.add(triple)
        assert store.save_delta(directory) is True
        reopened = ShardedTripleStore.open(directory)
        assert set(reopened) == set(store)
        assert reopened.boundaries == store.boundaries
        assert reopened.shard_sizes() == store.shard_sizes()

    def test_legacy_manifest_still_opens(self, tmp_path):
        # Pre-delta manifests listed bare shard file names and knew
        # nothing of chains; normalisation must keep them opening.
        import json
        import zlib

        from repro.store.persist import _canonical_json

        store, directory = self._saved_store(tmp_path)
        body = json.loads((directory / "manifest.json").read_text())
        body.pop("crc32")
        body["shards"] = [entry["file"] for entry in body["shards"]]
        body.pop("dictionary_terms")
        body.pop("dictionary_deltas")
        body["crc32"] = zlib.crc32(_canonical_json(body).encode("utf-8"))
        (directory / "manifest.json").write_text(json.dumps(body))
        reopened = ShardedTripleStore.open(directory)
        assert set(reopened) == set(store)
