"""Unit tests for the Turtle reader/writer."""

import pytest

from repro.errors import ParseError
from repro.rdf.namespace import NamespaceManager, RDF, YAGO
from repro.rdf.terms import IRI, Literal
from repro.rdf.triple import Triple
from repro.rdf.turtle import parse_turtle, serialize_turtle

S = YAGO["Frank_Sinatra"]


class TestTurtleWriter:
    def test_groups_by_subject(self):
        triples = [
            Triple(S, YAGO.wasBornIn, YAGO.USA),
            Triple(S, YAGO.hasName, Literal("Frank Sinatra")),
        ]
        text = serialize_turtle(triples)
        # One subject block, two predicate lines separated by ';'.
        assert text.count("yago:Frank_Sinatra\n") == 1
        assert ";" in text

    def test_emits_only_used_prefixes(self):
        text = serialize_turtle([Triple(S, YAGO.wasBornIn, YAGO.USA)])
        assert "@prefix yago:" in text
        assert "@prefix dbo:" not in text

    def test_unknown_namespace_written_in_full(self):
        other = IRI("http://nowhere.example/x")
        text = serialize_turtle([Triple(other, YAGO.knows, other)])
        assert "<http://nowhere.example/x>" in text

    def test_empty_input(self):
        assert serialize_turtle([]) == ""


class TestTurtleReader:
    def test_round_trip(self):
        triples = [
            Triple(S, YAGO.wasBornIn, YAGO.USA),
            Triple(S, YAGO.hasName, Literal("Frank Sinatra")),
            Triple(S, YAGO.label, Literal("Frank Sinatra", language="en")),
            Triple(S, YAGO.bornInYear, Literal(1915)),
        ]
        assert set(parse_turtle(serialize_turtle(triples))) == set(triples)

    def test_prefix_declaration(self):
        text = "@prefix ex: <http://example.org/> .\nex:a ex:p ex:b ."
        triples = list(parse_turtle(text))
        assert triples == [
            Triple(IRI("http://example.org/a"), IRI("http://example.org/p"), IRI("http://example.org/b"))
        ]

    def test_a_keyword_expands_to_rdf_type(self):
        text = "@prefix ex: <http://example.org/> .\nex:a a ex:Person ."
        triple = next(iter(parse_turtle(text)))
        assert triple.predicate == RDF.type

    def test_object_lists_with_comma(self):
        text = "@prefix ex: <http://example.org/> .\nex:a ex:p ex:b, ex:c ."
        assert len(list(parse_turtle(text))) == 2

    def test_predicate_lists_with_semicolon(self):
        text = "@prefix ex: <http://example.org/> .\nex:a ex:p ex:b ; ex:q ex:c ."
        triples = list(parse_turtle(text))
        assert {t.predicate.local_name for t in triples} == {"p", "q"}

    def test_comments_outside_iris_are_stripped(self):
        text = (
            "@prefix ex: <http://example.org/> . # namespace\n"
            "ex:a ex:p ex:b . # a fact\n"
        )
        assert len(list(parse_turtle(text))) == 1

    def test_hash_inside_iri_preserved(self):
        text = "<http://example.org/ns#a> <http://example.org/ns#p> <http://example.org/ns#b> ."
        triple = next(iter(parse_turtle(text)))
        assert triple.subject.value.endswith("#a")

    def test_integer_shorthand(self):
        text = "@prefix ex: <http://example.org/> .\nex:a ex:age 42 ."
        triple = next(iter(parse_turtle(text)))
        assert triple.object.to_python() == 42

    def test_decimal_shorthand(self):
        text = "@prefix ex: <http://example.org/> .\nex:a ex:height 1.85 ."
        triple = next(iter(parse_turtle(text)))
        assert triple.object.to_python() == pytest.approx(1.85)

    def test_language_tag(self):
        text = '@prefix ex: <http://example.org/> .\nex:a ex:label "ciao"@it .'
        triple = next(iter(parse_turtle(text)))
        assert triple.object == Literal("ciao", language="it")

    def test_datatyped_literal(self):
        text = (
            "@prefix ex: <http://example.org/> .\n"
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
            'ex:a ex:born "1915-12-12"^^xsd:date .'
        )
        triple = next(iter(parse_turtle(text)))
        assert triple.object.datatype.endswith("date")

    def test_unknown_prefix_rejected(self):
        with pytest.raises(ParseError):
            list(parse_turtle("nope:a nope:p nope:b ."))

    def test_unterminated_statement_rejected(self):
        with pytest.raises(ParseError):
            list(parse_turtle("@prefix ex: <http://example.org/> .\nex:a ex:p ex:b"))

    def test_blank_node_property_list_unsupported(self):
        with pytest.raises(ParseError):
            list(parse_turtle("@prefix ex: <http://example.org/> .\nex:a ex:p [ ex:q ex:b ] ."))

    def test_base_resolution(self):
        text = "@base <http://example.org/> .\n<a> <p> <b> ."
        triple = next(iter(parse_turtle(text)))
        assert triple.subject == IRI("http://example.org/a")
