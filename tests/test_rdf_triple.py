"""Unit tests for Triple and TriplePattern."""

import pytest

from repro.errors import RDFError
from repro.rdf.terms import IRI, BlankNode, Literal
from repro.rdf.triple import Triple, TriplePattern

S = IRI("http://example.org/s")
P = IRI("http://example.org/p")
O = IRI("http://example.org/o")


class TestTriple:
    def test_construction_and_accessors(self):
        triple = Triple(S, P, O)
        assert triple.subject == S
        assert triple.predicate == P
        assert triple.object == O

    def test_equality_and_hash(self):
        assert Triple(S, P, O) == Triple(S, P, O)
        assert hash(Triple(S, P, O)) == hash(Triple(S, P, O))
        assert Triple(S, P, O) != Triple(S, P, S)

    def test_iteration_order(self):
        assert list(Triple(S, P, O)) == [S, P, O]

    def test_as_tuple(self):
        assert Triple(S, P, O).as_tuple() == (S, P, O)

    def test_literal_object_allowed(self):
        triple = Triple(S, P, Literal("x"))
        assert isinstance(triple.object, Literal)

    def test_blank_node_subject_allowed(self):
        triple = Triple(BlankNode("b"), P, O)
        assert isinstance(triple.subject, BlankNode)

    def test_literal_subject_rejected(self):
        with pytest.raises(RDFError):
            Triple(Literal("x"), P, O)  # type: ignore[arg-type]

    def test_literal_predicate_rejected(self):
        with pytest.raises(RDFError):
            Triple(S, Literal("x"), O)  # type: ignore[arg-type]

    def test_blank_node_predicate_rejected(self):
        with pytest.raises(RDFError):
            Triple(S, BlankNode("b"), O)  # type: ignore[arg-type]

    def test_non_term_object_rejected(self):
        with pytest.raises(RDFError):
            Triple(S, P, "plain")  # type: ignore[arg-type]

    def test_immutable(self):
        triple = Triple(S, P, O)
        with pytest.raises(AttributeError):
            triple.subject = O


class TestTriplePattern:
    def test_full_wildcard_matches_everything(self):
        assert TriplePattern().matches(Triple(S, P, O))

    def test_bound_subject_mismatch(self):
        assert not TriplePattern(subject=O).matches(Triple(S, P, O))

    def test_bound_all_positions(self):
        pattern = TriplePattern(S, P, O)
        assert pattern.matches(Triple(S, P, O))
        assert not pattern.matches(Triple(S, P, S))

    def test_bound_positions_reported(self):
        assert TriplePattern(subject=S, object=O).bound_positions == ("subject", "object")
        assert TriplePattern().bound_positions == ()

    def test_equality(self):
        assert TriplePattern(S, None, O) == TriplePattern(S, None, O)
        assert TriplePattern(S, None, O) != TriplePattern(S, P, O)

    def test_hashable(self):
        assert len({TriplePattern(S, P, O), TriplePattern(S, P, O)}) == 1
