"""Tests for the SofyaAligner orchestration (the paper's §2 end to end)."""

import dataclasses

import pytest

from repro.align.aligner import RemoteDataset, SofyaAligner
from repro.align.config import AlignmentConfig
from repro.endpoint.policy import AccessPolicy
from repro.errors import AlignmentError


def make_aligner(world, source_name, target_name, config, policy=None):
    source = RemoteDataset.from_kb(world.kb(source_name), policy=policy)
    target = RemoteDataset.from_kb(world.kb(target_name), policy=policy)
    return SofyaAligner(source=source, target=target, links=world.links, config=config)


class TestConstruction:
    def test_remote_dataset_from_kb(self, movie_world):
        dataset = RemoteDataset.from_kb(movie_world.kb("imdb"))
        assert dataset.name == "imdb"
        assert dataset.namespace == movie_world.kb("imdb").namespace

    def test_source_and_target_must_differ(self, movie_world):
        dataset = RemoteDataset.from_kb(movie_world.kb("imdb"))
        with pytest.raises(AlignmentError):
            SofyaAligner(source=dataset, target=dataset, links=movie_world.links)

    def test_repr(self, movie_world):
        aligner = make_aligner(movie_world, "filmdb", "imdb", AlignmentConfig())
        assert "filmdb" in repr(aligner) and "imdb" in repr(aligner)


class TestAlignRelation:
    def test_baseline_scores_true_and_trap_candidates(self, movie_world):
        aligner = make_aligner(movie_world, "filmdb", "imdb", AlignmentConfig.paper_pca_baseline())
        filmdb = movie_world.kb("filmdb")
        alignment = aligner.align_relation(filmdb.namespace.term("directedBy"))
        by_name = {c.relation.local_name: c for c in alignment.candidates}
        assert by_name["hasDirector"].confidence > 0.9
        # The correlated relation looks convincing on simple samples - the trap.
        assert by_name["hasProducer"].confidence > 0.3

    def test_ubs_prunes_the_trap(self, movie_world):
        aligner = make_aligner(movie_world, "filmdb", "imdb", AlignmentConfig.paper_ubs())
        filmdb = movie_world.kb("filmdb")
        alignment = aligner.align_relation(filmdb.namespace.term("directedBy"))
        by_name = {c.relation.local_name: c for c in alignment.candidates}
        assert by_name["hasProducer"].rule.pruned_by_ubs
        assert by_name["hasProducer"].ubs_contradictions >= 1
        assert not by_name["hasDirector"].rule.pruned_by_ubs
        accepted = {rule.premise.relation.local_name for rule in alignment.accepted(0.3)}
        assert accepted == {"hasDirector"}

    def test_unknown_relation_returns_empty_alignment(self, movie_world):
        aligner = make_aligner(movie_world, "filmdb", "imdb", AlignmentConfig())
        alignment = aligner.align_relation(movie_world.kb("filmdb").namespace.term("nope"))
        assert len(alignment) == 0
        assert alignment.best() is None

    def test_literal_relation_alignment(self, movie_world):
        aligner = make_aligner(movie_world, "filmdb", "imdb", AlignmentConfig.paper_ubs())
        filmdb = movie_world.kb("filmdb")
        alignment = aligner.align_relation(filmdb.namespace.term("title"))
        best = alignment.best()
        assert best is not None
        assert best.relation.local_name == "hasTitle"
        assert best.confidence > 0.8

    def test_equivalence_scoring(self, music_world):
        config = dataclasses.replace(AlignmentConfig.paper_ubs(), test_equivalence=True)
        aligner = make_aligner(music_world, "worksdb", "musicbrainz", config)
        worksdb = music_world.kb("worksdb")
        alignment = aligner.align_relation(worksdb.namespace.term("creatorOf"))
        scored = [c for c in alignment.candidates if c.reverse_rule is not None]
        assert scored, "equivalence test should score the reverse direction"
        for candidate in scored:
            # creatorOf is the union of composing and writing, so the reverse
            # implication must look weaker than the forward one.
            if candidate.relation.local_name in ("composerOf", "writerOf"):
                assert candidate.reverse_rule.confidence <= candidate.rule.confidence

    def test_cwa_measure_respected(self, movie_world):
        aligner = make_aligner(movie_world, "filmdb", "imdb", AlignmentConfig.paper_cwa_baseline())
        filmdb = movie_world.kb("filmdb")
        alignment = aligner.align_relation(filmdb.namespace.term("directedBy"))
        assert all(candidate.rule.measure == "cwa" for candidate in alignment.candidates)


class TestAlignRelations:
    def test_aligns_multiple_relations(self, movie_world):
        aligner = make_aligner(movie_world, "filmdb", "imdb", AlignmentConfig.paper_ubs())
        filmdb = movie_world.kb("filmdb")
        relations = [
            filmdb.namespace.term("directedBy"),
            filmdb.namespace.term("producedBy"),
            filmdb.namespace.term("title"),
        ]
        result = aligner.align_relations(relations)
        assert len(result) == 3
        assert result.direction == "imdb ⊂ filmdb"
        accepted_pairs = {
            (p.local_name, c.local_name) for p, c in result.predicted_pairs(threshold=0.3)
        }
        assert ("hasDirector", "directedBy") in accepted_pairs
        assert ("hasProducer", "producedBy") in accepted_pairs
        assert ("hasProducer", "directedBy") not in accepted_pairs

    def test_query_statistics_recorded(self, movie_world):
        aligner = make_aligner(movie_world, "filmdb", "imdb", AlignmentConfig.paper_ubs())
        filmdb = movie_world.kb("filmdb")
        result = aligner.align_relations([filmdb.namespace.term("directedBy")])
        assert result.total_queries() > 0
        assert set(result.query_statistics) == {"filmdb", "imdb"}

    def test_query_budget_exhaustion_is_graceful(self, movie_world):
        policy = AccessPolicy(max_queries=6)
        aligner = make_aligner(movie_world, "filmdb", "imdb", AlignmentConfig.paper_ubs(), policy)
        filmdb = movie_world.kb("filmdb")
        relations = [
            filmdb.namespace.term("directedBy"),
            filmdb.namespace.term("producedBy"),
            filmdb.namespace.term("title"),
        ]
        result = aligner.align_relations(relations)
        # The run stops early but still returns a result object.
        assert len(result) < len(relations)

    def test_default_relations_come_from_source_catalogue(self, movie_world):
        aligner = make_aligner(movie_world, "filmdb", "imdb", AlignmentConfig.paper_pca_baseline())
        result = aligner.align_relations()
        assert len(result) >= 3
