"""Differential: HTTP responses vs in-process evaluation.

The serialisers are deterministic, so the HTTP tier must be *byte*
transparent: for any query, the JSON and TSV bodies coming over the
socket equal serialising the in-process result of an identically
configured endpoint — across shard counts and both scatter backends —
and parsing the HTTP response yields the same solution multiset as the
unsharded reference evaluator.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import Counter

import pytest

from repro.endpoint.simulation import SimulatedSparqlEndpoint
from repro.http import HttpSparqlClient, serve_http
from repro.obs.metrics import MetricsRegistry
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.sparql.serialize import from_sparql_json, to_sparql_json, to_sparql_tsv
from repro.store.triplestore import TripleStore

START_METHOD = os.environ.get("REPRO_WORKER_START_METHOD") or None
if START_METHOD and START_METHOD not in multiprocessing.get_all_start_methods():
    pytest.skip(
        f"start method {START_METHOD!r} unsupported on this platform",
        allow_module_level=True,
    )

EX = Namespace("http://httpdiff.test/")
PREFIX = f"PREFIX ex: <{EX['']}> "

SHARD_COUNTS = (1, 2, 8)
BACKENDS = ("thread", "process")

#: The query battery: joins, OPTIONAL, UNION, ASK, COUNT, literals.
QUERIES = [
    PREFIX + "SELECT ?s ?o WHERE { ?s ex:p0 ?o }",
    PREFIX + "SELECT ?a ?b ?c WHERE { ?a ex:p0 ?b . ?b ex:p1 ?c }",
    PREFIX
    + "SELECT ?s ?name WHERE { ?s ex:p0 ?o . "
    + "OPTIONAL { ?s ex:name ?name } }",
    PREFIX
    + "SELECT ?x WHERE { { ?x ex:p0 ex:n1 } UNION { ?x ex:p1 ex:n2 } }",
    PREFIX + "SELECT (COUNT(*) AS ?c) WHERE { ?s ex:p0 ?o }",
    PREFIX + "SELECT (COUNT(DISTINCT ?s) AS ?c) WHERE { ?s ?p ?o . ?s ex:p0 ?x }",
    PREFIX + "ASK { ex:n0 ex:p0 ?o }",
    PREFIX + "ASK { ex:n0 ex:p9 ex:n5 }",
]


def _triples():
    triples = []
    for index in range(24):
        subject = EX[f"n{index % 7}"]
        triples.append(Triple(subject, EX.p0, EX[f"n{(index + 1) % 7}"]))
        if index % 3 == 0:
            triples.append(Triple(subject, EX.p1, EX[f"n{(index + 2) % 7}"]))
        if index % 4 == 0:
            triples.append(Triple(subject, EX.name, Literal(f"name {index}")))
    return triples


def _multiset(result) -> Counter:
    return Counter(frozenset(row.items()) for row in result)


@pytest.fixture(scope="module")
def reference():
    """``query text -> in-process result`` on the unsharded store."""
    endpoint = SimulatedSparqlEndpoint(TripleStore(triples=_triples()))
    return {query: endpoint.query(query) for query in QUERIES}


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_http_matches_in_process_bytes(shards, backend, reference, tmp_path):
    store = ShardedTripleStore(num_shards=shards, triples=_triples())
    # The in-process twin: same store configuration, queried directly.
    twin = SimulatedSparqlEndpoint(
        store,
        name="twin",
        backend=backend,
        snapshot_dir=tmp_path / "twin" if backend == "process" else None,
        start_method=START_METHOD,
    )
    with twin:
        expected = {query: twin.query(query) for query in QUERIES}
        with serve_http(
            store=ShardedTripleStore(num_shards=shards, triples=_triples()),
            name="served",
            backend=backend,
            snapshot_dir=tmp_path / "served" if backend == "process" else None,
            start_method=START_METHOD,
            metrics=MetricsRegistry(),
            # Byte comparison needs every response evaluated, not cached.
            page_cache_size=0,
        ) as running:
            with HttpSparqlClient(running.url) as client:
                for query in QUERIES:
                    content_type, body = client.query_text(
                        query, accept="application/sparql-results+json"
                    )
                    assert content_type == "application/sparql-results+json"
                    assert body == to_sparql_json(expected[query]), query

                    parsed = from_sparql_json(body)
                    if hasattr(parsed, "rows"):
                        assert _multiset(parsed) == _multiset(
                            reference[query]
                        ), query
                    else:
                        assert bool(parsed) == bool(reference[query]), query

                for query in QUERIES:
                    if not hasattr(expected[query], "rows"):
                        continue  # ASK has no TSV form
                    content_type, body = client.query_text(
                        query, accept="text/tab-separated-values"
                    )
                    assert content_type == "text/tab-separated-values"
                    assert body == to_sparql_tsv(expected[query]), query
