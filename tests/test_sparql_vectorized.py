"""Unit tests for the vectorized join kernels.

The kernels must (a) actually engage on the plans they claim to cover,
(b) produce the same solution multisets as the scalar operators on every
shape they do cover, (c) step aside — silently and correctly — on the
shapes they don't (repeated in-pattern variables, VALUES-fed groups,
missing NumPy), and (d) preserve the streaming contract so ASK and LIMIT
still short-circuit.
"""

from collections import Counter

import pytest

from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.sparql import kernels
from repro.sparql.ast import TriplePatternNode
from repro.sparql.bindings import Variable
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.plan import plan_bgp
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.shard.sharded_store import ShardedTripleStore
from repro.store.triplestore import TripleStore

EX = Namespace("http://vec.test/")

requires_kernels = pytest.mark.skipif(
    not kernels.kernels_available(), reason="NumPy unavailable or disabled"
)


def chain_store(size: int = 200) -> TripleStore:
    """A store where p0/p1/p2 chain into multi-pattern joins."""
    triples = []
    for index in range(size):
        a, b, c = EX[f"e{index % 40}"], EX[f"e{(index * 7) % 40}"], EX[f"e{(index * 13) % 40}"]
        triples.append(Triple(a, EX.p0, b))
        triples.append(Triple(b, EX.p1, c))
        if index % 3 == 0:
            triples.append(Triple(c, EX.p2, a))
    return TripleStore(triples=triples)


def _multiset(result) -> Counter:
    return Counter(frozenset(row.items()) for row in result)


QUERIES = [
    # 3-pattern chain: SCAN + MERGE/HASH territory.
    "SELECT * WHERE { ?a <http://vec.test/p0> ?b . ?b <http://vec.test/p1> ?c . "
    "?c <http://vec.test/p2> ?d }",
    # Star join on a shared subject.
    "SELECT * WHERE { ?a <http://vec.test/p0> ?b . ?a <http://vec.test/p2> ?c }",
    # Full scan pattern (0 constants) joined against a selective one.
    "SELECT * WHERE { ?s ?p ?o . ?s <http://vec.test/p2> ?x }",
    # Constant subject feeding the chain.
    "SELECT * WHERE { <http://vec.test/e0> <http://vec.test/p0> ?b . "
    "?b <http://vec.test/p1> ?c }",
    # Repeated variable inside one pattern: not vectorizable, must fall back.
    "SELECT * WHERE { ?a <http://vec.test/p0> ?a . ?a <http://vec.test/p1> ?c }",
    # Unknown constant: provably empty either way.
    "SELECT * WHERE { ?a <http://vec.test/nope> ?b . ?b <http://vec.test/p1> ?c }",
    # OPTIONAL / UNION around vectorizable groups.
    "SELECT * WHERE { ?a <http://vec.test/p0> ?b OPTIONAL { ?b <http://vec.test/p1> ?c } }",
    "SELECT * WHERE { { ?a <http://vec.test/p0> ?b } UNION { ?a <http://vec.test/p2> ?b } }",
]


class TestVectorizedAgainstScalar:
    @pytest.mark.parametrize("query_text", QUERIES)
    def test_warm_store(self, query_text):
        store = chain_store()
        query = parse_query(query_text)
        vectorized = _multiset(QueryEvaluator(store).evaluate(query))
        scalar = _multiset(QueryEvaluator(store, use_vectorized=False).evaluate(query))
        assert vectorized == scalar

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_cold_mmap_store(self, query_text, tmp_path):
        store = chain_store()
        store.save(tmp_path / "store.snap")
        cold = TripleStore.open(tmp_path / "store.snap")
        query = parse_query(query_text)
        vectorized = _multiset(QueryEvaluator(cold).evaluate(query))
        scalar = _multiset(QueryEvaluator(store, use_vectorized=False).evaluate(query))
        assert vectorized == scalar

    @pytest.mark.parametrize("shards", [1, 2, 8])
    @pytest.mark.parametrize("query_text", QUERIES)
    def test_sharded_store(self, query_text, shards):
        triples = list(chain_store())
        sharded = ShardedTripleStore(num_shards=shards, triples=triples)
        reference = TripleStore(triples=triples)
        query = parse_query(query_text)
        vectorized = _multiset(ShardedQueryEvaluator(sharded).evaluate(query))
        scalar = _multiset(
            QueryEvaluator(reference, use_vectorized=False).evaluate(query)
        )
        assert vectorized == scalar


class TestEngagementAndFallback:
    @requires_kernels
    def test_kernels_engage_on_chain_join(self):
        store = chain_store()
        evaluator = QueryEvaluator(store)
        patterns = [
            TriplePatternNode(Variable("a"), EX.p0, Variable("b")),
            TriplePatternNode(Variable("b"), EX.p1, Variable("c")),
        ]
        plan = plan_bgp(store, patterns)
        stream = kernels.execute(evaluator, plan)
        assert stream is not None
        assert sum(1 for _ in stream) > 0

    @requires_kernels
    def test_repeated_variable_pattern_not_vectorized(self):
        store = chain_store()
        patterns = [TriplePatternNode(Variable("a"), EX.p0, Variable("a"))]
        plan = plan_bgp(store, patterns)
        assert kernels._vectorizable_prefix(plan.steps) == 0

    def test_use_vectorized_flag_disables_kernels(self):
        evaluator = QueryEvaluator(chain_store(), use_vectorized=False)
        assert evaluator._use_vectorized is False

    def test_no_numpy_env_disables_kernels(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert not kernels.kernels_available()
        store = chain_store()
        evaluator = QueryEvaluator(store)
        assert evaluator._use_vectorized is False
        query = parse_query(QUERIES[0])
        scalar = _multiset(QueryEvaluator(store, use_vectorized=False).evaluate(query))
        assert _multiset(evaluator.evaluate(query)) == scalar

    def test_plan_records_build_estimates(self):
        store = chain_store()
        patterns = [
            TriplePatternNode(Variable("a"), EX.p0, Variable("b")),
            TriplePatternNode(Variable("b"), EX.p1, Variable("c")),
        ]
        plan = plan_bgp(store, patterns)
        assert all(step.build_estimate >= 0.0 for step in plan.steps)
        assert any(step.build_estimate > 0.0 for step in plan.steps)


class TestStreamingShortCircuit:
    def test_ask_short_circuits(self):
        store = chain_store(2000)
        query = parse_query(
            "ASK { ?a <http://vec.test/p0> ?b . ?b <http://vec.test/p1> ?c }"
        )
        assert bool(QueryEvaluator(store).evaluate(query))
        assert bool(QueryEvaluator(store, use_vectorized=False).evaluate(query))

    def test_limit_pages_are_subsets(self):
        store = chain_store(2000)
        full = parse_query(
            "SELECT * WHERE { ?a <http://vec.test/p0> ?b . ?b <http://vec.test/p1> ?c }"
        )
        paged = parse_query(
            "SELECT * WHERE { ?a <http://vec.test/p0> ?b . ?b <http://vec.test/p1> ?c } LIMIT 5"
        )
        universe = _multiset(QueryEvaluator(store, use_vectorized=False).evaluate(full))
        page = _multiset(QueryEvaluator(store).evaluate(paged))
        assert sum(page.values()) == min(5, sum(universe.values()))
        for row, count in page.items():
            assert universe[row] >= count
