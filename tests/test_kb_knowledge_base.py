"""Unit tests for the KnowledgeBase facade and the KB catalog."""

import pytest

from repro.errors import ReproError, StoreError
from repro.kb.catalog import KBCatalog
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.relation import RelationKind
from repro.kb.sameas import SameAsIndex
from repro.rdf.namespace import SAME_AS
from repro.rdf.terms import Literal
from repro.endpoint.policy import AccessPolicy

from tests.conftest import EX, EX2


class TestConstruction:
    def test_entity_and_relation_minting(self, people_kb):
        assert people_kb.entity("X") == EX.X
        assert people_kb.relation("knows") == EX.knows

    def test_add_fact(self, people_kb):
        before = len(people_kb)
        assert people_kb.add_fact(EX.X, EX.knows, EX.Y)
        assert not people_kb.add_fact(EX.X, EX.knows, EX.Y)
        assert len(people_kb) == before + 1

    def test_add_same_as(self, people_kb):
        people_kb.add_same_as(EX["Marie_Curie"], EX2["MarieCurie"])
        links = list(people_kb.same_as_links())
        assert len(links) == 3

    def test_repr(self, people_kb):
        assert "people" in repr(people_kb)


class TestRelationCatalogue:
    def test_relations_exclude_same_as(self, people_kb):
        relations = people_kb.relations()
        iris = {info.iri for info in relations}
        assert SAME_AS not in iris
        assert EX.bornIn in iris

    def test_relations_can_include_same_as(self, people_kb):
        iris = {info.iri for info in people_kb.relations(include_same_as=True)}
        assert SAME_AS in iris

    def test_relation_kind_detection(self, people_kb):
        assert people_kb.relation_info(EX.name).kind is RelationKind.ENTITY_LITERAL
        assert people_kb.relation_info(EX.bornIn).kind is RelationKind.ENTITY_ENTITY

    def test_relation_info_fields(self, people_kb):
        info = people_kb.relation_info(EX.bornIn)
        assert info.fact_count == 3
        assert info.functionality == pytest.approx(1.0)
        assert info.name == "bornIn"
        assert not info.is_inverse

    def test_relation_info_unknown_raises(self, people_kb):
        with pytest.raises(StoreError):
            people_kb.relation_info(EX.nothing)

    def test_has_relation_and_count(self, people_kb):
        assert people_kb.has_relation(EX.name)
        assert not people_kb.has_relation(EX.nothing)
        assert people_kb.relation_count() == 3

    def test_catalogue_invalidated_by_new_facts(self, people_kb):
        assert not people_kb.has_relation(EX.livesIn)
        people_kb.add_fact(EX["Marie_Curie"], EX.livesIn, EX.Paris)
        assert people_kb.has_relation(EX.livesIn)


class TestEntityAccess:
    def test_contains_entity(self, people_kb):
        assert people_kb.contains_entity(EX["Marie_Curie"])
        assert people_kb.contains_entity(EX.Poland)
        assert not people_kb.contains_entity(EX.Nowhere)

    def test_entities_iteration(self, people_kb):
        assert EX.USA in set(people_kb.entities())


class TestEndpointViews:
    def test_endpoint_uses_policy(self, people_kb):
        endpoint = people_kb.endpoint(policy=AccessPolicy(max_queries=1))
        endpoint.query("ASK { ?s ?p ?o }")
        assert endpoint.queries_remaining == 0

    def test_client_shortcut(self, people_kb):
        client = people_kb.client()
        assert client.count_facts(EX.bornIn) == 3

    def test_endpoint_name_defaults(self, people_kb):
        assert people_kb.endpoint().name == "people-endpoint"


class TestKBCatalog:
    def _catalog(self, people_kb):
        other = KnowledgeBase(name="other", namespace=EX2)
        other.add_fact(EX2["FrankSinatra"], EX2.birthCountry, EX2.USA)
        catalog = KBCatalog()
        catalog.register(people_kb)
        catalog.register(other)
        return catalog, other

    def test_register_and_get(self, people_kb):
        catalog, other = self._catalog(people_kb)
        assert catalog.get("people") is people_kb
        assert catalog.get("other") is other
        assert len(catalog) == 2
        assert "people" in catalog
        assert catalog.names() == ["people", "other"]

    def test_duplicate_registration_rejected(self, people_kb):
        catalog, _ = self._catalog(people_kb)
        with pytest.raises(ReproError):
            catalog.register(people_kb)

    def test_get_unknown_rejected(self, people_kb):
        catalog, _ = self._catalog(people_kb)
        with pytest.raises(ReproError):
            catalog.get("nope")

    def test_links_between_falls_back_to_stored_same_as(self, people_kb):
        catalog, _ = self._catalog(people_kb)
        links = catalog.links_between("people", "other")
        assert links.are_same(EX["Frank_Sinatra"], EX2["FrankSinatra"])

    def test_explicit_links_take_precedence(self, people_kb):
        catalog, _ = self._catalog(people_kb)
        explicit = SameAsIndex([(EX["Marie_Curie"], EX2["MarieCurie"])])
        catalog.add_links("people", "other", explicit)
        links = catalog.links_between("other", "people")
        assert links.are_same(EX["Marie_Curie"], EX2["MarieCurie"])
        assert not links.are_same(EX["Frank_Sinatra"], EX2["FrankSinatra"])

    def test_add_links_requires_registered_kbs(self, people_kb):
        catalog, _ = self._catalog(people_kb)
        with pytest.raises(ReproError):
            catalog.add_links("people", "missing", SameAsIndex())

    def test_linked_pair_and_reverse(self, people_kb):
        catalog, _ = self._catalog(people_kb)
        pair = catalog.linked_pair("people", "other")
        assert pair.source == "people"
        assert pair.reversed().source == "other"
        assert pair.reversed().links is pair.links
