"""Unit tests for the string similarity functions."""

import pytest

from repro.similarity import (
    dice_coefficient,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    ngram_similarity,
    ngrams,
    normalize_string,
    token_jaccard,
    tokenize_words,
    trigram_similarity,
)


class TestNormalize:
    def test_lowercases_and_strips_punctuation(self):
        assert normalize_string("Frank_Sinatra!") == "frank sinatra"

    def test_collapses_whitespace(self):
        assert normalize_string("  a   b  ") == "a b"

    def test_strips_accents(self):
        assert normalize_string("Céline") == "celine"

    def test_options_can_be_disabled(self):
        assert normalize_string("ABC", lowercase=False) == "ABC"
        assert "!" in normalize_string("a!", remove_punctuation=False)

    def test_tokenize_words(self):
        assert tokenize_words("Frank_Sinatra sings") == ["frank", "sinatra", "sings"]
        assert tokenize_words("") == []


class TestLevenshtein:
    def test_identical_strings(self):
        assert levenshtein_distance("abc", "abc") == 0
        assert levenshtein_similarity("abc", "abc") == 1.0

    def test_empty_strings(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_similarity("", "") == 1.0

    def test_known_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_symmetry(self):
        assert levenshtein_distance("flaw", "lawn") == levenshtein_distance("lawn", "flaw")

    def test_similarity_range(self):
        assert 0.0 <= levenshtein_similarity("abc", "xyz") <= 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0
        assert jaro_winkler_similarity("martha", "martha") == 1.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("prefixed", "prefixes")
        boosted = jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted >= plain

    def test_no_matches(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_prefix_scale_clamped(self):
        # Even with an absurd scale the result stays within [0, 1].
        assert jaro_winkler_similarity("prefix", "prefixx", prefix_scale=5.0) <= 1.0


class TestNgrams:
    def test_ngram_generation_with_padding(self):
        grams = ngrams("ab", n=3)
        assert "##a" in grams and "b##" in grams

    def test_ngram_generation_without_padding(self):
        assert ngrams("abcd", n=2, pad=False) == ["ab", "bc", "cd"]

    def test_empty_string(self):
        assert ngrams("", n=3, pad=False) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams("abc", n=0)

    def test_trigram_similarity_identical(self):
        assert trigram_similarity("sinatra", "sinatra") == 1.0

    def test_ngram_similarity_disjoint(self):
        assert ngram_similarity("aaa", "zzz") == 0.0

    def test_both_empty(self):
        assert ngram_similarity("", "") == 1.0


class TestSetSimilarities:
    def test_jaccard(self):
        assert jaccard_similarity({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard_similarity(set(), set()) == 1.0
        assert jaccard_similarity({1}, set()) == 0.0

    def test_dice(self):
        assert dice_coefficient({1, 2}, {2, 3}) == pytest.approx(0.5)
        assert dice_coefficient(set(), set()) == 1.0

    def test_token_jaccard(self):
        assert token_jaccard("Frank Sinatra", "Sinatra, Frank") == 1.0
        assert token_jaccard("abc", "xyz") == 0.0
