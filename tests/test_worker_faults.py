"""Fault injection for the process-shard worker pool.

SIGKILLs land on workers at deterministic moments (a ``stall`` task pins
the victim in-task) and the tests assert the three contracted outcomes:

* the wave surfaces a captured per-query
  :class:`~repro.errors.WorkerCrashError` instead of aborting;
* the endpoint's budget accounting refunds exactly the failed queries
  (PR 4 refund semantics: only queries that produced a result spend a
  slot, and only those reach the query log);
* the pool respawns the dead worker, so the next wave runs clean.

Also covered: a worker that dies *while boot-opening a corrupt snapshot*
reports the underlying corruption through the crash error, and a worker
killed while idle is respawned transparently (no query ever fails).
"""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.endpoint.policy import AccessPolicy
from repro.endpoint.simulation import WaveScheduler, sharded_endpoint
from repro.errors import WorkerCrashError
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.shard.workers import ProcessShardExecutor
from repro.sparql.parser import parse_query
from repro.sparql.scatter import ShardedQueryEvaluator

EX = Namespace("http://faults.test/")

START_METHOD = os.environ.get("REPRO_WORKER_START_METHOD") or None
if START_METHOD and START_METHOD not in multiprocessing.get_all_start_methods():
    pytest.skip(
        f"start method {START_METHOD!r} unsupported on this platform",
        allow_module_level=True,
    )

#: Co-partitioned star join: scatters over every shard, so any dead
#: worker makes the query fail.
SCATTER_QUERY = (
    "SELECT ?s ?a ?b WHERE { ?s <http://faults.test/p0> ?a . "
    "?s <http://faults.test/p1> ?b }"
)


def _triples(count=400):
    return [
        Triple(EX[f"s{i % 40}"], EX[f"p{i % 3}"], EX[f"o{i % 5}"])
        for i in range(count)
    ]


def _store(num_shards=2):
    return ShardedTripleStore(num_shards=num_shards, triples=_triples())


def _stall_worker(executor, shard_index=0):
    """Pin a worker in a long stall task.  Returns its pid.

    Work dispatched afterwards queues deterministically *behind* the
    stall, so a SIGKILL delivered later is guaranteed to land while that
    work is in flight on the dead worker — without the stall, the
    executor's crash detection can win the race and transparently
    respawn before anything was dispatched, and no query would fail.
    """
    pid = executor.worker_pids()[executor.worker_for_shard(shard_index)]
    executor.stall(shard_index, seconds=60.0)
    return pid


def _kill_stalled_worker(executor, shard_index=0):
    """Pin a worker in a stall task, then SIGKILL it.  Returns its pid."""
    pid = _stall_worker(executor, shard_index)
    os.kill(pid, signal.SIGKILL)
    return pid


def _await_respawn(executor, slot, old_pid, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pids = executor.worker_pids()
        if pids[slot] is not None and pids[slot] != old_pid:
            return pids[slot]
        time.sleep(0.05)
    raise AssertionError(f"worker {slot} did not respawn within {timeout}s")


class TestExecutorCrash:
    def test_kill_mid_task_raises_worker_crash(self, tmp_path):
        store = _store()
        with store.serve(tmp_path / "snap", start_method=START_METHOD) as executor:
            pid = _stall_worker(executor, shard_index=0)
            group = parse_query(SCATTER_QUERY).where
            # Dispatch happens eagerly inside run_group: the shard-0 task
            # is now queued behind the stall on the doomed worker.
            stream = executor.run_group(range(store.num_shards), group)
            os.kill(pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashError, match="died"):
                list(stream)

    def test_kill_mid_stream_raises_after_partial_rows(self, tmp_path):
        # batch_rows=1 streams row by row; killing the worker after the
        # first row arrives must fail the rest of the stream, not hang.
        # The per-subject o x o cross product (10 x 50 x 50 = 25k rows)
        # keeps the worker busy streaming long past the kill.
        wide = [
            Triple(EX[f"w{s}"], EX[p], EX[f"{p}v{v}"])
            for s in range(10)
            for p in ("p0", "p1")
            for v in range(50)
        ]
        store = ShardedTripleStore(num_shards=1, triples=wide)
        with store.serve(
            tmp_path / "snap", start_method=START_METHOD, batch_rows=1
        ) as executor:
            group = parse_query(SCATTER_QUERY).where
            stream = executor.run_group([0], group)
            first = next(stream)
            assert first is not None
            os.kill(executor.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(WorkerCrashError):
                for _ in stream:
                    pass

    def test_pool_respawns_after_kill(self, tmp_path):
        store = _store()
        with store.serve(tmp_path / "snap", start_method=START_METHOD) as executor:
            old_pid = _kill_stalled_worker(executor, shard_index=0)
            new_pid = _await_respawn(executor, 0, old_pid)
            assert new_pid != old_pid
            proc_eval = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            assert len(proc_eval.evaluate(SCATTER_QUERY)) > 0

    def test_idle_kill_is_invisible_to_queries(self, tmp_path):
        store = _store()
        with store.serve(tmp_path / "snap", start_method=START_METHOD) as executor:
            old_pid = executor.worker_pids()[0]
            os.kill(old_pid, signal.SIGKILL)
            _await_respawn(executor, 0, old_pid)
            proc_eval = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            result = proc_eval.evaluate(SCATTER_QUERY)
            assert len(result) > 0

    def test_boot_failure_reports_snapshot_corruption(self, tmp_path):
        store = _store()
        directory = tmp_path / "snap"
        store.save(directory)
        # Flip payload bytes in shard 0's columns file: the worker dies
        # in open_shard_stores and its fatal report must surface through
        # the crash error.
        shard_file = next(directory.glob("shard0-*.snap"))
        blob = bytearray(shard_file.read_bytes())
        blob[-20:] = b"\xff" * 20
        shard_file.write_bytes(bytes(blob))
        with ProcessShardExecutor(
            directory, start_method=START_METHOD
        ) as executor:
            with pytest.raises(WorkerCrashError, match="SnapshotCorruptError"):
                executor.ping(0)
            # A deterministic boot failure must not respawn-loop forever:
            # after a few consecutive fatal boots the slot is abandoned
            # and dispatch fails fast with the recorded reason.
            deadline = time.monotonic() + 15.0
            while True:
                with pytest.raises(WorkerCrashError) as info:
                    executor.ping(0)
                if "gave up respawning" in str(info.value):
                    assert "SnapshotCorruptError" in str(info.value)
                    break
                assert time.monotonic() < deadline, "slot never abandoned"
                time.sleep(0.05)
            # The healthy worker (shard 1 lives in a separate file) is
            # untouched by shard 0's abandonment.
            assert executor.ping(1)["promoted"] is False


class TestProtocolAccounting:
    """The stats ledger stays exact through cancels and crashes."""

    def _assert_balanced(self, stats):
        assert stats["dispatched"] == (
            stats["completed"]
            + stats["cancelled"]
            + stats["failed"]
            + stats["crashed"]
        ), stats
        assert stats["buffered_batches"] == 0, stats

    def test_ledger_balances_after_crashed_wave(self, tmp_path):
        store = _store()
        with store.serve(tmp_path / "snap", start_method=START_METHOD) as executor:
            pid = _stall_worker(executor, shard_index=0)
            group = parse_query(SCATTER_QUERY).where
            stream = executor.run_group(range(store.num_shards), group)
            os.kill(pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashError):
                list(stream)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = executor.protocol_stats()
                if stats["crashed"] >= 1 and stats["dispatched"] == (
                    stats["completed"]
                    + stats["cancelled"]
                    + stats["failed"]
                    + stats["crashed"]
                ):
                    break
                time.sleep(0.05)
            assert stats["crashed"] >= 1
            self._assert_balanced(stats)

    def test_ledger_balances_after_cancelled_wave(self, tmp_path):
        # A LIMIT-satisfied scatter cancels its trailing tasks; the
        # buffered-batch refund happens at cancel-enqueue time (the
        # stalled worker provably has not drained its control queue yet).
        store = _store()
        with store.serve(
            tmp_path / "snap", start_method=START_METHOD, batch_rows=1
        ) as executor:
            executor.stall(0, seconds=0.4)
            evaluator = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            page = evaluator.evaluate(f"{SCATTER_QUERY} LIMIT 2")
            assert len(page) == 2
            stats = executor.protocol_stats()
            assert stats["cancelled"] >= 1
            self._assert_balanced(stats)


class TestWaveFaults:
    def test_sigkill_mid_wave_refunds_budget_exactly_and_respawns(self, tmp_path):
        """The headline contract, end to end.

        A worker is killed mid-wave; the wave reports per-query
        WorkerCrashErrors, the budget is charged only for the queries
        that produced results, the log records exactly those, and the
        next wave (after respawn) is clean.
        """
        store = _store(num_shards=2)
        policy = AccessPolicy(
            max_queries=12, max_result_rows=None, allow_full_scan=True
        )
        with sharded_endpoint(
            store,
            policy=policy,
            backend="process",
            snapshot_dir=tmp_path / "snap",
            start_method=START_METHOD,
        ) as endpoint:
            executor = endpoint.executor
            with WaveScheduler(endpoint, max_workers=4) as scheduler:
                clean = scheduler.run_wave([SCATTER_QUERY] * 4)
                assert clean.failed == 0
                assert endpoint.queries_remaining == 8
                assert endpoint.log.query_count == 4

                old_pid = _stall_worker(executor, shard_index=0)
                # Kill once the wave's tasks sit queued behind the stall:
                # every query then fails deterministically.
                killer = threading.Timer(
                    0.3, os.kill, (old_pid, signal.SIGKILL)
                )
                killer.start()
                wave = scheduler.run_wave([SCATTER_QUERY] * 4)
                killer.join()
                assert wave.failed > 0
                assert len(wave.results) == 4
                for index, error in wave.errors:
                    assert isinstance(error, WorkerCrashError)
                    assert wave.results[index] is None
                # Exact refund: only successful queries spent budget and
                # reached the log.
                assert (
                    endpoint.queries_remaining == 8 - wave.succeeded
                )
                assert endpoint.log.query_count == 4 + wave.succeeded

                _await_respawn(executor, 0, old_pid)
                after = scheduler.run_wave([SCATTER_QUERY] * 3)
                assert after.failed == 0
                assert (
                    endpoint.queries_remaining
                    == 8 - wave.succeeded - 3
                )

    def test_trace_survives_worker_sigkill(self, tmp_path):
        """A profiled query crashed by SIGKILL still yields a full trace.

        The crashed shard appears as an error-status ``worker:exec`` span
        synthesized by the executor (the real worker died before it could
        ship its measured span), the merge stream span carries the crash,
        and the protocol ledger — mirrored into the executor's metrics
        gauges by ``protocol_stats()`` — balances afterwards.
        """
        store = _store(num_shards=2)
        with sharded_endpoint(
            store,
            backend="process",
            snapshot_dir=tmp_path / "snap",
            start_method=START_METHOD,
        ) as endpoint:
            executor = endpoint.executor
            old_pid = _stall_worker(executor, shard_index=0)
            killer = threading.Timer(0.3, os.kill, (old_pid, signal.SIGKILL))
            killer.start()
            profile = endpoint.profile(SCATTER_QUERY)
            killer.join()

            assert profile.result is None
            assert isinstance(profile.error, WorkerCrashError)
            trace = profile.trace
            assert trace.status == "error"
            assert "WorkerCrashError" in trace.error
            merge = trace.find("parent:merge/decode")
            assert merge is not None and merge.status == "error"
            crashed = [
                span
                for span in trace.find_all("worker:exec")
                if span.attributes.get("crashed")
            ]
            assert len(crashed) == 1
            assert crashed[0].status == "error"
            assert crashed[0].process == "worker"
            assert crashed[0].attributes["shard"] == 0

            # After respawn a profiled query produces measured worker
            # spans again — one per shard, each with its queue wait.
            _await_respawn(executor, 0, old_pid)
            clean = endpoint.profile(SCATTER_QUERY)
            assert clean.error is None
            workers = clean.trace.find_all("worker:exec")
            assert len(workers) == store.num_shards
            assert all(s.status == "ok" for s in workers)
            assert all("queue_wait_ms" in s.attributes for s in workers)

            # Ledger balances at quiescence and its mirror gauges agree.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = executor.protocol_stats()
                if stats["crashed"] >= 1 and stats["dispatched"] == (
                    stats["completed"]
                    + stats["cancelled"]
                    + stats["failed"]
                    + stats["crashed"]
                ):
                    break
                time.sleep(0.05)
            assert stats["crashed"] >= 1
            for key, value in stats.items():
                assert executor.metrics.value("worker.protocol." + key) == value

    def test_refunded_slots_remain_spendable(self, tmp_path):
        # After crash-induced refunds, the quota still admits exactly
        # the refunded number of queries — no slot leaks either way.
        store = _store(num_shards=2)
        policy = AccessPolicy(
            max_queries=4, max_result_rows=None, allow_full_scan=True
        )
        with sharded_endpoint(
            store,
            policy=policy,
            backend="process",
            snapshot_dir=tmp_path / "snap",
            start_method=START_METHOD,
        ) as endpoint:
            executor = endpoint.executor
            with WaveScheduler(endpoint, max_workers=2) as scheduler:
                old_pid = _stall_worker(executor, shard_index=0)
                killer = threading.Timer(
                    0.3, os.kill, (old_pid, signal.SIGKILL)
                )
                killer.start()
                wave = scheduler.run_wave([SCATTER_QUERY] * 4)
                killer.join()
                refunded = wave.failed
                assert refunded > 0
                assert endpoint.queries_remaining == refunded
                _await_respawn(executor, 0, old_pid)
                final = scheduler.run_wave([SCATTER_QUERY] * (refunded + 2))
                assert final.succeeded == refunded
                assert final.failed == 2  # quota, not crashes
                assert endpoint.queries_remaining == 0
