"""Unit tests for RDF terms (IRI, Literal, BlankNode)."""

import pytest

from repro.errors import RDFError
from repro.rdf.terms import (
    IRI,
    BlankNode,
    Literal,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    is_entity_term,
    is_literal_term,
)


class TestIRI:
    def test_value_round_trip(self):
        iri = IRI("http://example.org/thing")
        assert iri.value == "http://example.org/thing"
        assert str(iri) == "http://example.org/thing"

    def test_equality_is_structural(self):
        assert IRI("http://example.org/a") == IRI("http://example.org/a")
        assert IRI("http://example.org/a") != IRI("http://example.org/b")

    def test_hashable_and_usable_in_sets(self):
        values = {IRI("http://example.org/a"), IRI("http://example.org/a")}
        assert len(values) == 1

    def test_not_equal_to_plain_string(self):
        assert IRI("http://example.org/a") != "http://example.org/a"

    def test_empty_iri_rejected(self):
        with pytest.raises(RDFError):
            IRI("")

    @pytest.mark.parametrize("bad", ["<http://x>", "http://x y", 'http://"x', "a\nb"])
    def test_forbidden_characters_rejected(self, bad):
        with pytest.raises(RDFError):
            IRI(bad)

    def test_non_string_rejected(self):
        with pytest.raises(RDFError):
            IRI(42)  # type: ignore[arg-type]

    def test_immutable(self):
        iri = IRI("http://example.org/a")
        with pytest.raises(AttributeError):
            iri.value = "http://example.org/b"

    def test_local_name_hash_separator(self):
        assert IRI("http://example.org/ns#birthPlace").local_name == "birthPlace"

    def test_local_name_slash_separator(self):
        assert IRI("http://dbpedia.org/ontology/birthPlace").local_name == "birthPlace"

    def test_namespace_property(self):
        iri = IRI("http://dbpedia.org/ontology/birthPlace")
        assert iri.namespace == "http://dbpedia.org/ontology/"

    def test_ordering_is_lexicographic(self):
        assert IRI("http://a.org/x") < IRI("http://b.org/x")

    def test_local_name_of_trailing_slash(self):
        # No usable local name after the final separator: the whole value is returned.
        iri = IRI("http://example.org/ns/")
        assert iri.local_name == iri.value


class TestBlankNode:
    def test_label_round_trip(self):
        node = BlankNode("b1")
        assert node.label == "b1"
        assert str(node) == "_:b1"

    def test_equality(self):
        assert BlankNode("x") == BlankNode("x")
        assert BlankNode("x") != BlankNode("y")

    def test_auto_label_is_unique(self):
        assert BlankNode().label != BlankNode().label

    def test_empty_label_rejected(self):
        with pytest.raises(RDFError):
            BlankNode("")


class TestLiteral:
    def test_plain_literal(self):
        literal = Literal("hello")
        assert literal.lexical == "hello"
        assert literal.language is None
        assert literal.datatype is None

    def test_language_tag_lowercased(self):
        literal = Literal("hello", language="EN")
        assert literal.language == "en"
        assert literal.datatype is None

    def test_datatype_from_iri_object(self):
        literal = Literal("5", datatype=IRI(XSD_INTEGER))
        assert literal.datatype == XSD_INTEGER

    def test_language_and_datatype_conflict(self):
        with pytest.raises(RDFError):
            Literal("x", language="en", datatype=XSD_STRING)

    def test_int_coercion(self):
        literal = Literal(42)
        assert literal.lexical == "42"
        assert literal.datatype == XSD_INTEGER
        assert literal.to_python() == 42

    def test_float_coercion(self):
        literal = Literal(3.5)
        assert literal.datatype == XSD_DOUBLE
        assert literal.to_python() == pytest.approx(3.5)

    def test_bool_coercion(self):
        assert Literal(True).lexical == "true"
        assert Literal(True).datatype == XSD_BOOLEAN
        assert Literal(False).to_python() is False

    def test_equality_includes_language(self):
        assert Literal("a", language="en") != Literal("a", language="fr")
        assert Literal("a", language="en") == Literal("a", language="en")

    def test_equality_includes_datatype(self):
        assert Literal("5", datatype=XSD_INTEGER) != Literal("5")

    def test_is_numeric(self):
        assert Literal(5).is_numeric()
        assert Literal(2.5).is_numeric()
        assert not Literal("five").is_numeric()

    def test_numeric_sort_order(self):
        values = sorted([Literal(10), Literal(2), Literal(33)])
        assert [v.to_python() for v in values] == [2, 10, 33]

    def test_to_python_falls_back_to_lexical(self):
        literal = Literal("not-a-number", datatype=XSD_INTEGER)
        assert literal.to_python() == "not-a-number"

    def test_invalid_language_tag(self):
        with pytest.raises(RDFError):
            Literal("x", language="en glish")

    def test_unsupported_python_type(self):
        with pytest.raises(RDFError):
            Literal(["list"])  # type: ignore[arg-type]


class TestTermPredicates:
    def test_is_entity_term(self):
        assert is_entity_term(IRI("http://x.org/a"))
        assert is_entity_term(BlankNode("b"))
        assert not is_entity_term(Literal("x"))
        assert not is_entity_term("plain string")

    def test_is_literal_term(self):
        assert is_literal_term(Literal("x"))
        assert not is_literal_term(IRI("http://x.org/a"))
