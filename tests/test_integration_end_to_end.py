"""End-to-end integration tests on the scaled-down YAGO/DBpedia-like world.

These tests exercise the full stack — synthetic generation, endpoints,
candidate discovery, sampling, confidence, UBS, evaluation — and assert the
*shape* of the paper's headline result (Table 1): UBS + pca beats the two
SSE baselines on precision in both directions, while staying query-frugal.
"""

import pytest

from repro.align.aligner import RemoteDataset, SofyaAligner
from repro.align.config import AlignmentConfig
from repro.baselines.full_snapshot import FullSnapshotMiner
from repro.endpoint.policy import AccessPolicy
from repro.evaluation.experiment import AlignmentExperiment, run_table1_experiment
from repro.evaluation.metrics import precision_recall_f1


@pytest.fixture(scope="module")
def table1_report(small_yago_dbpedia_world):
    return run_table1_experiment(
        small_yago_dbpedia_world,
        sample_size=10,
        distractor_relations=3,
        select_threshold=True,
    )


class TestTable1Shape:
    def test_ubs_precision_dominates_baselines(self, table1_report):
        """UBS precision is at least as good as both baselines.

        On the scaled-down test world a baseline can occasionally edge ahead
        in a single direction once its τ is re-optimised, so the per-direction
        check allows a small tolerance and the averaged check is strict.
        """
        ubs_values, pca_values, cwa_values = [], [], []
        for direction in table1_report.method("ubs").directions:
            ubs = table1_report.method("ubs").directions[direction].precision
            pca = table1_report.method("pca").directions[direction].precision
            cwa = table1_report.method("cwa").directions[direction].precision
            assert ubs >= pca - 0.1
            assert ubs >= cwa - 0.1
            ubs_values.append(ubs)
            pca_values.append(pca)
            cwa_values.append(cwa)
        assert sum(ubs_values) >= sum(pca_values)
        assert sum(ubs_values) >= sum(cwa_values) - 0.05

    def test_ubs_reaches_high_precision(self, table1_report):
        precisions = [d.precision for d in table1_report.method("ubs").directions.values()]
        assert max(precisions) >= 0.8
        assert min(precisions) >= 0.6

    def test_ubs_f1_is_high(self, table1_report):
        assert table1_report.method("ubs").average_f1() >= 0.7

    def test_every_method_produces_predictions(self, table1_report):
        for method in table1_report.methods:
            for direction in method.directions.values():
                assert len(direction.result.accepted_rules(direction.threshold)) > 0

    def test_report_renders(self, table1_report):
        text = table1_report.to_table().render()
        assert "ubs" in text and "pca" in text and "cwa" in text


class TestOnTheFlyCost:
    def test_alignment_needs_only_a_few_queries_per_relation(self, small_yago_dbpedia_world):
        world = small_yago_dbpedia_world
        experiment = AlignmentExperiment(world, distractor_relations=0)
        result = experiment.run_direction("yago", "dbpedia", AlignmentConfig.paper_ubs())
        queries_per_relation = result.total_queries() / max(len(result), 1)
        assert queries_per_relation < 60

    def test_rows_transferred_far_below_dataset_size(self, small_yago_dbpedia_world):
        world = small_yago_dbpedia_world
        experiment = AlignmentExperiment(world, distractor_relations=0)
        result = experiment.run_direction("yago", "dbpedia", AlignmentConfig.paper_ubs())
        rows = sum(stats.get("rows", 0.0) for stats in result.query_statistics.values())
        dataset_size = len(world.kb("yago").store) + len(world.kb("dbpedia").store)
        assert rows < dataset_size

    def test_alignment_works_under_public_endpoint_policy(self, small_yago_dbpedia_world):
        world = small_yago_dbpedia_world
        policy = AccessPolicy.public_endpoint()
        source = RemoteDataset.from_kb(world.kb("dbpedia"), policy=policy)
        target = RemoteDataset.from_kb(world.kb("yago"), policy=policy)
        aligner = SofyaAligner(source, target, world.links, AlignmentConfig.paper_ubs())
        gold = world.ground_truth.subsumption_pairs("yago", "dbpedia")
        query_relations = sorted(
            world.ground_truth.conclusion_relations("yago", "dbpedia"), key=lambda i: i.value
        )[:5]
        result = aligner.align_relations(query_relations)
        assert len(result) == 5
        predicted = result.predicted_pairs(threshold=0.3)
        relevant_gold = {(p, c) for p, c in gold if c in set(query_relations)}
        report = precision_recall_f1(predicted, relevant_gold)
        assert report.recall > 0.4


class TestAgainstFullSnapshot:
    def test_sampled_scores_agree_with_exhaustive_scores(self, small_yago_dbpedia_world):
        """SOFYA's sampled confidences should point the same way as exact ones."""
        world = small_yago_dbpedia_world
        experiment = AlignmentExperiment(world, distractor_relations=0, max_query_relations=6)
        result = experiment.run_direction("yago", "dbpedia", AlignmentConfig.paper_ubs())

        miner = FullSnapshotMiner(
            premise_kb=world.kb("yago"),
            conclusion_kb=world.kb("dbpedia"),
            links=world.links,
        )
        exact = {
            (rule.premise, rule.conclusion): rule.pca
            for rule in miner.mine()
        }

        agreements, comparisons = 0, 0
        for premise, conclusion, confidence in result.scored_pairs():
            key = (premise, conclusion)
            if key not in exact or confidence == 0.0:
                continue
            comparisons += 1
            if (confidence > 0.5) == (exact[key] > 0.5):
                agreements += 1
        assert comparisons > 0
        assert agreements / comparisons > 0.7
