"""Property-based tests (hypothesis) for core data structures and invariants."""

import string
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.confidence import cwa_confidence, pca_confidence
from repro.align.evidence import EvidenceSet, SubjectEvidence
from repro.kb.sameas import SameAsIndex
from repro.rdf.namespace import Namespace
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.terms import IRI, Literal
from repro.rdf.triple import Triple
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.levenshtein import levenshtein_distance, levenshtein_similarity
from repro.similarity.ngram import ngram_similarity
from repro.sparql.ast import (
    GroupGraphPattern,
    SelectQuery,
    TriplePatternNode,
    ValuesNode,
)
from repro.sparql.bindings import Binding, Variable
from repro.sparql.evaluate import QueryEvaluator
from repro.store.dictionary import TermDictionary
from repro.store.triplestore import TripleStore

EX = Namespace("http://prop.test/")

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
_local_names = st.text(alphabet=string.ascii_letters + string.digits + "_", min_size=1, max_size=12)
_iris = _local_names.map(lambda name: EX[name])
_plain_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\\"),
    max_size=30,
)
_literals = st.one_of(
    _plain_text.map(Literal),
    st.integers(min_value=-10**6, max_value=10**6).map(Literal),
    st.tuples(_plain_text, st.sampled_from(["en", "fr", "de"])).map(
        lambda pair: Literal(pair[0], language=pair[1])
    ),
)
_objects = st.one_of(_iris, _literals)
_triples = st.builds(Triple, _iris, _iris, _objects)
_simple_strings = st.text(alphabet=string.ascii_lowercase + " ", max_size=20)


# --------------------------------------------------------------------------- #
# RDF round-trips
# --------------------------------------------------------------------------- #
class TestNTriplesRoundTrip:
    @given(st.lists(_triples, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_serialise_parse_round_trip(self, triples):
        document = serialize_ntriples(triples)
        assert list(parse_ntriples(document)) == triples

    @given(_literals)
    @settings(max_examples=60, deadline=None)
    def test_literal_round_trip(self, literal):
        triple = Triple(EX.s, EX.p, literal)
        parsed = list(parse_ntriples(serialize_ntriples([triple])))[0]
        assert parsed.object == literal


# --------------------------------------------------------------------------- #
# Store invariants
# --------------------------------------------------------------------------- #
class TestStoreInvariants:
    @given(st.lists(_triples, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_store_behaves_like_a_set(self, triples):
        store = TripleStore(triples=triples)
        assert len(store) == len(set(triples))
        assert set(store) == set(triples)

    @given(st.lists(_triples, max_size=30), st.lists(_triples, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_add_then_remove_restores_previous_state(self, base, extra):
        store = TripleStore(triples=base)
        before = set(store)
        newly_added = [t for t in extra if store.add(t)]
        for triple in newly_added:
            assert store.remove(triple)
        assert set(store) == before

    @given(st.lists(_triples, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_pattern_match_consistent_with_scan(self, triples):
        store = TripleStore(triples=triples)
        for predicate in store.predicates():
            via_index = set(store.match(predicate=predicate))
            via_scan = {t for t in store if t.predicate == predicate}
            assert via_index == via_scan
            assert store.count(predicate=predicate) == len(via_scan)

    @given(st.lists(_triples, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_statistics_sum_to_store_size(self, triples):
        store = TripleStore(triples=triples)
        stats = store.statistics()
        assert sum(p.fact_count for p in stats.predicates.values()) == len(store)


# --------------------------------------------------------------------------- #
# Planner / join-operator equivalence
# --------------------------------------------------------------------------- #
# A deliberately tiny vocabulary so random BGPs actually join: few IRIs,
# few variables, dense random stores.
_plan_iris = st.sampled_from([EX[f"n{index}"] for index in range(6)])
_plan_variables = st.sampled_from([Variable(name) for name in "abc"])
_plan_subjects = st.one_of(_plan_variables, _plan_iris)
_plan_predicates = st.one_of(_plan_variables, _plan_iris)
_plan_objects = st.one_of(_plan_variables, _plan_iris)
_plan_patterns = st.builds(
    TriplePatternNode, _plan_subjects, _plan_predicates, _plan_objects
)
_plan_triples = st.lists(
    st.builds(Triple, _plan_iris, _plan_iris, _plan_iris), max_size=50
)
# VALUES rows may contain None (UNDEF), so some solutions leave a variable
# unbound — the planner must not treat such variables as bound.
_values_nodes = st.lists(
    st.tuples(st.one_of(st.none(), _plan_iris), st.one_of(st.none(), _plan_iris)),
    min_size=1,
    max_size=3,
).map(
    lambda rows: ValuesNode(
        variables=(Variable("a"), Variable("b")), rows=tuple(rows)
    )
)


def _solution_multiset(result) -> Counter:
    return Counter(frozenset(row.items()) for row in result)


class TestPlannerEquivalence:
    """Merge/hash/nested plans must reproduce the naive nested-loop answers."""

    @given(_plan_triples, st.lists(_plan_patterns, min_size=1, max_size=4))
    @settings(max_examples=120, deadline=None)
    def test_planned_bgp_matches_naive_nested_loop(self, triples, patterns):
        store = TripleStore(triples=triples)
        query = SelectQuery(
            projection=(),
            where=GroupGraphPattern(tuple(patterns)),
            select_all=True,
        )
        planned = QueryEvaluator(store).evaluate(query)
        naive = QueryEvaluator(store, use_planner=False).evaluate(query)
        assert _solution_multiset(planned) == _solution_multiset(naive)

    @given(
        _plan_triples,
        _values_nodes,
        st.lists(_plan_patterns, min_size=1, max_size=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_planned_bgp_with_values_matches_naive(self, triples, values, patterns):
        store = TripleStore(triples=triples)
        query = SelectQuery(
            projection=(),
            where=GroupGraphPattern((values,) + tuple(patterns)),
            select_all=True,
        )
        planned = QueryEvaluator(store).evaluate(query)
        naive = QueryEvaluator(store, use_planner=False).evaluate(query)
        assert _solution_multiset(planned) == _solution_multiset(naive)

    @given(_plan_triples, st.lists(_plan_patterns, min_size=2, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_planned_distinct_matches_naive(self, triples, patterns):
        store = TripleStore(triples=triples)
        query = SelectQuery(
            projection=(),
            where=GroupGraphPattern(tuple(patterns)),
            select_all=True,
            distinct=True,
        )
        planned = QueryEvaluator(store).evaluate(query)
        naive = QueryEvaluator(store, use_planner=False).evaluate(query)
        assert _solution_multiset(planned) == _solution_multiset(naive)


# --------------------------------------------------------------------------- #
# Bulk loading invariants
# --------------------------------------------------------------------------- #
class TestBulkLoadInvariants:
    @given(st.lists(_triples, max_size=40), st.lists(_triples, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_bulk_and_incremental_stores_agree(self, first, second):
        incremental = TripleStore()
        incremental.add_all(first)
        incremental.add_all(second)
        bulk = TripleStore()
        bulk.bulk_load(first)
        bulk.bulk_load(second)
        assert len(bulk) == len(incremental)
        assert set(bulk) == set(incremental)
        for predicate in incremental.predicates():
            assert bulk.count(predicate=predicate) == incremental.count(
                predicate=predicate
            )
            assert set(bulk.match(predicate=predicate)) == set(
                incremental.match(predicate=predicate)
            )

    @given(st.lists(_triples, min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_bulk_loaded_membership_and_removal(self, triples):
        store = TripleStore()
        store.bulk_load(triples)
        for triple in triples:
            assert triple in store
        assert store.remove(triples[0])
        assert triples[0] not in store


# --------------------------------------------------------------------------- #
# Term dictionary invariants
# --------------------------------------------------------------------------- #
_terms = st.one_of(_iris, _literals)


class TestTermDictionaryInvariants:
    @given(st.lists(_terms, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_intern_lookup_round_trip(self, terms):
        dictionary = TermDictionary()
        ids = [dictionary.encode(term) for term in terms]
        for term, tid in zip(terms, ids):
            assert dictionary.id_for(term) == tid
            assert dictionary.decode(tid) == term

    @given(st.lists(_terms, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_ids_are_dense_and_unique(self, terms):
        dictionary = TermDictionary()
        ids = {dictionary.encode(term) for term in terms}
        assert ids == set(range(len(set(terms))))
        assert len(dictionary) == len(set(terms))

    @given(st.lists(_triples, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_ids_stable_across_remove_and_clear(self, triples):
        store = TripleStore(triples=triples)
        snapshot = {
            term: store.term_id(term)
            for triple in triples
            for term in (triple.subject, triple.predicate, triple.object)
        }
        assert all(tid is not None for tid in snapshot.values())
        store.remove(triples[0])
        for term, tid in snapshot.items():
            assert store.term_id(term) == tid
        store.clear()
        for term, tid in snapshot.items():
            assert store.term_id(term) == tid
            assert store.term_for_id(tid) == term

    @given(st.lists(_terms, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_kind_bytes_match_term_types(self, terms):
        dictionary = TermDictionary()
        for term in terms:
            tid = dictionary.encode(term)
            assert dictionary.is_literal_id(tid) == isinstance(term, Literal)
            assert dictionary.is_entity_id(tid) != isinstance(term, Literal)


# --------------------------------------------------------------------------- #
# sameAs union-find invariants
# --------------------------------------------------------------------------- #
class TestSameAsInvariants:
    @given(st.lists(st.tuples(_iris, _iris), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_symmetry_and_transitivity(self, links):
        index = SameAsIndex(links)
        for left, right in links:
            assert index.are_same(left, right)
            assert index.are_same(right, left)
        # Transitivity: everything in one equivalence class is pairwise same.
        for cls in index.classes():
            members = sorted(cls, key=str)
            for first in members:
                for second in members:
                    assert index.are_same(first, second)

    @given(st.lists(st.tuples(_iris, _iris), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_to_triples_round_trip_preserves_classes(self, links):
        index = SameAsIndex(links)
        rebuilt = SameAsIndex.from_triples(index.to_triples())
        assert {frozenset(c) for c in index.classes()} == {
            frozenset(c) for c in rebuilt.classes()
        }


# --------------------------------------------------------------------------- #
# Similarity function properties
# --------------------------------------------------------------------------- #
class TestSimilarityProperties:
    @given(_simple_strings, _simple_strings)
    @settings(max_examples=100, deadline=None)
    def test_levenshtein_metric_properties(self, left, right):
        assert levenshtein_distance(left, right) == levenshtein_distance(right, left)
        assert levenshtein_distance(left, left) == 0
        assert levenshtein_distance(left, right) <= max(len(left), len(right))

    @given(_simple_strings, _simple_strings, _simple_strings)
    @settings(max_examples=60, deadline=None)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)

    @given(_simple_strings, _simple_strings)
    @settings(max_examples=100, deadline=None)
    def test_similarity_scores_in_unit_interval(self, left, right):
        for function in (levenshtein_similarity, jaro_winkler_similarity, ngram_similarity):
            score = function(left, right)
            assert 0.0 <= score <= 1.0

    @given(_simple_strings)
    @settings(max_examples=60, deadline=None)
    def test_identity_scores_one(self, text):
        assert levenshtein_similarity(text, text) == 1.0
        assert jaro_winkler_similarity(text, text) == 1.0 or text == ""


# --------------------------------------------------------------------------- #
# Confidence measure properties
# --------------------------------------------------------------------------- #
_evidence_records = st.lists(
    st.tuples(
        _iris,
        st.lists(_iris, max_size=4),   # premise objects
        st.lists(_iris, max_size=4),   # conclusion objects
    ),
    max_size=15,
)


class TestConfidenceProperties:
    @given(_evidence_records)
    @settings(max_examples=80, deadline=None)
    def test_confidences_bounded_and_ordered(self, raw_records):
        evidence = EvidenceSet()
        for index, (subject, premise_objects, conclusion_objects) in enumerate(raw_records):
            evidence.add(
                SubjectEvidence(
                    subject=EX[f"{subject.local_name}_{index}"],
                    premise_objects=list(dict.fromkeys(premise_objects)),
                    conclusion_objects=list(dict.fromkeys(conclusion_objects)),
                )
            )
        positives, cwa_pairs, pca_pairs = evidence.counts()
        assert 0 <= positives <= pca_pairs <= cwa_pairs
        cwa = cwa_confidence(positives, cwa_pairs)
        pca = pca_confidence(positives, pca_pairs)
        assert 0.0 <= cwa <= 1.0
        assert 0.0 <= pca <= 1.0
        # PCA never punishes missing conclusion subjects, so pca >= cwa.
        assert pca >= cwa - 1e-12

    @given(_evidence_records, _evidence_records)
    @settings(max_examples=40, deadline=None)
    def test_merge_is_commutative_on_counts(self, first_raw, second_raw):
        def build(raw, offset):
            evidence = EvidenceSet()
            for index, (subject, premise_objects, conclusion_objects) in enumerate(raw):
                evidence.add(
                    SubjectEvidence(
                        subject=EX[f"s{offset}_{index % 5}"],
                        premise_objects=list(dict.fromkeys(premise_objects)),
                        conclusion_objects=list(dict.fromkeys(conclusion_objects)),
                    )
                )
            return evidence

        left = build(first_raw, "a")
        right = build(second_raw, "b")
        assert left.merge(right).counts() == right.merge(left).counts()


# --------------------------------------------------------------------------- #
# Binding invariants
# --------------------------------------------------------------------------- #
_variables = st.sampled_from([Variable(name) for name in "abcdef"])
_bindings = st.dictionaries(_variables, _iris, max_size=5).map(Binding)


class TestBindingProperties:
    @given(_bindings, _bindings)
    @settings(max_examples=80, deadline=None)
    def test_merge_is_none_iff_conflicting(self, left, right):
        merged = left.merge(right)
        conflicting = any(
            left.get_term(variable) is not None
            and right.get_term(variable) is not None
            and left[variable] != right[variable]
            for variable in set(left) | set(right)
        )
        assert (merged is None) == conflicting
        if merged is not None:
            for variable in left:
                assert merged[variable] == left[variable]
            for variable in right:
                assert merged[variable] == right[variable]

    @given(_bindings, _variables, _iris)
    @settings(max_examples=80, deadline=None)
    def test_extend_never_mutates(self, binding, variable, value):
        size_before = len(binding)
        binding.extend(variable, value)
        assert len(binding) == size_before
