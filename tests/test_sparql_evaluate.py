"""Unit tests for SPARQL query evaluation over the triple store."""

import pytest

from repro.rdf.terms import IRI, Literal
from repro.rdf.triple import Triple
from repro.sparql.evaluate import QueryEvaluator, evaluate_query
from repro.sparql.parser import parse_query
from repro.sparql.results import AskResult, ResultSet
from repro.store.triplestore import TripleStore

from tests.conftest import EX, EX2

PREFIX = "PREFIX ex: <http://example.org/kb1/> PREFIX ex2: <http://example.org/kb2/> "


def run(store, query):
    return evaluate_query(store, PREFIX + query)


class TestBasicGraphPatterns:
    def test_single_pattern(self, people_store):
        result = run(people_store, "SELECT ?s WHERE { ?s ex:bornIn ex:USA }")
        assert [row.get_term(v) for row in result for v in result.variables] == [
            EX["Frank_Sinatra"]
        ]

    def test_join_on_shared_variable(self, people_store):
        result = run(
            people_store,
            "SELECT ?s ?name WHERE { ?s ex:profession ex:Physicist . ?s ex:name ?name }",
        )
        names = {row.get_term(result.variables[1]).lexical for row in result}
        assert names == {"Albert Einstein", "Marie Curie"}

    def test_join_with_no_solutions(self, people_store):
        result = run(
            people_store,
            "SELECT ?s WHERE { ?s ex:profession ex:Physicist . ?s ex:bornIn ex:USA }",
        )
        assert len(result) == 0

    def test_select_star_returns_all_variables(self, people_store):
        result = run(people_store, "SELECT * WHERE { ?s ex:bornIn ?c }")
        assert {v.name for v in result.variables} == {"s", "c"}
        assert len(result) == 3

    def test_constant_subject(self, people_store):
        result = run(people_store, "SELECT ?p ?o WHERE { ex:Marie_Curie ?p ?o }")
        assert len(result) == 3

    def test_ask_true_false(self, people_store):
        assert run(people_store, "ASK { ex:Marie_Curie ex:bornIn ex:Poland }")
        assert not run(people_store, "ASK { ex:Marie_Curie ex:bornIn ex:USA }")

    def test_empty_store(self, empty_store):
        assert len(evaluate_query(empty_store, "SELECT ?s WHERE { ?s ?p ?o }")) == 0


class TestModifiers:
    def test_distinct(self, people_store):
        result = run(people_store, "SELECT DISTINCT ?p WHERE { ?s ex:profession ?p }")
        assert len(result) == 2

    def test_without_distinct_duplicates_remain(self, people_store):
        result = run(people_store, "SELECT ?p WHERE { ?s ex:profession ?p }")
        assert len(result) == 3

    def test_limit_and_offset(self, people_store):
        full = run(people_store, "SELECT ?s WHERE { ?s ex:bornIn ?c } ORDER BY ?s")
        page = run(people_store, "SELECT ?s WHERE { ?s ex:bornIn ?c } ORDER BY ?s OFFSET 1 LIMIT 1")
        assert len(page) == 1
        assert page.rows[0] == full.rows[1]

    def test_order_by_ascending_descending(self, people_store):
        ascending = run(people_store, "SELECT ?n WHERE { ?s ex:name ?n } ORDER BY ?n")
        descending = run(people_store, "SELECT ?n WHERE { ?s ex:name ?n } ORDER BY DESC(?n)")
        ascending_values = [row.get_term(ascending.variables[0]).lexical for row in ascending]
        descending_values = [row.get_term(descending.variables[0]).lexical for row in descending]
        assert ascending_values == sorted(ascending_values)
        assert descending_values == list(reversed(ascending_values))

    def test_order_by_numeric(self):
        store = TripleStore()
        for index, age in enumerate([30, 4, 100]):
            store.add(Triple(EX[f"p{index}"], EX.age, Literal(age)))
        result = evaluate_query(
            store, "PREFIX ex: <http://example.org/kb1/> SELECT ?a WHERE { ?s ex:age ?a } ORDER BY ?a"
        )
        assert [row.get_term(result.variables[0]).to_python() for row in result] == [4, 30, 100]


class TestOptionalUnionValues:
    def test_optional_binds_when_present(self, people_store):
        result = run(
            people_store,
            "SELECT ?s ?other WHERE { ?s ex:bornIn ex:USA OPTIONAL { ?s owl:sameAs ?other } }",
        )
        assert result.rows[0].get_term(result.variables[1]) == EX2["FrankSinatra"]

    def test_optional_keeps_solution_when_absent(self, people_store):
        result = run(
            people_store,
            "SELECT ?s ?other WHERE { ?s ex:bornIn ex:Poland OPTIONAL { ?s owl:sameAs ?other } }",
        )
        assert len(result) == 1
        assert result.rows[0].get_term(result.variables[1]) is None

    def test_union(self, people_store):
        result = run(
            people_store,
            "SELECT ?s WHERE { { ?s ex:bornIn ex:USA } UNION { ?s ex:bornIn ex:Poland } }",
        )
        assert len(result) == 2

    def test_values_restricts_bindings(self, people_store):
        result = run(
            people_store,
            "SELECT ?s ?c WHERE { VALUES ?s { ex:Marie_Curie ex:Albert_Einstein } ?s ex:bornIn ?c }",
        )
        assert len(result) == 2

    def test_values_with_undef(self, people_store):
        result = run(
            people_store,
            "SELECT ?s ?c WHERE { VALUES (?s ?c) { (ex:Marie_Curie UNDEF) } ?s ex:bornIn ?c }",
        )
        assert len(result) == 1
        assert result.rows[0].get_term(result.variables[1]) == EX.Poland


class TestFiltersAndAggregates:
    def test_filter_regex(self, people_store):
        result = run(
            people_store,
            'SELECT ?s WHERE { ?s ex:name ?n FILTER REGEX(?n, "curie", "i") }',
        )
        assert len(result) == 1

    def test_filter_comparison(self, people_store):
        result = run(
            people_store,
            'SELECT ?s WHERE { ?s ex:name ?n FILTER(?n != "Marie Curie") }',
        )
        assert len(result) == 2

    def test_filter_not_exists(self, people_store):
        result = run(
            people_store,
            "SELECT ?s WHERE { ?s ex:bornIn ?c FILTER NOT EXISTS { ?s owl:sameAs ?x } }",
        )
        assert [row.get_term(result.variables[0]) for row in result] == [EX["Marie_Curie"]]

    def test_filter_exists(self, people_store):
        result = run(
            people_store,
            "SELECT ?s WHERE { ?s ex:bornIn ?c FILTER EXISTS { ?s owl:sameAs ?x } }",
        )
        assert len(result) == 2

    def test_count_star(self, people_store):
        result = run(people_store, "SELECT (COUNT(*) AS ?c) WHERE { ?s ex:bornIn ?o }")
        assert result.scalar_int() == 3

    def test_count_on_empty_pattern_is_zero(self, people_store):
        result = run(people_store, "SELECT (COUNT(*) AS ?c) WHERE { ?s ex:livesIn ?o }")
        assert result.scalar_int() == 0
        assert len(result) == 1

    def test_count_distinct_variable(self, people_store):
        result = run(
            people_store, "SELECT (COUNT(DISTINCT ?p) AS ?c) WHERE { ?s ex:profession ?p }"
        )
        assert result.scalar_int() == 2

    def test_count_group_by(self, people_store):
        result = run(
            people_store,
            "SELECT ?p (COUNT(?s) AS ?c) WHERE { ?s ex:profession ?p } GROUP BY ?p",
        )
        counts = {
            row.get_term(result.variables[0]).local_name: row.get_term(result.variables[1]).to_python()
            for row in result
        }
        assert counts == {"Physicist": 2, "Singer": 1}


class TestResultSetHelpers:
    def test_column_and_distinct_column(self, people_store):
        result = run(people_store, "SELECT ?p WHERE { ?s ex:profession ?p }")
        assert len(result.column("p")) == 3
        assert len(result.distinct_column("p")) == 2

    def test_to_dicts(self, people_store):
        result = run(people_store, "SELECT ?s WHERE { ?s ex:bornIn ex:USA }")
        assert result.to_dicts() == [{"s": EX["Frank_Sinatra"]}]

    def test_to_text_renders_header(self, people_store):
        result = run(people_store, "SELECT ?s ?c WHERE { ?s ex:bornIn ?c }")
        text = result.to_text(max_rows=2)
        assert "?s" in text and "?c" in text
        assert "more rows" in text

    def test_scalar_none_for_multi_row(self, people_store):
        result = run(people_store, "SELECT ?s WHERE { ?s ex:bornIn ?c }")
        assert result.scalar() is None

    def test_ask_result_equality(self):
        assert AskResult(True) == True  # noqa: E712
        assert AskResult(False) != AskResult(True)

    def test_evaluator_accepts_parsed_query(self, people_store):
        evaluator = QueryEvaluator(people_store)
        parsed = parse_query(PREFIX + "SELECT ?s WHERE { ?s ex:bornIn ex:USA }")
        result = evaluator.evaluate(parsed)
        assert isinstance(result, ResultSet) and len(result) == 1


class TestOrderByLimitTopK:
    """ORDER BY ... LIMIT takes the heap-based top-k path; its pages must
    be indistinguishable from slicing the fully sorted result."""

    @staticmethod
    def _numbers_store(count: int = 400) -> TripleStore:
        store = TripleStore()
        for index in range(count):
            entity = IRI(f"http://example.org/kb1/n{index}")
            store.add(Triple(entity, IRI("http://example.org/kb1/rank"), Literal((index * 37) % count)))
            store.add(Triple(entity, IRI("http://example.org/kb1/group"), Literal((index * 37) % 7)))
        return store

    @pytest.mark.parametrize(
        "order", ["?r", "DESC(?r)", "?g DESC(?r)", "DESC(?g) ?r"]
    )
    @pytest.mark.parametrize("offset,limit", [(0, 5), (3, 10), (0, 0), (395, 50)])
    def test_page_equals_full_sort_slice(self, order, offset, limit):
        store = self._numbers_store()
        base = (
            "SELECT ?s ?r ?g WHERE { ?s ex:rank ?r . ?s ex:group ?g } "
            f"ORDER BY {order}"
        )
        full = run(store, base)
        page = run(store, f"{base} OFFSET {offset} LIMIT {limit}")
        assert page.rows == full.rows[offset : offset + limit]

    def test_distinct_page_equals_full_sort_slice(self):
        store = self._numbers_store()
        base = "SELECT DISTINCT ?g WHERE { ?s ex:group ?g } ORDER BY DESC(?g)"
        full = run(store, base)
        page = run(store, f"{base} LIMIT 3")
        assert page.rows == full.rows[:3]

    def test_offset_past_result_is_empty(self):
        store = self._numbers_store(50)
        page = run(store, "SELECT ?r WHERE { ?s ex:rank ?r } ORDER BY ?r OFFSET 500 LIMIT 5")
        assert len(page) == 0

    def test_large_world_pages(self):
        from repro.synthetic.stream import generate_scale_world, scale_world_spec

        spec = scale_world_spec(20_000)
        world = generate_scale_world(spec)
        namespace = spec.namespace
        base = (
            f"SELECT ?a ?b WHERE {{ ?a <{namespace.term('p0').value}> ?b }} "
            "ORDER BY ?a DESC(?b)"
        )
        for evaluator in (
            QueryEvaluator(world.store),
            QueryEvaluator(world.store, use_vectorized=False),
        ):
            full = evaluator.evaluate(parse_query(base))
            page = evaluator.evaluate(parse_query(base + " OFFSET 7 LIMIT 25"))
            assert page.rows == full.rows[7:32]
