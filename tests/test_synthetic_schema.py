"""Unit tests for synthetic world specifications and the derived ground truth."""

import pytest

from repro.errors import SyntheticDataError
from repro.rdf.namespace import Namespace
from repro.synthetic.schema import (
    CanonicalEntityType,
    CanonicalRelation,
    GroundTruth,
    KBSpec,
    RelationMapping,
    WorldSpec,
)

A_NS = Namespace("http://schema.test/a/")
B_NS = Namespace("http://schema.test/b/")


def minimal_spec(**overrides) -> WorldSpec:
    kwargs = dict(
        entity_types=[CanonicalEntityType("person", 10), CanonicalEntityType("place", 5)],
        canonical_relations=[
            CanonicalRelation("bornAt", subject_type="person", object_type="place"),
            CanonicalRelation("livesAt", subject_type="person", object_type="place"),
        ],
        kb_specs=[
            KBSpec("a", A_NS, mappings=[RelationMapping("birthPlace", ("bornAt",))]),
            KBSpec(
                "b",
                B_NS,
                mappings=[RelationMapping("residence", ("bornAt", "livesAt"))],
            ),
        ],
    )
    kwargs.update(overrides)
    return WorldSpec(**kwargs)


class TestValidation:
    def test_minimal_spec_is_valid(self):
        spec = minimal_spec()
        assert spec.kb("a").name == "a"
        assert spec.canonical("bornAt").subject_type == "person"

    def test_entity_type_requires_positive_count(self):
        with pytest.raises(SyntheticDataError):
            CanonicalEntityType("person", 0)

    def test_entity_relation_requires_object_type(self):
        with pytest.raises(SyntheticDataError):
            CanonicalRelation("r", subject_type="person")

    def test_invalid_coverage(self):
        with pytest.raises(SyntheticDataError):
            CanonicalRelation("r", subject_type="p", object_type="q", subject_coverage=0.0)

    def test_invalid_object_range(self):
        with pytest.raises(SyntheticDataError):
            CanonicalRelation("r", subject_type="p", object_type="q", min_objects=2, max_objects=1)

    def test_literal_relation_cannot_be_correlated(self):
        with pytest.raises(SyntheticDataError):
            CanonicalRelation(
                "r", subject_type="p", literal=True, correlated_with="x", correlation=0.5
            )

    def test_exactly_two_kbs_required(self):
        with pytest.raises(SyntheticDataError):
            minimal_spec(kb_specs=[KBSpec("a", A_NS)])

    def test_unknown_subject_type_rejected(self):
        with pytest.raises(SyntheticDataError):
            minimal_spec(
                canonical_relations=[
                    CanonicalRelation("r", subject_type="alien", object_type="place")
                ]
            )

    def test_unknown_mapping_source_rejected(self):
        with pytest.raises(SyntheticDataError):
            minimal_spec(
                kb_specs=[
                    KBSpec("a", A_NS, mappings=[RelationMapping("x", ("missing",))]),
                    KBSpec("b", B_NS),
                ]
            )

    def test_correlation_must_reference_earlier_relation(self):
        with pytest.raises(SyntheticDataError):
            minimal_spec(
                canonical_relations=[
                    CanonicalRelation(
                        "r1", subject_type="person", object_type="place",
                        correlated_with="r2", correlation=0.5,
                    ),
                    CanonicalRelation("r2", subject_type="person", object_type="place"),
                ]
            )

    def test_duplicate_relation_names_rejected(self):
        with pytest.raises(SyntheticDataError):
            KBSpec("a", A_NS, mappings=[RelationMapping("x", ()), RelationMapping("x", ())])

    def test_invalid_retention_mode(self):
        with pytest.raises(SyntheticDataError):
            KBSpec("a", A_NS, retention_mode="sometimes")

    def test_invalid_link_rate(self):
        with pytest.raises(SyntheticDataError):
            minimal_spec(link_rate=0.0)

    def test_invalid_link_noise(self):
        with pytest.raises(SyntheticDataError):
            minimal_spec(link_noise=1.0)

    def test_kb_lookup_unknown_name(self):
        with pytest.raises(SyntheticDataError):
            minimal_spec().kb("nope")

    def test_canonical_lookup_unknown_name(self):
        with pytest.raises(SyntheticDataError):
            minimal_spec().canonical("nope")


class TestRelationMapping:
    def test_noise_detection(self):
        assert RelationMapping("n", ()).is_noise
        assert not RelationMapping("m", ("bornAt",)).is_noise

    def test_source_set(self):
        assert RelationMapping("m", ("a", "b")).source_set() == frozenset({"a", "b"})

    def test_kbspec_mapping_lookup(self):
        spec = minimal_spec().kb("a")
        assert spec.mapping("birthPlace").sources == ("bornAt",)
        with pytest.raises(SyntheticDataError):
            spec.mapping("nope")

    def test_relation_names(self):
        assert minimal_spec().kb("a").relation_names() == ["birthPlace"]


class TestGroundTruth:
    def test_subset_semantics(self):
        truth = minimal_spec().ground_truth()
        # a:birthPlace (bornAt) is subsumed by b:residence (bornAt ∪ livesAt)...
        assert truth.contains("a", A_NS.birthPlace, "b", B_NS.residence)
        # ...but not the other way around.
        assert not truth.contains("b", B_NS.residence, "a", A_NS.birthPlace)

    def test_equivalence_pairs(self):
        spec = minimal_spec(
            kb_specs=[
                KBSpec("a", A_NS, mappings=[RelationMapping("birthPlace", ("bornAt",))]),
                KBSpec("b", B_NS, mappings=[RelationMapping("placeOfBirth", ("bornAt",))]),
            ]
        )
        truth = spec.ground_truth()
        assert truth.equivalence_pairs("a", "b") == {(A_NS.birthPlace, B_NS.placeOfBirth)}

    def test_noise_relations_never_aligned(self):
        spec = minimal_spec(
            kb_specs=[
                KBSpec("a", A_NS, mappings=[RelationMapping("noise", ())]),
                KBSpec("b", B_NS, mappings=[RelationMapping("residence", ("bornAt",))]),
            ]
        )
        assert len(spec.ground_truth()) == 0

    def test_direction_specific_accessors(self):
        truth = minimal_spec().ground_truth()
        assert truth.subsumption_pairs("a", "b") == {(A_NS.birthPlace, B_NS.residence)}
        assert truth.subsumption_pairs("b", "a") == set()
        assert truth.conclusion_relations("a", "b") == {B_NS.residence}
        assert truth.premise_relations("a", "b") == {A_NS.birthPlace}

    def test_all_pairs_and_len(self):
        truth = minimal_spec().ground_truth()
        assert len(truth) == len(truth.all_pairs()) == 1

    def test_manual_construction(self):
        truth = GroundTruth()
        truth.add_subsumption("a", A_NS.x, "b", B_NS.y)
        assert truth.contains("a", A_NS.x, "b", B_NS.y)
