"""Unit tests for the low-level triple index."""

from repro.rdf.terms import IRI
from repro.store.index import TripleIndex

A = IRI("http://example.org/a")
B = IRI("http://example.org/b")
C = IRI("http://example.org/c")
D = IRI("http://example.org/d")


class TestTripleIndex:
    def test_add_and_contains(self):
        index = TripleIndex()
        assert index.add(A, B, C)
        assert index.contains(A, B, C)
        assert not index.contains(A, B, D)
        assert len(index) == 1

    def test_duplicate_add_is_noop(self):
        index = TripleIndex()
        assert index.add(A, B, C)
        assert not index.add(A, B, C)
        assert len(index) == 1

    def test_remove(self):
        index = TripleIndex()
        index.add(A, B, C)
        assert index.remove(A, B, C)
        assert not index.contains(A, B, C)
        assert len(index) == 0

    def test_remove_absent_returns_false(self):
        index = TripleIndex()
        assert not index.remove(A, B, C)
        index.add(A, B, C)
        assert not index.remove(A, B, D)
        assert not index.remove(A, D, C)

    def test_remove_cleans_empty_levels(self):
        index = TripleIndex()
        index.add(A, B, C)
        index.remove(A, B, C)
        assert not index.has_key(A)
        assert list(index.keys()) == []

    def test_seconds_and_thirds(self):
        index = TripleIndex()
        index.add(A, B, C)
        index.add(A, B, D)
        index.add(A, C, D)
        assert set(index.seconds(A)) == {B, C}
        assert set(index.thirds(A, B)) == {C, D}
        assert list(index.thirds(A, D)) == []
        assert list(index.thirds(D, B)) == []

    def test_pairs(self):
        index = TripleIndex()
        index.add(A, B, C)
        index.add(A, C, D)
        assert set(index.pairs(A)) == {(B, C), (C, D)}
        assert set(index.pairs(D)) == set()

    def test_triples_iteration(self):
        index = TripleIndex()
        entries = {(A, B, C), (A, B, D), (B, C, D)}
        for entry in entries:
            index.add(*entry)
        assert set(index.triples()) == entries

    def test_counts(self):
        index = TripleIndex()
        index.add(A, B, C)
        index.add(A, B, D)
        index.add(B, C, D)
        assert index.key_count() == 2
        assert index.count_for_key(A) == 2
        assert index.count_for_key(B) == 1
        assert index.count_for_key(C) == 0
        assert index.second_count_for_key(A) == 1

    def test_clear(self):
        index = TripleIndex()
        index.add(A, B, C)
        index.clear()
        assert len(index) == 0
        assert not index.has_key(A)
