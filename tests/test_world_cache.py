"""Tests for the spec-hash world cache."""

import json

import pytest

from repro.synthetic.cache import (
    CACHE_FORMAT,
    cache_limit_bytes,
    cache_root,
    entry_path,
    evict,
    load_or_generate,
    spec_cache_key,
)
from repro.synthetic.stream import scale_world_spec

SPEC = scale_world_spec(2500)


class TestCacheKey:
    def test_stable_for_equal_specs(self):
        assert spec_cache_key(SPEC) == spec_cache_key(scale_world_spec(2500))

    def test_changes_with_spec_fields(self):
        assert spec_cache_key(SPEC) != spec_cache_key(scale_world_spec(2501))
        assert spec_cache_key(SPEC) != spec_cache_key(scale_world_spec(2500, seed=9))

    def test_entry_name_embeds_hash(self, tmp_path):
        entry = entry_path(SPEC, tmp_path)
        assert entry.name == f"{SPEC.name}-{spec_cache_key(SPEC)[:12]}"


class TestLoadOrGenerate:
    def test_miss_then_hit(self, tmp_path):
        first = load_or_generate(SPEC, root=tmp_path)
        assert not first.cache_hit
        assert first.path is not None and first.path.is_dir()
        second = load_or_generate(SPEC, root=tmp_path)
        assert second.cache_hit
        assert set(second.store) == set(first.store)
        manifest = json.loads((second.path / "manifest.json").read_text())
        assert manifest["spec_hash"] == spec_cache_key(SPEC)
        assert manifest["cache_format"] == CACHE_FORMAT
        assert manifest["triples"] == len(second.store)

    def test_refresh_forces_regeneration(self, tmp_path):
        load_or_generate(SPEC, root=tmp_path)
        refreshed = load_or_generate(SPEC, root=tmp_path, refresh=True)
        assert not refreshed.cache_hit
        assert load_or_generate(SPEC, root=tmp_path).cache_hit

    def test_corrupt_snapshot_regenerated(self, tmp_path):
        cached = load_or_generate(SPEC, root=tmp_path)
        snapshot = cached.path / "world.snap"
        payload = bytearray(snapshot.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        snapshot.write_bytes(bytes(payload))
        repaired = load_or_generate(SPEC, root=tmp_path)
        assert not repaired.cache_hit
        assert load_or_generate(SPEC, root=tmp_path).cache_hit

    def test_stale_manifest_regenerated(self, tmp_path):
        cached = load_or_generate(SPEC, root=tmp_path)
        manifest_path = cached.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["spec_hash"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        repaired = load_or_generate(SPEC, root=tmp_path)
        assert not repaired.cache_hit
        assert load_or_generate(SPEC, root=tmp_path).cache_hit

    def test_missing_manifest_regenerated(self, tmp_path):
        cached = load_or_generate(SPEC, root=tmp_path)
        (cached.path / "manifest.json").unlink()
        assert not load_or_generate(SPEC, root=tmp_path).cache_hit

    def test_hit_store_matches_fresh_generation(self, tmp_path):
        from repro.synthetic.stream import generate_scale_world

        load_or_generate(SPEC, root=tmp_path)
        hit = load_or_generate(SPEC, root=tmp_path)
        fresh = generate_scale_world(SPEC)
        assert set(hit.store) == set(fresh.store)


class TestEnvironmentKnobs:
    def test_disabled_values(self, monkeypatch):
        for value in ("", "0", "off", "NONE", "Disabled"):
            monkeypatch.setenv("REPRO_WORLD_CACHE", value)
            assert cache_root() is None

    def test_disabled_skips_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORLD_CACHE", "off")
        cached = load_or_generate(SPEC)
        assert not cached.cache_hit and cached.path is None

    def test_relocation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORLD_CACHE", str(tmp_path / "relocated"))
        assert cache_root() == tmp_path / "relocated"
        cached = load_or_generate(SPEC)
        assert cached.path is not None
        assert cached.path.parent == tmp_path / "relocated"
        assert load_or_generate(SPEC).cache_hit

    def test_default_root_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORLD_CACHE", raising=False)
        root = cache_root()
        assert root is not None and root.name == "repro-worlds"

    def test_limit_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORLD_CACHE_LIMIT", "12345")
        assert cache_limit_bytes() == 12345
        monkeypatch.setenv("REPRO_WORLD_CACHE_LIMIT", "junk")
        assert cache_limit_bytes() is None
        monkeypatch.setenv("REPRO_WORLD_CACHE_LIMIT", "-1")
        assert cache_limit_bytes() is None


class TestEviction:
    def test_oldest_entries_dropped_first(self, tmp_path):
        import os
        import time

        old = load_or_generate(scale_world_spec(2500), root=tmp_path)
        new = load_or_generate(scale_world_spec(2600), root=tmp_path)
        past = time.time() - 3600
        os.utime(old.path, (past, past))
        removed = evict(tmp_path, limit_bytes=sum(
            child.stat().st_size for child in new.path.rglob("*") if child.is_file()
        ))
        assert removed == 1
        assert not old.path.exists()
        assert new.path.exists()

    def test_keep_protects_entry(self, tmp_path):
        kept = load_or_generate(SPEC, root=tmp_path)
        removed = evict(tmp_path, limit_bytes=1, keep=kept.path)
        assert removed == 0
        assert kept.path.exists()

    def test_no_limit_is_noop(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_WORLD_CACHE_LIMIT", raising=False)
        cached = load_or_generate(SPEC, root=tmp_path)
        assert evict(tmp_path) == 0
        assert cached.path.exists()

    def test_staging_leftovers_swept(self, tmp_path):
        load_or_generate(SPEC, root=tmp_path)
        leftover = tmp_path / "junk.tmp-99999"
        leftover.mkdir()
        assert evict(tmp_path) == 1
        assert not leftover.exists()
