"""Unit tests for the triple store."""

import pytest

from repro.errors import StoreError
from repro.rdf.terms import IRI, Literal
from repro.rdf.triple import Triple, TriplePattern
from repro.store.triplestore import TripleStore

from tests.conftest import EX


def triple(s: str, p: str, o) -> Triple:
    obj = o if not isinstance(o, str) else EX[o]
    return Triple(EX[s], EX[p], obj)


class TestMutation:
    def test_add_and_len(self, empty_store):
        assert empty_store.add(triple("a", "p", "b"))
        assert len(empty_store) == 1

    def test_duplicate_add(self, empty_store):
        empty_store.add(triple("a", "p", "b"))
        assert not empty_store.add(triple("a", "p", "b"))
        assert len(empty_store) == 1

    def test_add_all_returns_inserted_count(self, empty_store):
        inserted = empty_store.add_all([triple("a", "p", "b"), triple("a", "p", "b"), triple("a", "p", "c")])
        assert inserted == 2

    def test_remove(self, empty_store):
        empty_store.add(triple("a", "p", "b"))
        assert empty_store.remove(triple("a", "p", "b"))
        assert len(empty_store) == 0
        assert not empty_store.remove(triple("a", "p", "b"))

    def test_remove_keeps_other_triples(self, empty_store):
        empty_store.add(triple("a", "p", "b"))
        empty_store.add(triple("a", "p", "c"))
        empty_store.remove(triple("a", "p", "b"))
        assert triple("a", "p", "c") in empty_store

    def test_clear(self, people_store):
        people_store.clear()
        assert len(people_store) == 0

    def test_add_rejects_non_triple(self, empty_store):
        with pytest.raises(StoreError):
            empty_store.add(("a", "b", "c"))  # type: ignore[arg-type]

    def test_contains_non_triple_is_false(self, people_store):
        assert "not a triple" not in people_store


class TestMatch:
    def test_fully_bound_hit(self, people_store):
        matches = list(people_store.match(EX["Frank_Sinatra"], EX.bornIn, EX.USA))
        assert len(matches) == 1

    def test_fully_bound_miss(self, people_store):
        assert list(people_store.match(EX["Frank_Sinatra"], EX.bornIn, EX.Poland)) == []

    def test_subject_predicate(self, people_store):
        matches = list(people_store.match(EX["Marie_Curie"], EX.profession, None))
        assert [m.object for m in matches] == [EX.Physicist]

    def test_subject_object(self, people_store):
        matches = list(people_store.match(EX["Marie_Curie"], None, EX.Physicist))
        assert [m.predicate for m in matches] == [EX.profession]

    def test_subject_only(self, people_store):
        assert len(list(people_store.match(subject=EX["Frank_Sinatra"]))) == 4

    def test_predicate_object(self, people_store):
        matches = list(people_store.match(None, EX.profession, EX.Physicist))
        assert {m.subject for m in matches} == {EX["Albert_Einstein"], EX["Marie_Curie"]}

    def test_predicate_only(self, people_store):
        assert len(list(people_store.match(predicate=EX.bornIn))) == 3

    def test_object_only(self, people_store):
        matches = list(people_store.match(object=EX.Physicist))
        assert len(matches) == 2

    def test_full_scan(self, people_store):
        assert len(list(people_store.match())) == len(people_store)

    def test_match_pattern_object(self, people_store):
        pattern = TriplePattern(predicate=EX.name)
        assert len(list(people_store.match_pattern(pattern))) == 3

    def test_iteration_yields_all_triples(self, people_store):
        assert len(set(people_store)) == len(people_store)


class TestCount:
    def test_count_all(self, people_store):
        assert people_store.count() == len(people_store)

    def test_count_by_predicate_uses_index(self, people_store):
        assert people_store.count(predicate=EX.bornIn) == 3

    def test_count_by_subject(self, people_store):
        assert people_store.count(subject=EX["Marie_Curie"]) == 3

    def test_count_by_object(self, people_store):
        assert people_store.count(object=EX.Physicist) == 2

    def test_count_mixed_pattern(self, people_store):
        assert people_store.count(subject=EX["Marie_Curie"], predicate=EX.bornIn) == 1


class TestVocabulary:
    def test_predicates_sorted(self, people_store):
        predicates = people_store.predicates()
        assert predicates == sorted(predicates, key=lambda p: p.value)
        assert EX.bornIn in predicates

    def test_subjects_for_predicate(self, people_store):
        assert len(list(people_store.subjects(EX.bornIn))) == 3

    def test_subjects_all(self, people_store):
        assert EX["Marie_Curie"] in set(people_store.subjects())

    def test_objects_for_predicate(self, people_store):
        assert EX.USA in set(people_store.objects(EX.bornIn))

    def test_objects_of(self, people_store):
        assert people_store.objects_of(EX["Frank_Sinatra"], EX.bornIn) == [EX.USA]

    def test_subjects_of(self, people_store):
        assert set(people_store.subjects_of(EX.profession, EX.Physicist)) == {
            EX["Albert_Einstein"],
            EX["Marie_Curie"],
        }

    def test_predicates_of(self, people_store):
        assert set(people_store.predicates_of(EX["Marie_Curie"])) == {
            EX.bornIn,
            EX.name,
            EX.profession,
        }

    def test_predicates_between(self, people_store):
        assert people_store.predicates_between(EX["Frank_Sinatra"], EX.USA) == [EX.bornIn]

    def test_has_subject(self, people_store):
        assert people_store.has_subject(EX["Frank_Sinatra"])
        assert not people_store.has_subject(EX["Nobody"])

    def test_entities_excludes_literals(self, people_store):
        entities = people_store.entities()
        assert EX.USA in entities
        assert all(not isinstance(e, Literal) for e in entities)


class TestStatisticsAndCopy:
    def test_predicate_statistics(self, people_store):
        stats = people_store.predicate_statistics(EX.name)
        assert stats.fact_count == 3
        assert stats.distinct_subjects == 3
        assert stats.is_literal_valued
        assert stats.functionality == pytest.approx(1.0)

    def test_store_statistics(self, people_store):
        stats = people_store.statistics()
        assert stats.triple_count == len(people_store)
        assert stats.predicate_count == len(people_store.predicates())
        assert set(stats.predicates) == set(people_store.predicates())

    def test_top_predicates(self, people_store):
        top = people_store.statistics().top_predicates(2)
        assert len(top) == 2
        assert top[0].fact_count >= top[1].fact_count

    def test_copy_is_independent(self, people_store):
        clone = people_store.copy()
        assert len(clone) == len(people_store)
        clone.add(Triple(EX["New"], EX.bornIn, EX.USA))
        assert len(clone) == len(people_store) + 1

    def test_repr_mentions_name_and_size(self, people_store):
        assert "people" in repr(people_store)
