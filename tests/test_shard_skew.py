"""Regression tests for the last-shard pile-up tripwire.

Subject-range boundaries freeze at the first bulk load, so subjects
interned afterwards always route to the last shard's open-ended range
(the hazard flagged in the ROADMAP).  The store now emits a
:class:`~repro.errors.ShardSkewWarning` — once — when that shard outgrows
its siblings beyond the configured threshold.
"""

import warnings

import pytest

from repro.errors import ShardSkewWarning, StoreError
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore

EX = Namespace("http://skew.test/")


def _seed_triples(subjects=8, predicates=2):
    return [
        Triple(EX[f"seed{s}"], EX[f"p{p}"], EX[f"o{s}"])
        for s in range(subjects)
        for p in range(predicates)
    ]


def _late_triples(count, start=0):
    """Triples whose subjects are new terms (interned after the freeze)."""
    return [Triple(EX[f"late{start + i}"], EX.p0, EX.o0) for i in range(count)]


class TestShardSkewWarning:
    def test_late_bulk_load_pileup_warns(self):
        store = ShardedTripleStore(num_shards=2, skew_threshold=2.0)
        store.bulk_load(_seed_triples())  # freezes balanced boundaries
        with pytest.warns(ShardSkewWarning, match="last shard"):
            store.bulk_load(_late_triples(120))
        # The pile-up really is in the last shard.
        sizes = store.shard_sizes()
        assert sizes[-1] > 2.0 * sizes[0]

    def test_late_adds_pileup_warns(self):
        store = ShardedTripleStore(num_shards=2, skew_threshold=2.0)
        store.bulk_load(_seed_triples())
        with pytest.warns(ShardSkewWarning):
            for triple in _late_triples(120):
                store.add(triple)

    def test_warning_fires_only_once(self):
        store = ShardedTripleStore(num_shards=2, skew_threshold=2.0)
        store.bulk_load(_seed_triples())
        with pytest.warns(ShardSkewWarning):
            store.bulk_load(_late_triples(120))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store.bulk_load(_late_triples(120, start=1000))
            store.add(Triple(EX.one_more, EX.p0, EX.o0))
        assert [w for w in caught if issubclass(w.category, ShardSkewWarning)] == []

    def test_balanced_first_load_never_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store = ShardedTripleStore(num_shards=4, skew_threshold=2.0)
            store.bulk_load(
                [
                    Triple(EX[f"s{i}"], EX.p0, EX[f"o{i % 5}"])
                    for i in range(400)
                ]
            )
        assert [w for w in caught if issubclass(w.category, ShardSkewWarning)] == []

    def test_small_pileups_stay_silent(self):
        # Below the absolute floor (64 triples in the last shard) even a
        # badly skewed store stays quiet — tiny datasets are noise.
        store = ShardedTripleStore(num_shards=2, skew_threshold=2.0)
        store.bulk_load(_seed_triples(subjects=2, predicates=1))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store.bulk_load(_late_triples(40))
        assert [w for w in caught if issubclass(w.category, ShardSkewWarning)] == []

    def test_single_shard_never_warns(self):
        store = ShardedTripleStore(num_shards=1, skew_threshold=2.0)
        store.bulk_load(_seed_triples())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store.bulk_load(_late_triples(200))
        assert [w for w in caught if issubclass(w.category, ShardSkewWarning)] == []

    def test_add_only_store_seeds_boundaries(self):
        # add()-only stores used to route everything to shard 0 forever
        # (bisect over empty boundaries).  Now the first 64 distinct
        # subjects seed the boundaries, so pure-add stores actually
        # shard; the later pile-up on the last shard's open range is the
        # ordinary frozen-era warning, not the unbounded one.
        store = ShardedTripleStore(num_shards=4, skew_threshold=2.0)
        with pytest.warns(ShardSkewWarning, match="last shard"):
            for triple in _late_triples(300):
                store.add(triple)
        sizes = store.shard_sizes()
        assert sum(sizes) == 300
        assert min(sizes) > 0  # not everything on one shard any more
        assert store.boundaries  # seeding froze the ranges

    def test_add_only_store_with_few_subjects_warns_honestly(self):
        # Too few distinct subjects to ever seed boundaries: the store
        # stays unbounded, piles onto shard 0, and says exactly that.
        store = ShardedTripleStore(num_shards=4, skew_threshold=2.0)
        triples = [
            Triple(EX[f"late{i % 8}"], EX[f"p{i}"], EX.o0) for i in range(300)
        ]
        with pytest.warns(ShardSkewWarning, match="cannot be seeded"):
            for triple in triples:
                store.add(triple)
        assert store.shard_sizes() == [300, 0, 0, 0]
        assert not store.boundaries

    def test_small_add_prelude_before_bulk_load_stays_silent(self):
        # The common build pattern — a handful of add()s and then the
        # boundary-fixing bulk load — must not trip the unbounded check.
        store = ShardedTripleStore(num_shards=4, skew_threshold=2.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for triple in _late_triples(100):
                store.add(triple)
            store.bulk_load(_late_triples(400, start=100))
        assert [w for w in caught if issubclass(w.category, ShardSkewWarning)] == []
        # The bulk load balanced the store, re-homing the earlier adds.
        sizes = store.shard_sizes()
        assert min(sizes) > 0

    def test_freeze_rearms_the_warning(self):
        # A seeded-era warning must not mask a later frozen-era pile-up
        # after a re-freeze: fixing boundaries re-arms the one-shot.
        store = ShardedTripleStore(num_shards=2, skew_threshold=2.0)
        with pytest.warns(ShardSkewWarning, match="last shard"):
            for triple in _late_triples(300):
                store.add(triple)
        store.bulk_load(_seed_triples())  # re-freezes + re-homes
        with pytest.warns(ShardSkewWarning, match="last shard"):
            store.bulk_load(_late_triples(2000, start=1000))

    def test_threshold_validation(self):
        with pytest.raises(StoreError):
            ShardedTripleStore(num_shards=2, skew_threshold=1.0)

    def test_copy_preserves_threshold(self):
        store = ShardedTripleStore(num_shards=2, skew_threshold=3.5)
        store.bulk_load(_seed_triples())
        assert store.copy().skew_threshold == 3.5


class TestSkewLatchPersistence:
    """The one-shot latch is a *dataset* property, not a process one.

    Before the fix the latch lived only on the in-memory instance, so
    every snapshot reopen — which the process-worker deployment performs
    on every serve() restart and worker respawn — re-armed it and the
    same pile-up warned again in every process.  The latch now travels
    through the sharded manifest.
    """

    def _skewed_saved_store(self, tmp_path):
        store = ShardedTripleStore(num_shards=2, skew_threshold=2.0)
        store.bulk_load(_seed_triples())
        with pytest.warns(ShardSkewWarning):
            store.bulk_load(_late_triples(120))
        store.save(tmp_path / "snap")
        return tmp_path / "snap"

    def test_reopened_snapshot_does_not_rewarn(self, tmp_path):
        directory = self._skewed_saved_store(tmp_path)
        reopened = ShardedTripleStore.open(directory)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # Even more pile-up on the reopened store: still latched.
            reopened.bulk_load(_late_triples(300, start=5000))
            for triple in _late_triples(50, start=9000):
                reopened.add(triple)
        assert [
            w for w in caught if issubclass(w.category, ShardSkewWarning)
        ] == []

    def test_latch_survives_a_second_round_trip(self, tmp_path):
        directory = self._skewed_saved_store(tmp_path)
        middle = ShardedTripleStore.open(directory)
        middle.save(tmp_path / "resaved")
        final = ShardedTripleStore.open(tmp_path / "resaved")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            final.bulk_load(_late_triples(300, start=5000))
        assert [
            w for w in caught if issubclass(w.category, ShardSkewWarning)
        ] == []

    def test_unwarned_snapshot_still_warns_once_after_reopen(self, tmp_path):
        # The fix must not swallow first warnings: a store saved *before*
        # any skew developed warns (once) when the pile-up happens on the
        # reopened side.
        store = ShardedTripleStore(num_shards=2, skew_threshold=2.0)
        store.bulk_load(_seed_triples())
        store.save(tmp_path / "snap")
        reopened = ShardedTripleStore.open(tmp_path / "snap")
        with pytest.warns(ShardSkewWarning, match="last shard"):
            reopened.bulk_load(_late_triples(120))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reopened.bulk_load(_late_triples(120, start=1000))
        assert [
            w for w in caught if issubclass(w.category, ShardSkewWarning)
        ] == []
