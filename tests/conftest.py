"""Shared fixtures for the test suite.

The expensive fixtures (generated worlds) are session-scoped: they are
deterministic, read-only from the tests' point of view, and regenerating
them per test would dominate the suite's runtime.
"""

from __future__ import annotations

import pytest

from repro.kb.knowledge_base import KnowledgeBase
from repro.rdf.namespace import Namespace, OWL
from repro.rdf.terms import IRI, Literal
from repro.rdf.triple import Triple
from repro.store.triplestore import TripleStore
from repro.synthetic.generator import generate_world
from repro.synthetic.presets import movie_world_spec, music_world_spec, yago_dbpedia_spec

#: Namespaces used by the hand-built fixtures.
EX = Namespace("http://example.org/kb1/")
EX2 = Namespace("http://example.org/kb2/")


@pytest.fixture
def empty_store() -> TripleStore:
    """A fresh empty store."""
    return TripleStore(name="empty")


@pytest.fixture
def people_store() -> TripleStore:
    """A small store about three people, with entity and literal facts."""
    store = TripleStore(name="people")
    sinatra = EX["Frank_Sinatra"]
    einstein = EX["Albert_Einstein"]
    curie = EX["Marie_Curie"]
    store.add_all(
        [
            Triple(sinatra, EX.bornIn, EX.USA),
            Triple(sinatra, EX.name, Literal("Frank Sinatra")),
            Triple(sinatra, EX.profession, EX.Singer),
            Triple(einstein, EX.bornIn, EX.Germany),
            Triple(einstein, EX.name, Literal("Albert Einstein")),
            Triple(einstein, EX.profession, EX.Physicist),
            Triple(curie, EX.bornIn, EX.Poland),
            Triple(curie, EX.name, Literal("Marie Curie")),
            Triple(curie, EX.profession, EX.Physicist),
            Triple(sinatra, OWL.sameAs, EX2["FrankSinatra"]),
            Triple(einstein, OWL.sameAs, EX2["AlbertEinstein"]),
        ]
    )
    return store


@pytest.fixture
def people_kb(people_store: TripleStore) -> KnowledgeBase:
    """The people store wrapped as a knowledge base."""
    return KnowledgeBase(name="people", namespace=EX, store=people_store)


@pytest.fixture(scope="session")
def movie_world():
    """The hasDirector / hasProducer / directedBy world (§2.2 case 2)."""
    return generate_world(movie_world_spec(films=80, people=100, seed=11))


@pytest.fixture(scope="session")
def music_world():
    """The composerOf / writerOf / creatorOf world (§2.2 case 1)."""
    return generate_world(music_world_spec(artists=100, works=200, seed=13))


@pytest.fixture(scope="session")
def small_yago_dbpedia_world():
    """A scaled-down YAGO-like / DBpedia-like pair for integration tests."""
    spec = yago_dbpedia_spec(
        families=10,
        yago_relation_count=30,
        dbpedia_relation_count=60,
        people=180,
        works=140,
        places=70,
        orgs=60,
        noise_fact_count=8,
        seed=97,
    )
    return generate_world(spec)
