"""Unit tests for the CWA / PCA confidence measures (Eq. 1 and Eq. 2)."""

import pytest

from repro.errors import AlignmentError
from repro.align.confidence import (
    confidence_of,
    cwa_confidence,
    cwa_confidence_of,
    pca_confidence,
    pca_confidence_of,
    support_of,
)
from repro.align.evidence import EvidenceSet, SubjectEvidence

from tests.conftest import EX


def make_evidence():
    """Three subjects:

    * s1: premise objects {a, b}, conclusion objects {a}      (1 shared of 2, has r facts)
    * s2: premise objects {c},    conclusion objects {}        (0 shared, no r facts)
    * s3: premise objects {d},    conclusion objects {d, e}    (1 shared of 1, has r facts)

    positives = 2, premise pairs = 4, pca body pairs = 3.
    """
    evidence = EvidenceSet()
    evidence.add(SubjectEvidence(EX.s1, premise_objects=[EX.a, EX.b], conclusion_objects=[EX.a]))
    evidence.add(SubjectEvidence(EX.s2, premise_objects=[EX.c], conclusion_objects=[]))
    evidence.add(SubjectEvidence(EX.s3, premise_objects=[EX.d], conclusion_objects=[EX.d, EX.e]))
    return evidence


class TestCountBasedFunctions:
    def test_cwa_formula(self):
        assert cwa_confidence(2, 4) == pytest.approx(0.5)

    def test_pca_formula(self):
        assert pca_confidence(2, 3) == pytest.approx(2 / 3)

    def test_zero_denominators(self):
        assert cwa_confidence(0, 0) == 0.0
        assert pca_confidence(0, 0) == 0.0

    def test_full_confidence(self):
        assert cwa_confidence(5, 5) == 1.0
        assert pca_confidence(5, 5) == 1.0

    def test_negative_counts_rejected(self):
        with pytest.raises(AlignmentError):
            cwa_confidence(-1, 2)
        with pytest.raises(AlignmentError):
            pca_confidence(1, -2)

    def test_positives_exceeding_denominator_rejected(self):
        with pytest.raises(AlignmentError):
            cwa_confidence(5, 3)


class TestEvidenceBasedFunctions:
    def test_counts_extracted_from_evidence(self):
        evidence = make_evidence()
        assert evidence.positive_pairs() == 2
        assert evidence.premise_pairs() == 4
        assert evidence.pca_body_pairs() == 3
        assert evidence.counts() == (2, 4, 3)

    def test_cwa_of_evidence(self):
        assert cwa_confidence_of(make_evidence()) == pytest.approx(0.5)

    def test_pca_of_evidence(self):
        assert pca_confidence_of(make_evidence()) == pytest.approx(2 / 3)

    def test_pca_at_least_cwa(self):
        evidence = make_evidence()
        assert pca_confidence_of(evidence) >= cwa_confidence_of(evidence)

    def test_confidence_of_dispatch(self):
        evidence = make_evidence()
        assert confidence_of(evidence, "pca") == pca_confidence_of(evidence)
        assert confidence_of(evidence, "cwa") == cwa_confidence_of(evidence)

    def test_confidence_of_unknown_measure(self):
        with pytest.raises(AlignmentError):
            confidence_of(make_evidence(), "f1")

    def test_support(self):
        assert support_of(make_evidence()) == 2

    def test_empty_evidence(self):
        empty = EvidenceSet()
        assert cwa_confidence_of(empty) == 0.0
        assert pca_confidence_of(empty) == 0.0
        assert support_of(empty) == 0

    def test_pca_ignores_subjects_without_conclusion_facts(self):
        # The key difference between Eq. 1 and Eq. 2: subject s2 contributes
        # to the CWA denominator but not to the PCA denominator.
        evidence = EvidenceSet()
        evidence.add(SubjectEvidence(EX.s1, premise_objects=[EX.a], conclusion_objects=[EX.a]))
        evidence.add(SubjectEvidence(EX.s2, premise_objects=[EX.b], conclusion_objects=[]))
        assert pca_confidence_of(evidence) == 1.0
        assert cwa_confidence_of(evidence) == 0.5
