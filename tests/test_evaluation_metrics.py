"""Unit tests for evaluation metrics and text tables."""

import pytest

from repro.evaluation.metrics import confusion_counts, precision_recall_f1
from repro.evaluation.tables import TextTable


class TestPrecisionRecallF1:
    def test_perfect_prediction(self):
        gold = {("a", "x"), ("b", "y")}
        report = precision_recall_f1(gold, gold)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_half_precision_full_recall(self):
        gold = {("a", "x")}
        predicted = {("a", "x"), ("b", "y")}
        report = precision_recall_f1(predicted, gold)
        assert report.precision == pytest.approx(0.5)
        assert report.recall == 1.0
        assert report.f1 == pytest.approx(2 / 3)

    def test_partial_recall(self):
        gold = {("a", "x"), ("b", "y"), ("c", "z")}
        predicted = {("a", "x")}
        report = precision_recall_f1(predicted, gold)
        assert report.recall == pytest.approx(1 / 3)
        assert report.true_positives == 1
        assert report.false_negatives == 2

    def test_disjoint_sets(self):
        report = precision_recall_f1({("a", "x")}, {("b", "y")})
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.f1 == 0.0

    def test_empty_prediction_and_empty_gold(self):
        report = precision_recall_f1(set(), set())
        assert report.precision == 1.0
        assert report.recall == 1.0

    def test_empty_prediction_nonempty_gold(self):
        report = precision_recall_f1(set(), {("a", "x")})
        assert report.precision == 0.0
        assert report.recall == 0.0

    def test_nonempty_prediction_empty_gold(self):
        report = precision_recall_f1({("a", "x")}, set())
        assert report.precision == 0.0
        assert report.recall == 1.0

    def test_confusion_counts(self):
        assert confusion_counts({1, 2, 3}, {2, 3, 4}) == (2, 1, 1)

    def test_as_row_rounding(self):
        report = precision_recall_f1({("a", "x"), ("b", "y"), ("c", "z")}, {("a", "x")})
        assert report.as_row() == (pytest.approx(0.333), 1.0, 0.5)

    def test_str_contains_counts(self):
        report = precision_recall_f1({("a", "x")}, {("a", "x")})
        assert "tp=1" in str(report)


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["method", "P", "F1"], title="Results")
        table.add_row("ubs", 0.951, 0.974)
        table.add_row("pca", 0.55, 0.58)
        text = table.render()
        assert "Results" in text
        assert "0.95" in text and "0.55" in text
        lines = text.splitlines()
        assert len({len(line) for line in lines[2:]}) <= 2  # aligned columns

    def test_wrong_arity_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_separator_rendering(self):
        table = TextTable(["a"])
        table.add_row("x")
        table.add_separator()
        table.add_row("y")
        assert table.render().count("---") >= 1

    def test_str_equals_render(self):
        table = TextTable(["a"])
        table.add_row("x")
        assert str(table) == table.render()
