"""Differential fuzzing: vectorized kernels vs the scalar reference.

For hypothesis-generated datasets, every query family must produce the
same solution multiset whether the group is evaluated by the block
kernels or by the scalar per-row operators — across every backend the
kernels claim to support:

* the warm single store,
* a cold mmap-reopened snapshot of it,
* ``ShardedQueryEvaluator`` at 1, 2 and 8 thread-backed shards,
* the process-backed scatter executor (whose workers build their own
  vectorized evaluators over the per-shard snapshots).

The reference is always ``QueryEvaluator(..., use_vectorized=False)``.
LIMIT pages may legitimately differ in *which* rows they pick, so they
assert size + subset-of-universe instead of identity (ASK and LIMIT also
exercise the early-exit path through the block stream).
"""

import multiprocessing
import os
import tempfile
from collections import Counter
from contextlib import ExitStack
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.sparql.ast import (
    AskQuery,
    CountExpression,
    GroupGraphPattern,
    OptionalNode,
    ProjectionItem,
    SelectQuery,
    TriplePatternNode,
    UnionNode,
    ValuesNode,
)
from repro.sparql.bindings import Variable
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store.triplestore import TripleStore

EX = Namespace("http://diffvec.test/")

START_METHOD = os.environ.get("REPRO_WORKER_START_METHOD") or None
if START_METHOD and START_METHOD not in multiprocessing.get_all_start_methods():
    pytest.skip(
        f"start method {START_METHOD!r} unsupported on this platform",
        allow_module_level=True,
    )

SHARD_COUNTS = (1, 2, 8)

# Deliberately tiny vocabulary so random BGPs actually join; repeated
# variables within one pattern (e.g. ?a ?a ?b) are drawn too, exercising
# the kernels' refusal path.
_iris = st.sampled_from([EX[f"n{index}"] for index in range(6)])
_literals = st.sampled_from(
    [Literal("v0"), Literal("v1", language="en"), Literal(7)]
)
_objects = st.one_of(_iris, _literals)
_variables = st.sampled_from([Variable(name) for name in "abc"])
_subject_terms = st.one_of(_variables, _iris)
_object_terms = st.one_of(_variables, _iris)
_patterns = st.builds(
    TriplePatternNode, _subject_terms, _subject_terms, _object_terms
)
_pattern_lists = st.lists(_patterns, min_size=1, max_size=3)
_triples = st.lists(st.builds(Triple, _iris, _iris, _objects), max_size=40)
_values_nodes = st.lists(
    st.tuples(st.one_of(st.none(), _iris), st.one_of(st.none(), _iris)),
    min_size=1,
    max_size=3,
).map(
    lambda rows: ValuesNode(
        variables=(Variable("a"), Variable("b")), rows=tuple(rows)
    )
)


def _multiset(result) -> Counter:
    return Counter(frozenset(row.items()) for row in result)


def _select(*elements, **modifiers) -> SelectQuery:
    return SelectQuery(
        projection=(),
        where=GroupGraphPattern(tuple(elements)),
        select_all=True,
        **modifiers,
    )


def _vectorized_evaluators(triples, stack: ExitStack):
    """``(scalar reference, [(label, vectorized evaluator), ...])``."""
    reference = QueryEvaluator(TripleStore(triples=triples), use_vectorized=False)
    warm = TripleStore(triples=triples)
    evaluators = [("warm", QueryEvaluator(warm))]
    tmp = Path(tempfile.mkdtemp(prefix="diffvec-"))
    warm.save(tmp / "store.snap")
    evaluators.append(("cold-mmap", QueryEvaluator(TripleStore.open(tmp / "store.snap"))))
    for count in SHARD_COUNTS:
        store = ShardedTripleStore(num_shards=count, triples=triples)
        evaluators.append((f"thread-{count}", ShardedQueryEvaluator(store)))
    process_store = ShardedTripleStore(num_shards=2, triples=triples)
    executor = stack.enter_context(
        process_store.serve(tmp / "shards", start_method=START_METHOD)
    )
    evaluators.append(
        (
            "process-2",
            ShardedQueryEvaluator(process_store, backend="process", executor=executor),
        )
    )
    return reference, evaluators


class TestDifferentialVectorized:
    @given(
        triples=_triples,
        bgp=_pattern_lists,
        required=_patterns,
        optionals=st.lists(_patterns, min_size=1, max_size=2),
        left=st.lists(_patterns, min_size=1, max_size=2),
        right=st.lists(_patterns, min_size=1, max_size=2),
        values=_values_nodes,
        ask_patterns=_pattern_lists,
        limit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=8, deadline=None)
    def test_vectorized_agrees_with_scalar_battery(
        self,
        triples,
        bgp,
        required,
        optionals,
        left,
        right,
        values,
        ask_patterns,
        limit,
    ):
        multiset_queries = [
            ("bgp", _select(*bgp)),
            (
                "optional",
                _select(
                    required, OptionalNode(GroupGraphPattern(tuple(optionals)))
                ),
            ),
            (
                "union",
                _select(
                    UnionNode(
                        branches=(
                            GroupGraphPattern(tuple(left)),
                            GroupGraphPattern(tuple(right)),
                        )
                    )
                ),
            ),
            ("values", _select(values, *bgp)),
            (
                "count",
                SelectQuery(
                    projection=(
                        ProjectionItem(
                            expression=CountExpression(), alias=Variable("c")
                        ),
                        ProjectionItem(
                            expression=CountExpression(
                                variable=Variable("a"), distinct=True
                            ),
                            alias=Variable("d"),
                        ),
                    ),
                    where=GroupGraphPattern(tuple(bgp)),
                ),
            ),
        ]
        ask = AskQuery(where=GroupGraphPattern(tuple(ask_patterns)))
        paged = _select(*bgp, limit=limit)

        with ExitStack() as stack:
            reference, evaluators = _vectorized_evaluators(triples, stack)
            expectations = {
                label: _multiset(reference.evaluate(query))
                for label, query in multiset_queries
            }
            expected_ask = bool(reference.evaluate(ask))
            universe = expectations["bgp"]
            expected_page = min(limit, sum(universe.values()))

            for label, evaluator in evaluators:
                for family, query in multiset_queries:
                    assert (
                        _multiset(evaluator.evaluate(query))
                        == expectations[family]
                    ), f"{family} @ {label}"
                assert bool(evaluator.evaluate(ask)) == expected_ask, label
                page = _multiset(evaluator.evaluate(paged))
                assert sum(page.values()) == expected_page, label
                for row, count in page.items():
                    assert universe[row] >= count, label
