"""Negative-path coverage for the endpoint simulation layer.

Targets the wave-error machinery in :mod:`repro.endpoint.simulation` that
previously had no dedicated tests: per-query exception capture inside
waves (sync and asyncio), the budget refund on queries that fail before
producing a result, propagation of unexpected exceptions, and the
:class:`WaveResult` accounting helpers.
"""

import asyncio

import pytest

from repro.endpoint.policy import AccessPolicy
from repro.endpoint.simulation import (
    SimulatedSparqlEndpoint,
    WaveResult,
    WaveScheduler,
    sharded_endpoint,
)
from repro.errors import (
    EndpointError,
    ParseError,
    QueryBudgetExceeded,
    ResultTruncated,
)
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.store.triplestore import TripleStore

EX = Namespace("http://simerr.test/")

GOOD_QUERY = "SELECT ?o WHERE { <http://simerr.test/s0> <http://simerr.test/p0> ?o }"
FULL_SCAN = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"


@pytest.fixture()
def store():
    return TripleStore(
        triples=[
            Triple(EX[f"s{i % 10}"], EX[f"p{i % 3}"], EX[f"o{i % 7}"])
            for i in range(60)
        ]
    )


def _endpoint(store, **policy_kwargs):
    policy_kwargs.setdefault("max_result_rows", None)
    return SimulatedSparqlEndpoint(store, policy=AccessPolicy(**policy_kwargs))


class TestBudgetRefund:
    def test_rejected_full_scan_refunds_the_slot(self, store):
        endpoint = _endpoint(store, max_queries=2, allow_full_scan=False)
        with pytest.raises(EndpointError):
            endpoint.query(FULL_SCAN)
        assert endpoint.queries_remaining == 2
        # The refunded slots still admit the full quota of good queries.
        endpoint.query(GOOD_QUERY)
        endpoint.query(GOOD_QUERY)
        assert endpoint.queries_remaining == 0
        assert endpoint.log.query_count == 2

    def test_parse_error_refunds_the_slot(self, store):
        endpoint = _endpoint(store, max_queries=1)
        with pytest.raises(ParseError):
            endpoint.query("SELECT WHERE {{{")
        assert endpoint.queries_remaining == 1
        endpoint.query(GOOD_QUERY)
        assert endpoint.queries_remaining == 0

    def test_truncation_failure_consumes_the_slot(self, store):
        # A truncated result *was* produced and served rows on a real
        # endpoint, so it legitimately spends budget — unlike failures
        # that never evaluated.
        endpoint = _endpoint(
            store,
            max_queries=5,
            max_result_rows=1,
            fail_on_truncation=True,
        )
        with pytest.raises(ResultTruncated):
            endpoint.query("SELECT ?s WHERE { ?s <http://simerr.test/p0> ?o }")
        assert endpoint.queries_remaining == 4

    def test_failed_queries_never_reach_the_log(self, store):
        endpoint = _endpoint(store, max_queries=None, allow_full_scan=False)
        for _ in range(3):
            with pytest.raises(EndpointError):
                endpoint.query(FULL_SCAN)
        assert endpoint.log.query_count == 0


class TestWaveErrorCapture:
    def test_budget_exhaustion_mid_wave_is_partial_not_fatal(self, store):
        endpoint = _endpoint(store, max_queries=3)
        with WaveScheduler(endpoint, max_workers=4) as scheduler:
            wave = scheduler.run_wave([GOOD_QUERY] * 8)
        assert wave.succeeded == 3
        assert wave.failed == 5
        assert len(wave.results) == 8
        for index, error in wave.errors:
            assert isinstance(error, QueryBudgetExceeded)
            assert wave.results[index] is None
        # Exactly the admitted queries were logged.
        assert endpoint.log.query_count == 3
        assert endpoint.queries_remaining == 0

    def test_policy_rejections_are_captured_per_query(self, store):
        endpoint = _endpoint(store, allow_full_scan=False)
        queries = [GOOD_QUERY, FULL_SCAN, GOOD_QUERY, FULL_SCAN]
        with WaveScheduler(endpoint, max_workers=2) as scheduler:
            wave = scheduler.run_wave(queries)
        assert wave.succeeded == 2
        assert [index for index, _ in wave.errors] == [1, 3]
        assert all(isinstance(error, EndpointError) for _, error in wave.errors)
        assert wave.results[0] is not None and wave.results[2] is not None

    def test_unexpected_errors_propagate_out_of_the_wave(self, store):
        endpoint = _endpoint(store)
        with WaveScheduler(endpoint, max_workers=2) as scheduler:
            with pytest.raises(ParseError):
                scheduler.run_wave([GOOD_QUERY, "SELECT WHERE {{{"])

    def test_raise_first_error_rethrows_in_submission_order(self, store):
        endpoint = _endpoint(store, allow_full_scan=False)
        with WaveScheduler(endpoint, max_workers=2) as scheduler:
            wave = scheduler.run_wave([GOOD_QUERY, FULL_SCAN])
        with pytest.raises(EndpointError):
            wave.raise_first_error()
        # A clean wave's raise_first_error is a no-op.
        clean = WaveResult(results=[None])
        clean.raise_first_error()

    def test_wave_result_accounting(self):
        empty = WaveResult(results=[], wall_seconds=0.0)
        assert empty.succeeded == 0
        assert empty.failed == 0
        assert empty.throughput == 0.0

    def test_map_keeps_wave_errors_isolated(self, store):
        endpoint = _endpoint(store, max_queries=4)
        with WaveScheduler(endpoint, max_workers=2) as scheduler:
            waves = scheduler.map(lambda _: GOOD_QUERY, list(range(6)), wave_size=2)
        assert [wave.succeeded for wave in waves] == [2, 2, 0]
        assert [wave.failed for wave in waves] == [0, 0, 2]


class TestAsyncWaveErrors:
    def test_async_wave_captures_query_errors(self, store):
        endpoint = _endpoint(store, max_queries=2)

        async def run():
            with WaveScheduler(endpoint, max_workers=4) as scheduler:
                return await scheduler.run_wave_async([GOOD_QUERY] * 5)

        wave = asyncio.run(run())
        assert wave.succeeded == 2
        assert wave.failed == 3
        assert all(
            isinstance(error, QueryBudgetExceeded) for _, error in wave.errors
        )
        assert endpoint.log.query_count == 2

    def test_async_wave_propagates_unexpected_errors(self, store):
        endpoint = _endpoint(store)

        async def run():
            with WaveScheduler(endpoint, max_workers=2) as scheduler:
                return await scheduler.run_wave_async(
                    [GOOD_QUERY, "ASK { broken", GOOD_QUERY]
                )

        with pytest.raises(ParseError):
            asyncio.run(run())


class TestConstructionValidation:
    def test_negative_latency_scale_rejected(self, store):
        with pytest.raises(EndpointError):
            SimulatedSparqlEndpoint(store, latency_scale=-0.1)

    def test_worker_count_validated(self, store):
        endpoint = _endpoint(store)
        with pytest.raises(EndpointError):
            WaveScheduler(endpoint, max_workers=0)

    def test_default_workers_follow_shard_count(self):
        sharded = ShardedTripleStore(
            num_shards=4,
            triples=[Triple(EX[f"s{i}"], EX.p0, EX.o0) for i in range(16)],
        )
        endpoint = sharded_endpoint(sharded, policy=AccessPolicy(max_result_rows=None))
        with WaveScheduler(endpoint) as scheduler:
            assert scheduler.max_workers == 4

    def test_latency_sleep_records_virtual_cost(self, store):
        endpoint = SimulatedSparqlEndpoint(
            store,
            policy=AccessPolicy(max_result_rows=None),
            latency_scale=1e-6,
        )
        endpoint.query(GOOD_QUERY)
        assert endpoint.log.query_count == 1
