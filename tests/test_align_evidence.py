"""Unit tests for evidence sets and per-subject evidence."""

from repro.align.evidence import EvidenceSet, SubjectEvidence
from repro.rdf.terms import Literal
from repro.similarity.literal_match import LiteralMatcher

from tests.conftest import EX


class TestSubjectEvidence:
    def test_shared_pairs_entity_objects(self):
        record = SubjectEvidence(
            EX.s, premise_objects=[EX.a, EX.b], conclusion_objects=[EX.b, EX.c]
        )
        assert record.shared_pairs() == 1

    def test_shared_pairs_no_double_counting(self):
        # Two identical premise objects cannot both match the single
        # conclusion object.
        record = SubjectEvidence(
            EX.s, premise_objects=[EX.a, EX.a], conclusion_objects=[EX.a]
        )
        assert record.shared_pairs() == 1

    def test_shared_pairs_with_literal_matcher(self):
        record = SubjectEvidence(
            EX.s,
            premise_objects=[Literal("Frank_Sinatra")],
            conclusion_objects=[Literal("frank sinatra")],
        )
        assert record.shared_pairs() == 0
        assert record.shared_pairs(LiteralMatcher()) == 1

    def test_has_conclusion_facts(self):
        assert SubjectEvidence(EX.s, conclusion_objects=[EX.a]).has_conclusion_facts()
        assert not SubjectEvidence(EX.s).has_conclusion_facts()


class TestEvidenceSet:
    def test_add_and_iterate(self):
        evidence = EvidenceSet()
        evidence.add(SubjectEvidence(EX.s1))
        evidence.extend([SubjectEvidence(EX.s2), SubjectEvidence(EX.s3)])
        assert len(evidence) == 3
        assert [record.subject for record in evidence] == [EX.s1, EX.s2, EX.s3]

    def test_subjects(self):
        evidence = EvidenceSet()
        evidence.add(SubjectEvidence(EX.s1))
        assert evidence.subjects() == [EX.s1]

    def test_unbiased_record_count(self):
        evidence = EvidenceSet()
        evidence.add(SubjectEvidence(EX.s1))
        evidence.add(SubjectEvidence(EX.s2, from_unbiased_sampling=True))
        assert evidence.unbiased_record_count() == 1

    def test_merge_unions_objects_per_subject(self):
        left = EvidenceSet()
        left.add(SubjectEvidence(EX.s1, premise_objects=[EX.a], conclusion_objects=[EX.a]))
        right = EvidenceSet()
        right.add(SubjectEvidence(EX.s1, premise_objects=[EX.b], conclusion_objects=[EX.a]))
        right.add(SubjectEvidence(EX.s2, premise_objects=[EX.c]))

        merged = left.merge(right)
        assert len(merged) == 2
        record = next(r for r in merged if r.subject == EX.s1)
        assert set(record.premise_objects) == {EX.a, EX.b}
        assert record.conclusion_objects == [EX.a]

    def test_merge_preserves_unbiased_flag(self):
        left = EvidenceSet()
        left.add(SubjectEvidence(EX.s1))
        right = EvidenceSet()
        right.add(SubjectEvidence(EX.s1, from_unbiased_sampling=True))
        merged = left.merge(right)
        assert merged.records[0].from_unbiased_sampling

    def test_merge_keeps_literal_matcher(self):
        matcher = LiteralMatcher(threshold=0.5)
        left = EvidenceSet(literal_matcher=matcher)
        merged = left.merge(EvidenceSet())
        assert merged.literal_matcher is matcher

    def test_merge_does_not_mutate_inputs(self):
        left = EvidenceSet()
        left.add(SubjectEvidence(EX.s1, premise_objects=[EX.a]))
        right = EvidenceSet()
        right.add(SubjectEvidence(EX.s1, premise_objects=[EX.b]))
        left.merge(right)
        assert left.records[0].premise_objects == [EX.a]
        assert right.records[0].premise_objects == [EX.b]

    def test_counts_on_untranslatable_objects(self):
        evidence = EvidenceSet()
        evidence.add(SubjectEvidence(EX.s1, premise_objects=[], untranslatable_objects=3))
        assert evidence.premise_pairs() == 0
        assert evidence.positive_pairs() == 0
