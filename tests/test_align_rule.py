"""Unit tests for subsumption / equivalence rules."""

import pytest

from repro.align.rule import EquivalenceRule, RelationRef, SubsumptionRule, make_rule_key

from tests.conftest import EX, EX2

PREMISE = RelationRef(kb="yago", relation=EX.wasBornIn)
CONCLUSION = RelationRef(kb="dbpedia", relation=EX2.birthPlace)


def rule(confidence=0.9, support=5, pruned=False, measure="pca"):
    return SubsumptionRule(
        premise=PREMISE,
        conclusion=CONCLUSION,
        confidence=confidence,
        support=support,
        measure=measure,
        body_size=10,
        pruned_by_ubs=pruned,
    )


class TestRelationRef:
    def test_name_combines_kb_and_local_name(self):
        assert PREMISE.name == "yago:wasBornIn"
        assert str(PREMISE) == "yago:wasBornIn"

    def test_equality(self):
        assert PREMISE == RelationRef("yago", EX.wasBornIn)
        assert PREMISE != CONCLUSION


class TestSubsumptionRule:
    def test_accepted_above_threshold(self):
        assert rule(confidence=0.9).accepted(0.3)
        assert not rule(confidence=0.2).accepted(0.3)

    def test_threshold_is_strict(self):
        assert not rule(confidence=0.3).accepted(0.3)

    def test_min_support(self):
        assert not rule(support=0).accepted(0.1, min_support=1)
        assert rule(support=2).accepted(0.1, min_support=2)

    def test_ubs_pruning_overrides_confidence(self):
        assert not rule(confidence=1.0, pruned=True).accepted(0.1)

    def test_str_rendering(self):
        text = str(rule())
        assert "yago:wasBornIn" in text and "dbpedia:birthPlace" in text and "pca" in text

    def test_reversed_key(self):
        assert rule().reversed_key() == (CONCLUSION, PREMISE)

    def test_make_rule_key(self):
        key = make_rule_key(PREMISE, CONCLUSION)
        assert key[0] == "yago" and key[2] == "dbpedia"


class TestEquivalenceRule:
    def _reverse_rule(self, confidence=0.8):
        return SubsumptionRule(
            premise=CONCLUSION,
            conclusion=PREMISE,
            confidence=confidence,
            support=4,
            measure="pca",
        )

    def test_construction_requires_mutually_reversed_rules(self):
        equivalence = EquivalenceRule(forward=rule(), backward=self._reverse_rule())
        assert equivalence.left == PREMISE
        assert equivalence.right == CONCLUSION

    def test_mismatched_rules_rejected(self):
        with pytest.raises(ValueError):
            EquivalenceRule(forward=rule(), backward=rule())

    def test_confidence_is_minimum(self):
        equivalence = EquivalenceRule(forward=rule(confidence=0.9), backward=self._reverse_rule(0.6))
        assert equivalence.confidence == pytest.approx(0.6)

    def test_accepted_requires_both_directions(self):
        good = EquivalenceRule(forward=rule(0.9), backward=self._reverse_rule(0.8))
        weak = EquivalenceRule(forward=rule(0.9), backward=self._reverse_rule(0.2))
        assert good.accepted(0.3)
        assert not weak.accepted(0.3)

    def test_str_rendering(self):
        equivalence = EquivalenceRule(forward=rule(), backward=self._reverse_rule())
        assert "<=>" in str(equivalence)
