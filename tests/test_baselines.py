"""Tests for the full-snapshot and PARIS-like baselines."""

import pytest

from repro.baselines.full_snapshot import FullSnapshotMiner
from repro.baselines.paris_like import ParisLikeAligner


class TestFullSnapshotMiner:
    @pytest.fixture(scope="class")
    def rules(self, request):
        movie_world = request.getfixturevalue("movie_world")
        miner = FullSnapshotMiner(
            premise_kb=movie_world.kb("imdb"),
            conclusion_kb=movie_world.kb("filmdb"),
            links=movie_world.links,
        )
        return {(r.premise.local_name, r.conclusion.local_name): r for r in miner.mine()}, miner

    def test_true_rules_score_high(self, rules):
        by_pair, _ = rules
        assert by_pair[("hasDirector", "directedBy")].pca > 0.85
        assert by_pair[("hasProducer", "producedBy")].pca > 0.85
        assert by_pair[("hasTitle", "title")].pca > 0.85

    def test_exhaustive_mining_sees_partial_overlap(self, rules):
        by_pair, _ = rules
        trap = by_pair[("hasProducer", "directedBy")]
        # With the full extension the overlap is visible but clearly below
        # the correct rules' confidence.
        assert 0.3 < trap.pca < by_pair[("hasDirector", "directedBy")].pca

    def test_cwa_not_above_pca(self, rules):
        by_pair, _ = rules
        for rule in by_pair.values():
            assert rule.cwa <= rule.pca + 1e-9

    def test_scan_cost_is_whole_dataset(self, rules, movie_world):
        _, miner = rules
        total = len(movie_world.kb("imdb").store) + len(movie_world.kb("filmdb").store)
        # The snapshot miner must touch (at least) every premise-KB triple —
        # the cost SOFYA avoids.
        assert miner.triples_scanned >= total * 0.5

    def test_accepted_threshold_filtering(self, movie_world):
        miner = FullSnapshotMiner(
            premise_kb=movie_world.kb("imdb"),
            conclusion_kb=movie_world.kb("filmdb"),
            links=movie_world.links,
        )
        accepted = miner.accepted("pca", threshold=0.9)
        names = {(p.local_name, c.local_name) for p, c in accepted}
        assert ("hasDirector", "directedBy") in names
        assert ("hasProducer", "directedBy") not in names

    def test_conclusion_relation_restriction(self, movie_world):
        filmdb_ns = movie_world.kb("filmdb").namespace
        miner = FullSnapshotMiner(
            premise_kb=movie_world.kb("imdb"),
            conclusion_kb=movie_world.kb("filmdb"),
            links=movie_world.links,
        )
        rules = miner.mine(conclusion_relations=[filmdb_ns.directedBy])
        assert {rule.conclusion.local_name for rule in rules} == {"directedBy"}

    def test_min_support_filter(self, movie_world):
        miner = FullSnapshotMiner(
            premise_kb=movie_world.kb("imdb"),
            conclusion_kb=movie_world.kb("filmdb"),
            links=movie_world.links,
            min_support=10_000,
        )
        assert miner.mine() == []


class TestParisLikeAligner:
    @pytest.fixture(scope="class")
    def scores(self, request):
        movie_world = request.getfixturevalue("movie_world")
        aligner = ParisLikeAligner(
            premise_kb=movie_world.kb("imdb"),
            conclusion_kb=movie_world.kb("filmdb"),
            links=movie_world.links,
        )
        return {(s.premise.local_name, s.conclusion.local_name): s for s in aligner.align()}

    def test_correct_pairs_rank_above_traps(self, scores):
        assert (
            scores[("hasDirector", "directedBy")].probability
            > scores[("hasProducer", "directedBy")].probability
        )

    def test_probability_bounded(self, scores):
        assert all(0.0 <= score.probability <= 1.0 for score in scores.values())

    def test_overlap_counts_positive(self, scores):
        assert scores[("hasTitle", "title")].overlap > 0

    def test_accepted_threshold(self, movie_world):
        aligner = ParisLikeAligner(
            premise_kb=movie_world.kb("imdb"),
            conclusion_kb=movie_world.kb("filmdb"),
            links=movie_world.links,
        )
        accepted = aligner.accepted(threshold=0.6)
        names = {(p.local_name, c.local_name) for p, c in accepted}
        assert ("hasDirector", "directedBy") in names
