"""Unit tests for the process-shard worker protocol.

Covers the :class:`~repro.shard.workers.ProcessShardExecutor` machinery
itself: result parity with the in-process thread backend, the serialized
binding batches, cancel messages (ASK/LIMIT short-circuit), pool sizing,
diagnostics pings, lifecycle validation, and the start-method matrix
(fork / spawn / forkserver, skipping methods the platform lacks).

``REPRO_WORKER_START_METHOD`` selects the start method for every test in
the worker suite (the CI matrix sets it); unset, the platform default is
used.
"""

import multiprocessing
import os
import pickle
import tempfile
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.errors import StoreError
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI, BlankNode, Literal
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.shard.workers import (
    ProcessShardExecutor,
    decode_binding,
    encode_binding,
)
from repro.sparql.bindings import IdBinding, Variable
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store.triplestore import TripleStore

EX = Namespace("http://workers.test/")

#: Start method under test; the CI matrix job exports this.
START_METHOD = os.environ.get("REPRO_WORKER_START_METHOD") or None
if START_METHOD and START_METHOD not in multiprocessing.get_all_start_methods():
    pytest.skip(
        f"start method {START_METHOD!r} unsupported on this platform",
        allow_module_level=True,
    )

QUERY_BATTERY = [
    "SELECT ?s ?a ?b WHERE { ?s <http://workers.test/p0> ?a . "
    "?s <http://workers.test/p1> ?b }",
    "SELECT ?s ?a ?b WHERE { ?s <http://workers.test/p0> ?a . "
    "OPTIONAL { ?s <http://workers.test/p2> ?b } }",
    "SELECT ?s ?a WHERE { { ?s <http://workers.test/p0> ?a } UNION "
    "{ ?s <http://workers.test/p1> ?a } }",
    "SELECT ?s ?a WHERE { VALUES ?s { <http://workers.test/s3> "
    "<http://workers.test/s5> } ?s <http://workers.test/p0> ?a }",
    "ASK { ?s <http://workers.test/p1> <http://workers.test/o4> }",
    "ASK { ?s <http://workers.test/p1> <http://workers.test/missing> }",
    "SELECT (COUNT(*) AS ?c) WHERE { ?s <http://workers.test/p0> ?a . "
    "?s <http://workers.test/p1> ?b }",
]


def _triples(count=400):
    return [
        Triple(EX[f"s{i % 50}"], EX[f"p{i % 3}"], EX[f"o{i % 7}"])
        for i in range(count)
    ]


def _multiset(result):
    return Counter(frozenset(row.items()) for row in result)


@pytest.fixture(scope="module")
def served():
    """One 4-shard store, its snapshot and a booted executor, shared by
    the module (worker boots dominate the cost of these tests)."""
    store = ShardedTripleStore(num_shards=4, triples=_triples())
    with store.serve(
        tempfile.mkdtemp(prefix="workers-proto-"), start_method=START_METHOD
    ) as executor:
        yield store, executor


class TestResultParity:
    def test_battery_matches_thread_backend(self, served):
        store, executor = served
        thread_eval = ShardedQueryEvaluator(store)
        proc_eval = ShardedQueryEvaluator(
            store, backend="process", executor=executor
        )
        for query in QUERY_BATTERY:
            expected = thread_eval.evaluate(query)
            actual = proc_eval.evaluate(query)
            if hasattr(expected, "rows"):
                assert _multiset(actual) == _multiset(expected), query
            else:
                assert bool(actual) == bool(expected), query

    def test_limit_page_has_right_size(self, served):
        store, executor = served
        proc_eval = ShardedQueryEvaluator(
            store, backend="process", executor=executor
        )
        query = (
            "SELECT ?s ?a WHERE { ?s <http://workers.test/p0> ?a } LIMIT 7"
        )
        assert len(proc_eval.evaluate(query)) == 7

    def test_run_group_streams_id_bindings(self, served):
        store, executor = served
        group = parse_query(QUERY_BATTERY[0]).where
        rows = list(executor.run_group(range(store.num_shards), group))
        locals_ = [QueryEvaluator(shard) for shard in store.shards]
        expected = [
            binding
            for local in locals_
            for binding in local._evaluate_group(group, IdBinding.EMPTY)
        ]
        assert Counter(map(hash, rows)) == Counter(map(hash, expected))
        assert all(
            type(value) is int for row in rows for _, value in row.items()
        )


class TestBindingSerialisation:
    def test_round_trip_ids_and_terms(self):
        binding = IdBinding(
            {Variable("a"): 7, Variable("b"): EX.unknown, Variable("c"): 0}
        )
        memo = {}
        decoded = decode_binding(encode_binding(binding), memo)
        assert decoded == binding
        # Variable instances are shared through the memo.
        assert decoded.get(memo["a"]) == 7

    def test_terms_and_variables_pickle(self):
        for value in (
            IRI("http://workers.test/x"),
            Literal("v"),
            Literal("v", language="en"),
            Literal(7),
            Literal("d", datatype="http://workers.test/dt"),
            BlankNode("b1"),
            Variable("x"),
        ):
            assert pickle.loads(pickle.dumps(value)) == value

    def test_parsed_query_pickles(self):
        query = parse_query(QUERY_BATTERY[1])
        assert pickle.loads(pickle.dumps(query)) == query


class TestCancellation:
    def test_limit_cancels_inflight_shard_scans(self, tmp_path):
        store = ShardedTripleStore(num_shards=2, triples=_triples(1000))
        with store.serve(
            tmp_path / "snap", start_method=START_METHOD, batch_rows=1
        ) as executor:
            proc_eval = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            query = (
                "SELECT ?s ?a WHERE { ?s <http://workers.test/p0> ?a } LIMIT 2"
            )
            assert len(proc_eval.evaluate(query)) == 2
            # The cancel left the workers alive and serviceable.
            ask = proc_eval.evaluate(
                "ASK { ?s <http://workers.test/p0> ?o }"
            )
            assert bool(ask) is True
            assert all(pid is not None for pid in executor.worker_pids())

    def test_stall_tasks_are_cancellable(self, served):
        # A cancelled task's terminal message is deliberately dropped
        # (the parent forgot the task), so prove the cancel through its
        # effect: the 30s stall aborts and the worker serves the next
        # task almost immediately.
        _, executor = served
        stream = executor.stall(0, seconds=30.0)
        time.sleep(0.05)
        executor._cancel(stream)
        start = time.monotonic()
        assert executor.ping(0, timeout=10.0)["pid"] is not None
        assert time.monotonic() - start < 5.0


class TestPoolAndDiagnostics:
    def test_pool_smaller_than_shards(self, tmp_path):
        store = ShardedTripleStore(num_shards=4, triples=_triples())
        with store.serve(
            tmp_path / "snap", start_method=START_METHOD, pool_size=2
        ) as executor:
            assert executor.num_workers == 2
            assert executor.num_shards == 4
            assert [executor.worker_for_shard(i) for i in range(4)] == [
                0, 1, 0, 1,
            ]
            infos = executor.ping_all()
            assert sorted(sum((d["shards"] for d in infos), [])) == [0, 1, 2, 3]
            thread_eval = ShardedQueryEvaluator(store)
            proc_eval = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            for query in QUERY_BATTERY[:3]:
                assert _multiset(proc_eval.evaluate(query)) == _multiset(
                    thread_eval.evaluate(query)
                ), query

    def test_ping_reports_worker_state(self, served):
        store, executor = served
        info = executor.ping(2)
        assert info["pid"] in executor.worker_pids()
        assert info["worker"] == executor.worker_for_shard(2)
        assert 2 in info["shards"]
        assert info["triples"][2] == len(store.shards[2])
        assert info["promoted"] is False
        assert all(info["frozen"].values())

    def test_worker_pids_one_process_per_worker(self, served):
        _, executor = served
        pids = executor.worker_pids()
        assert len(pids) == executor.num_workers
        assert len(set(pids)) == len(pids)
        assert os.getpid() not in pids


class TestLifecycle:
    def test_dispatch_after_close_raises(self, tmp_path):
        store = ShardedTripleStore(num_shards=2, triples=_triples(100))
        executor = store.serve(tmp_path / "snap", start_method=START_METHOD)
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(StoreError):
            executor.ping(0)

    def test_serve_reuses_clean_snapshot(self, tmp_path):
        store = ShardedTripleStore(num_shards=2, triples=_triples(100))
        directory = tmp_path / "snap"
        with store.serve(directory, start_method=START_METHOD):
            pass
        manifest = directory / "manifest.json"
        stamp = manifest.stat().st_mtime_ns
        with store.serve(directory, start_method=START_METHOD):
            pass
        assert manifest.stat().st_mtime_ns == stamp  # not rewritten
        store.add(Triple(EX.fresh, EX.p0, EX.o0))
        with store.serve(directory, start_method=START_METHOD):
            pass
        assert manifest.stat().st_mtime_ns > stamp  # dirty -> resnapshotted

    def test_mutation_after_serve_is_rejected(self, tmp_path):
        store = ShardedTripleStore(num_shards=2, triples=_triples(100))
        with store.serve(tmp_path / "snap", start_method=START_METHOD) as executor:
            proc_eval = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            store.add(Triple(EX.mutant, EX.p0, EX.o0))
            with pytest.raises(StoreError, match="mutated"):
                proc_eval.evaluate(QUERY_BATTERY[0])

    def test_mutation_rejected_on_fallback_and_empty_routes_too(self, tmp_path):
        # The staleness guard must fire before routing: neither a
        # non-co-partitioned fallback group (which would run in-process
        # against the mutated view) nor a query whose routing prunes
        # every shard may slip through.
        store = ShardedTripleStore(num_shards=2, triples=_triples(100))
        with store.serve(tmp_path / "snap", start_method=START_METHOD) as executor:
            proc_eval = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            removed = next(iter(store))
            assert store.remove(removed)
            chain = (
                "SELECT ?s ?o ?x WHERE { ?s <http://workers.test/p0> ?o . "
                "?o <http://workers.test/p1> ?x }"
            )
            with pytest.raises(StoreError, match="mutated"):
                proc_eval.evaluate(chain)
            with pytest.raises(StoreError, match="mutated"):
                proc_eval.evaluate(
                    "SELECT ?a WHERE { ?s <http://workers.test/nowhere> ?a }"
                )

    def test_mutation_before_evaluator_construction_is_rejected(self, tmp_path):
        # The guard must not depend on construction order: mutating
        # between serve() and building the evaluator is just as stale.
        store = ShardedTripleStore(num_shards=2, triples=_triples(100))
        with store.serve(tmp_path / "snap", start_method=START_METHOD) as executor:
            store.add(Triple(EX.mutant, EX.p0, EX.o0))
            with pytest.raises(StoreError, match="mutated"):
                ShardedQueryEvaluator(
                    store, backend="process", executor=executor
                )

    def test_foreign_snapshot_executor_is_rejected(self, tmp_path):
        # An executor over some *other* dataset's snapshot (same shard
        # count) must not pass validation — IDs would decode wrongly.
        store = ShardedTripleStore(num_shards=2, triples=_triples(100))
        other = ShardedTripleStore(num_shards=2, triples=_triples(80))
        with other.serve(tmp_path / "other", start_method=START_METHOD) as executor:
            with pytest.raises(ValueError, match="never"):
                ShardedQueryEvaluator(
                    store, backend="process", executor=executor
                )

    def test_evaluator_construction_validation(self, served):
        store, executor = served
        with pytest.raises(ValueError, match="backend"):
            ShardedQueryEvaluator(store, backend="fibers")
        with pytest.raises(ValueError, match="requires"):
            ShardedQueryEvaluator(store, backend="process")
        other = ShardedTripleStore(num_shards=2, triples=_triples(50))
        with pytest.raises(ValueError, match="shards"):
            ShardedQueryEvaluator(other, backend="process", executor=executor)

    def test_pool_size_validation(self, tmp_path):
        store = ShardedTripleStore(num_shards=2, triples=_triples(50))
        store.save(tmp_path / "snap")
        with pytest.raises(StoreError):
            ProcessShardExecutor(tmp_path / "snap", pool_size=0)

    def test_endpoint_owns_and_removes_auto_snapshot_dir(self):
        from repro.endpoint.policy import AccessPolicy
        from repro.endpoint.simulation import sharded_endpoint

        store = ShardedTripleStore(num_shards=2, triples=_triples(100))
        policy = AccessPolicy(max_result_rows=None, allow_full_scan=True)
        with sharded_endpoint(
            store, policy=policy, backend="process", start_method=START_METHOD
        ) as endpoint:
            owned = Path(endpoint.executor.directory)
            assert owned.exists()
            endpoint.query(QUERY_BATTERY[0])
        assert not owned.exists()  # auto-created dir cleaned with the pool

    def test_endpoint_preserves_explicit_snapshot_dir(self, tmp_path):
        from repro.endpoint.policy import AccessPolicy
        from repro.endpoint.simulation import sharded_endpoint

        store = ShardedTripleStore(num_shards=2, triples=_triples(100))
        policy = AccessPolicy(max_result_rows=None, allow_full_scan=True)
        directory = tmp_path / "snap"
        with sharded_endpoint(
            store,
            policy=policy,
            backend="process",
            snapshot_dir=directory,
            start_method=START_METHOD,
        ):
            pass
        assert (directory / "manifest.json").exists()  # caller's to keep

    def test_endpoint_rejects_factory_with_process_backend(self):
        from repro.endpoint.simulation import SimulatedSparqlEndpoint
        from repro.errors import EndpointError

        store = ShardedTripleStore(num_shards=2, triples=_triples(50))
        with pytest.raises(EndpointError, match="evaluator_factory"):
            SimulatedSparqlEndpoint(
                store,
                backend="process",
                evaluator_factory=ShardedQueryEvaluator,
            )


class TestStartMethodMatrix:
    @pytest.mark.parametrize("method", ["fork", "spawn", "forkserver"])
    def test_eval_under_every_start_method(self, tmp_path, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unsupported here")
        store = ShardedTripleStore(num_shards=2, triples=_triples(120))
        with store.serve(tmp_path / "snap", start_method=method) as executor:
            proc_eval = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            expected = _multiset(
                ShardedQueryEvaluator(store).evaluate(QUERY_BATTERY[0])
            )
            assert _multiset(proc_eval.evaluate(QUERY_BATTERY[0])) == expected
            assert executor.ping(0)["promoted"] is False
