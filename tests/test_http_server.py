"""HTTP SPARQL service tier: protocol conformance and service behaviour.

Drives a real server over a real socket — status codes, content
negotiation, malformed requests, per-client admission, the
``data_version``-keyed page cache, backpressure and graceful shutdown.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.endpoint.client import EndpointClient
from repro.endpoint.policy import AccessPolicy
from repro.endpoint.simulation import SimulatedSparqlEndpoint
from repro.errors import (
    EndpointError,
    ParseError,
    QueryBudgetExceeded,
    ResultTruncated,
)
from repro.http import HttpSparqlClient, serve_http
from repro.http.protocol import MAX_BODY_BYTES
from repro.obs.metrics import MetricsRegistry
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI, Literal
from repro.rdf.triple import Triple
from repro.store.triplestore import TripleStore

EX = Namespace("http://example.org/kb1/")
PREFIX = "PREFIX ex: <http://example.org/kb1/> "
SELECT_USA = PREFIX + "SELECT ?p WHERE { ?p ex:bornIn ex:USA }"
SELECT_ALL_PEOPLE = PREFIX + "SELECT ?p ?c WHERE { ?p ex:bornIn ?c }"
ASK_SINATRA = PREFIX + "ASK { ex:Frank_Sinatra ex:bornIn ex:USA }"


def _people_store() -> TripleStore:
    store = TripleStore(name="people")
    store.add_all(
        [
            Triple(EX["Frank_Sinatra"], EX.bornIn, EX.USA),
            Triple(EX["Frank_Sinatra"], EX.name, Literal("Frank Sinatra")),
            Triple(EX["Albert_Einstein"], EX.bornIn, EX.Germany),
            Triple(EX["Albert_Einstein"], EX.name, Literal("Albert Einstein")),
            Triple(EX["Marie_Curie"], EX.bornIn, EX.Poland),
        ]
    )
    return store


@pytest.fixture(scope="module")
def server():
    """One shared unlimited server for the read-only protocol tests."""
    with serve_http(
        store=_people_store(), name="conformance", metrics=MetricsRegistry()
    ) as running:
        yield running


@pytest.fixture()
def client(server):
    with HttpSparqlClient(server.url) as running:
        yield running


class TestProtocolConformance:
    def test_select_over_post_form(self, client):
        result = client.select(SELECT_USA)
        assert result.column("p") == [EX["Frank_Sinatra"]]

    def test_select_over_get(self, server):
        with HttpSparqlClient(server.url, method="get") as client:
            result = client.select(SELECT_ALL_PEOPLE)
            assert len(result) == 3

    def test_post_raw_sparql_query_media_type(self, client):
        status, _, body = client.request_raw(
            "POST",
            "/sparql",
            body=ASK_SINATRA.encode("utf-8"),
            headers={"Content-Type": "application/sparql-query"},
        )
        assert status == 200
        assert json.loads(body)["boolean"] is True

    def test_json_document_shape(self, client):
        status, headers, body = client.request_raw(
            "POST",
            "/sparql",
            body=SELECT_ALL_PEOPLE.encode("utf-8"),
            headers={"Content-Type": "application/sparql-query"},
        )
        assert status == 200
        assert headers["content-type"] == "application/sparql-results+json"
        document = json.loads(body)
        assert document["head"]["vars"] == ["p", "c"]
        bindings = document["results"]["bindings"]
        assert len(bindings) == 3
        assert all(entry["p"]["type"] == "uri" for entry in bindings)

    def test_tsv_negotiation(self, client):
        content_type, text = client.query_text(
            SELECT_USA, accept="text/tab-separated-values"
        )
        assert content_type == "text/tab-separated-values"
        assert text == "?p\n<http://example.org/kb1/Frank_Sinatra>\n"

    def test_ask_is_always_json(self, client):
        # TSV has no boolean form; the server answers ASK with JSON even
        # when the client asked for TSV.
        content_type, text = client.query_text(
            ASK_SINATRA, accept="text/tab-separated-values"
        )
        assert content_type == "application/sparql-results+json"
        assert json.loads(text)["boolean"] is True

    def test_not_acceptable_406(self, client):
        status, _, body = client.request_raw(
            "GET",
            "/sparql?query=" + ASK_SINATRA.replace(" ", "%20"),
            headers={"Accept": "application/xml"},
        )
        assert status == 406
        assert json.loads(body)["error"] == "NotAcceptable"

    def test_missing_query_parameter_400(self, client):
        status, _, body = client.request_raw("GET", "/sparql")
        assert status == 400
        assert "query" in json.loads(body)["message"]

    def test_missing_form_field_400(self, client):
        status, _, _ = client.request_raw(
            "POST",
            "/sparql",
            body=b"update=DELETE",
            headers={"Content-Type": "application/x-www-form-urlencoded"},
        )
        assert status == 400

    def test_bad_sparql_is_parse_error_400(self, client):
        with pytest.raises(ParseError):
            client.select("SELECT WHERE garbage {")

    def test_unknown_path_404(self, client):
        status, _, _ = client.request_raw("GET", "/nope")
        assert status == 404

    def test_method_not_allowed_405(self, client):
        status, headers, _ = client.request_raw("DELETE", "/sparql")
        assert status == 405
        assert headers["allow"] == "GET, POST"

    def test_unsupported_media_type_415(self, client):
        status, _, _ = client.request_raw(
            "POST",
            "/sparql",
            body=b"{}",
            headers={"Content-Type": "application/json"},
        )
        assert status == 415

    def test_oversized_body_413(self, server, client):
        status, _, _ = client.request_raw(
            "POST",
            "/sparql",
            body=b"x" * 16,
            headers={
                "Content-Type": "application/sparql-query",
                # Announcing an over-limit body is enough to be refused;
                # nothing that large is ever transmitted.
                "Content-Length": str(MAX_BODY_BYTES + 1),
            },
        )
        assert status == 413

    def test_malformed_request_line_400(self, server):
        with socket.create_connection((server.host, server.port), timeout=5) as raw:
            raw.sendall(b"NONSENSE\r\n\r\n")
            response = raw.recv(4096)
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_headers_too_large_431(self, server):
        with socket.create_connection((server.host, server.port), timeout=5) as raw:
            raw.sendall(
                b"GET /health HTTP/1.1\r\nX-Huge: "
                + b"a" * (128 * 1024)
                + b"\r\n\r\n"
            )
            response = raw.recv(4096)
        assert response.startswith(b"HTTP/1.1 431 ")

    def test_keep_alive_reuses_one_connection(self, client):
        client.select(SELECT_USA)
        first = client._conn
        client.ask(ASK_SINATRA)
        assert client._conn is first

    def test_connection_close_honoured(self, client):
        status, headers, _ = client.request_raw(
            "GET", "/health", headers={"Connection": "close"}
        )
        assert status == 200
        assert headers["connection"] == "close"
        assert client._conn is None  # client dropped it in response

    def test_health_document(self, client, server):
        health = client.health()
        assert health["status"] == "ok"
        assert health["dataset_size"] == 5
        assert health["shards"] == 1
        assert health["endpoint"] == "conformance"

    def test_metrics_document(self, client):
        client.select(SELECT_USA)
        snapshot = client.metrics()
        assert snapshot["counters"]["http.requests"] >= 1
        assert snapshot["counters"]["http.responses.200"] >= 1
        assert snapshot["histograms"]["http.latency"]["count"] >= 1


class TestTypedClientOverHttp:
    def test_endpoint_client_runs_unchanged(self, server):
        with HttpSparqlClient(server.url) as http_client:
            typed = EndpointClient(http_client)
            assert typed.count_facts(EX.bornIn) == 3
            assert typed.has_fact(EX["Marie_Curie"], EX.bornIn, EX.Poland)
            relations = typed.relations()
            assert EX.bornIn in relations and EX.name in relations


class TestAdmission:
    def test_full_scan_rejected_403(self):
        store = _people_store()
        with serve_http(
            store=store,
            policy=AccessPolicy(allow_full_scan=False),
            metrics=MetricsRegistry(),
        ) as running:
            with HttpSparqlClient(running.url) as client:
                with pytest.raises(EndpointError):
                    client.select("SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
                # Selective queries still pass the same policy.
                assert len(client.select(SELECT_USA)) == 1

    def test_truncation_policy_maps_to_403(self):
        store = _people_store()
        policy = AccessPolicy(max_result_rows=1, fail_on_truncation=True)
        with serve_http(
            store=store, policy=policy, metrics=MetricsRegistry()
        ) as running:
            with HttpSparqlClient(running.url) as client:
                with pytest.raises(ResultTruncated):
                    client.select(SELECT_ALL_PEOPLE)

    def test_per_client_budgets_are_independent(self):
        store = _people_store()
        with serve_http(
            store=store,
            client_policy=AccessPolicy(max_queries=2),
            metrics=MetricsRegistry(),
        ) as running:
            alice = HttpSparqlClient(running.url, client_id="alice")
            bob = HttpSparqlClient(running.url, client_id="bob")
            try:
                alice.ask(ASK_SINATRA)
                alice.ask(ASK_SINATRA)
                with pytest.raises(QueryBudgetExceeded):
                    alice.ask(ASK_SINATRA)
                # Bob's budget is untouched by Alice's exhaustion.
                assert bob.ask(ASK_SINATRA) is True
                assert sorted(running.server.client_ids()) == ["alice", "bob"]
            finally:
                alice.close()
                bob.close()

    def test_budget_exhaustion_carries_retry_after(self):
        store = _people_store()
        with serve_http(
            store=store,
            client_policy=AccessPolicy(max_queries=1),
            metrics=MetricsRegistry(),
        ) as running:
            with HttpSparqlClient(running.url, client_id="carol") as client:
                client.ask(ASK_SINATRA)
                status, headers, body = client.request_raw(
                    "POST",
                    "/sparql",
                    body=ASK_SINATRA.encode("utf-8"),
                    headers={"Content-Type": "application/sparql-query"},
                )
                assert status == 429
                assert headers["retry-after"] == "1"
                assert json.loads(body)["error"] == "QueryBudgetExceeded"


class TestPageCache:
    def test_cache_hit_still_charges_budget_and_logs(self):
        store = _people_store()
        metrics = MetricsRegistry()
        with serve_http(
            store=store,
            client_policy=AccessPolicy(max_queries=3),
            metrics=metrics,
        ) as running:
            with HttpSparqlClient(running.url, client_id="dave") as client:
                for _ in range(3):
                    assert len(client.select(SELECT_USA)) == 1
                # Cached or not, the fourth request is over budget: the
                # cache must not let a client dodge its quota.
                with pytest.raises(QueryBudgetExceeded):
                    client.select(SELECT_USA)
            assert metrics.value("http.cache.hits") == 2
            assert metrics.value("http.cache.misses") == 1
            records = [
                record
                for client_id, record in running.server.access_log_records()
                if client_id == "dave"
            ]
            assert len(records) == 3  # every admitted request is logged
            assert [record.mode for record in records].count("cached") == 2

    def test_mutation_invalidates_cached_pages(self):
        store = _people_store()
        metrics = MetricsRegistry()
        with serve_http(store=store, metrics=metrics) as running:
            with HttpSparqlClient(running.url) as client:
                assert len(client.select(SELECT_USA)) == 1
                assert len(client.select(SELECT_USA)) == 1  # served cached
                store.add(Triple(EX["Elvis"], EX.bornIn, EX.USA))
                result = client.select(SELECT_USA)
                assert len(result) == 2  # data_version moved: fresh page
            assert metrics.value("http.cache.hits") == 1


class TestBackpressureAndShutdown:
    def test_overload_returns_503(self):
        store = _people_store()
        # ~0.1 virtual seconds per query, slept at full scale: requests
        # dwell long enough to pile up behind max_in_flight=1.
        slow = SimulatedSparqlEndpoint(
            store,
            name="slow",
            policy=AccessPolicy(latency_per_query=0.3),
            latency_scale=1.0,
        )
        metrics = MetricsRegistry()
        with serve_http(
            slow,
            max_in_flight=1,
            max_queue=0,
            metrics=metrics,
            own_endpoint=True,
        ) as running:
            statuses = []
            lock = threading.Lock()

            def fire():
                with HttpSparqlClient(running.url) as client:
                    status, _, _ = client.request_raw(
                        "POST",
                        "/sparql",
                        body=ASK_SINATRA.encode("utf-8"),
                        headers={"Content-Type": "application/sparql-query"},
                    )
                with lock:
                    statuses.append(status)

            threads = [threading.Thread(target=fire) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert statuses.count(200) >= 1
            assert statuses.count(503) >= 1
            assert metrics.value("http.rejected.overload") >= 1

    def test_stop_drains_in_flight_queries(self):
        store = _people_store()
        slow = SimulatedSparqlEndpoint(
            store,
            name="drain",
            policy=AccessPolicy(latency_per_query=0.4),
            latency_scale=1.0,
        )
        running = serve_http(slow, metrics=MetricsRegistry(), own_endpoint=True)
        outcome = {}

        def slow_query():
            with HttpSparqlClient(running.url) as client:
                outcome["status"] = client.request_raw(
                    "POST",
                    "/sparql",
                    body=ASK_SINATRA.encode("utf-8"),
                    headers={"Content-Type": "application/sparql-query"},
                )[0]

        worker = threading.Thread(target=slow_query)
        worker.start()
        time.sleep(0.1)  # let the query reach the evaluator
        running.stop()  # must wait for the in-flight response
        worker.join(timeout=5)
        assert outcome["status"] == 200
        # The listener is really gone.
        with pytest.raises(OSError):
            socket.create_connection((running.host, running.port), timeout=0.5)

    def test_requests_during_shutdown_get_503(self):
        store = _people_store()
        with serve_http(store=store, metrics=MetricsRegistry()) as running:
            client = HttpSparqlClient(running.url)
            client.health()  # open a keep-alive connection pre-shutdown
            running.server._closing = True
            status, _, _ = client.request_raw("GET", "/health")
            assert status == 503
            client.close()
            running.server._closing = False

class TestAcceptQValues:
    """RFC 9110 content negotiation: ``;q=`` weights decide the format."""

    def test_highest_q_wins(self):
        from repro.http.server import _negotiate

        accept = "application/sparql-results+json;q=0.2, text/tab-separated-values;q=0.9"
        assert _negotiate(accept) == "tsv"

    def test_q_zero_is_unacceptable(self):
        from repro.http.server import _negotiate

        assert _negotiate("application/sparql-results+json;q=0") is None
        assert _negotiate("text/*;q=0.0, application/xml") is None

    def test_missing_q_defaults_to_one(self):
        from repro.http.server import _negotiate

        # TSV at q=1 (implicit) beats JSON demoted to 0.5.
        assert _negotiate("application/json;q=0.5, text/tab-separated-values") == "tsv"

    def test_malformed_q_is_ignored(self):
        from repro.http.server import _negotiate

        assert _negotiate("application/json;q=banana") == "json"

    def test_wildcard_carries_its_weight(self):
        from repro.http.server import _negotiate

        assert _negotiate("text/*;q=0.3, */*;q=0.8") == "json"
        assert _negotiate("*/*;q=0.1, text/tab-separated-values;q=0.2") == "tsv"

    def test_unknown_types_do_not_mask_a_known_one(self):
        from repro.http.server import _negotiate

        assert _negotiate("application/xml;q=1.0, application/json;q=0.4") == "json"

    def test_q_values_drive_the_wire_response(self, client):
        status, headers, _ = client.request_raw(
            "POST",
            "/sparql",
            body=SELECT_USA.encode("utf-8"),
            headers={
                "Content-Type": "application/sparql-query",
                "Accept": "application/sparql-results+json;q=0.1, "
                "text/tab-separated-values;q=0.9",
            },
        )
        assert status == 200
        assert headers["content-type"] == "text/tab-separated-values"

    def test_all_zero_q_is_406(self, client):
        status, _, body = client.request_raw(
            "POST",
            "/sparql",
            body=SELECT_USA.encode("utf-8"),
            headers={
                "Content-Type": "application/sparql-query",
                "Accept": "application/sparql-results+json;q=0, text/*;q=0",
            },
        )
        assert status == 406
        assert json.loads(body)["error"] == "NotAcceptable"


class TestSharedParseCache:
    def test_per_client_endpoints_share_one_parse_cache(self):
        store = _people_store()
        # page_cache_size=0: a page-cache hit would answer Bob before
        # the parser ever ran, hiding the thing under test.
        with serve_http(
            store=store,
            client_policy=AccessPolicy(max_queries=10),
            page_cache_size=0,
            metrics=MetricsRegistry(),
        ) as running:
            alice = HttpSparqlClient(running.url, client_id="alice")
            bob = HttpSparqlClient(running.url, client_id="bob")
            try:
                alice.select(SELECT_ALL_PEOPLE)
                base = running.server.endpoint.parse_cache
                after_alice = base.cache_info()
                bob.select(SELECT_ALL_PEOPLE)
                after_bob = base.cache_info()
            finally:
                alice.close()
                bob.close()
            # Bob's identical query hit the cache Alice warmed: one parse
            # served both clients, and no second cache was ever created.
            assert after_bob.hits > after_alice.hits
            assert after_bob.currsize == after_alice.currsize
            for client_id in running.server.client_ids():
                endpoint = running.server._client_endpoints[client_id]
                assert endpoint.parse_cache is base


class TestLiveRefresh:
    def _sharded_store(self, count=120):
        from repro.shard.sharded_store import ShardedTripleStore

        store = ShardedTripleStore(num_shards=2)
        store.bulk_load(
            [Triple(EX[f"p{i:03d}"], EX.bornIn, EX[f"c{i % 7}"]) for i in range(count)]
        )
        return store

    def test_health_reports_generation(self):
        with serve_http(store=_people_store(), metrics=MetricsRegistry()) as running:
            with HttpSparqlClient(running.url) as client:
                assert client.health()["generation"] == 0
                running.refresh()
                assert client.health()["generation"] == 1

    def test_refresh_requires_a_refreshable_endpoint(self):
        from repro.endpoint.endpoint import SparqlEndpoint

        endpoint = SparqlEndpoint(_people_store(), name="plain")
        with serve_http(endpoint, metrics=MetricsRegistry()) as running:
            with pytest.raises(EndpointError):
                running.refresh()

    def test_refresh_under_live_requests_never_errors(self):
        store = self._sharded_store()
        select = PREFIX + "SELECT ?p ?c WHERE { ?p ex:bornIn ?c }"
        with serve_http(
            store=store,
            client_policy=AccessPolicy(max_queries=None, max_result_rows=None),
            metrics=MetricsRegistry(),
        ) as running:
            statuses = []
            counts = []
            stop = threading.Event()

            def hammer(client_id):
                with HttpSparqlClient(running.url, client_id=client_id) as client:
                    while not stop.is_set():
                        status, _, body = client.request_raw(
                            "POST",
                            "/sparql",
                            body=select.encode("utf-8"),
                            headers={"Content-Type": "application/sparql-query"},
                        )
                        statuses.append(status)
                        if status == 200:
                            counts.append(
                                len(json.loads(body)["results"]["bindings"])
                            )

            threads = [
                threading.Thread(target=hammer, args=(f"client{i}",))
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            try:
                def grow(target):
                    for i in range(40):
                        target.add(Triple(EX[f"new{i}"], EX.bornIn, EX.Atlantis))

                report = running.refresh(mutate=grow, rebalance=True)
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            assert set(statuses) == {200}  # zero 5xx across the handover
            # Every page was rendered from exactly one generation.
            assert set(counts) <= {120, 160}
            assert report["rebalance"]["moved"] >= 0
            with HttpSparqlClient(running.url) as client:
                assert len(client.select(select)) == 160
