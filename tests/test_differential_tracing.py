"""Differential guard: tracing must never change query results.

For every backend (thread and process) at 1, 2 and 8 shards, each query
of a fixed battery — BGP join, OPTIONAL, UNION, ASK, LIMIT, COUNT /
COUNT DISTINCT, an s–o chain (the join-shipping path) and a grouped
count — is answered three ways:

* plain ``query()`` with tracing off (the reference);
* ``profile()`` — a full span tree is recorded around the same call;
* plain ``query()`` with ``REPRO_TRACE`` set — the auto-trace sink.

All three must agree as solution multisets (LIMIT pages may pick
different rows, so they assert size + subset-of-universe instead), and
the traced runs must actually have engaged: process-backend profiles
carry re-parented ``worker:exec`` spans, so the guard cannot silently
pass with tracing compiled out.

Runs under every worker start method (``REPRO_WORKER_START_METHOD``).
"""

import multiprocessing
import os
from collections import Counter

import pytest

from repro.endpoint.simulation import sharded_endpoint
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.sparql.results import AskResult

EX = Namespace("http://difftrace.test/")
P = "http://difftrace.test/"

START_METHOD = os.environ.get("REPRO_WORKER_START_METHOD") or None
if START_METHOD and START_METHOD not in multiprocessing.get_all_start_methods():
    pytest.skip(
        f"start method {START_METHOD!r} unsupported on this platform",
        allow_module_level=True,
    )

SHARD_COUNTS = (1, 2, 8)

MULTISET_QUERIES = [
    ("bgp", f"SELECT ?s ?a ?b WHERE {{ ?s <{P}p0> ?a . ?s <{P}p1> ?b }}"),
    (
        "optional",
        f"SELECT ?s ?a ?o WHERE {{ ?s <{P}p0> ?a . "
        f"OPTIONAL {{ ?s <{P}p2> ?o }} }}",
    ),
    (
        "union",
        f"SELECT ?s ?x WHERE {{ {{ ?s <{P}p0> ?x }} UNION "
        f"{{ ?s <{P}p2> ?x }} }}",
    ),
    (
        "count",
        f"SELECT (COUNT(*) AS ?c) (COUNT(DISTINCT ?a) AS ?d) WHERE "
        f"{{ ?s <{P}p0> ?a . ?s <{P}p1> ?b }}",
    ),
    # The s–o chain is never co-partitioned: broadcast-hash shipping.
    ("chain", f"SELECT ?s ?a ?z WHERE {{ ?s <{P}p0> ?a . ?a <{P}link> ?z }}"),
    (
        "grouped-count",
        f"SELECT ?a (COUNT(?s) AS ?c) WHERE {{ ?s <{P}p0> ?a . "
        f"?s <{P}p1> ?b }} GROUP BY ?a",
    ),
]
ASK_QUERY = f"ASK {{ ?s <{P}p0> ?a . ?s <{P}p1> ?b }}"
LIMIT_QUERY = f"SELECT ?s ?a WHERE {{ ?s <{P}p0> ?a }} LIMIT 5"
UNIVERSE_QUERY = f"SELECT ?s ?a WHERE {{ ?s <{P}p0> ?a }}"


def _triples():
    triples = []
    for i in range(48):
        triples.append(Triple(EX[f"s{i}"], EX.p0, EX[f"a{i % 7}"]))
        triples.append(Triple(EX[f"s{i}"], EX.p1, EX[f"b{i % 5}"]))
        if i % 3 == 0:
            triples.append(Triple(EX[f"s{i}"], EX.p2, EX[f"c{i % 4}"]))
    for i in range(7):
        triples.append(Triple(EX[f"a{i}"], EX.link, EX[f"z{i % 3}"]))
    return triples


def _multiset(result) -> Counter:
    return Counter(frozenset(row.items()) for row in result)


def _endpoints(tmp_path, stack):
    for backend in ("thread", "process"):
        for count in SHARD_COUNTS:
            store = ShardedTripleStore(num_shards=count, triples=_triples())
            kwargs = {}
            if backend == "process":
                kwargs = {
                    "snapshot_dir": tmp_path / f"snap{count}",
                    "start_method": START_METHOD,
                }
            endpoint = stack.enter_context(
                sharded_endpoint(store, backend=backend, **kwargs)
            )
            yield f"{backend}-{count}", backend, endpoint


class TestTracingIsInvisible:
    def test_results_identical_with_tracing_on_and_off(
        self, tmp_path, monkeypatch
    ):
        from contextlib import ExitStack

        trace_file = tmp_path / "trace.jsonl"
        with ExitStack() as stack:
            for label, backend, endpoint in _endpoints(tmp_path, stack):
                monkeypatch.delenv("REPRO_TRACE", raising=False)
                plain = {
                    family: _multiset(endpoint.query(query))
                    for family, query in MULTISET_QUERIES
                }
                plain_ask = endpoint.ask(ASK_QUERY)
                universe = _multiset(endpoint.query(UNIVERSE_QUERY))
                page_size = min(5, sum(universe.values()))

                # profile(): explicit root span around the same queries.
                for family, query in MULTISET_QUERIES:
                    profile = endpoint.profile(query)
                    assert profile.error is None, f"{family} @ {label}"
                    assert (
                        _multiset(profile.result) == plain[family]
                    ), f"{family} @ {label}"
                    assert profile.trace.find("evaluate") is not None
                    if backend == "process":
                        workers = profile.trace.find_all("worker:exec")
                        assert workers, f"{family} @ {label}: no worker spans"
                ask_profile = endpoint.profile(ASK_QUERY)
                assert isinstance(ask_profile.result, AskResult)
                assert bool(ask_profile.result) == plain_ask, label
                page = _multiset(endpoint.profile(LIMIT_QUERY).result)
                assert sum(page.values()) == page_size, label
                for row, count in page.items():
                    assert universe[row] >= count, label

                # Auto-traced queries (REPRO_TRACE sink) agree too.
                monkeypatch.setenv("REPRO_TRACE", str(trace_file))
                for family, query in MULTISET_QUERIES:
                    assert (
                        _multiset(endpoint.query(query)) == plain[family]
                    ), f"{family} @ {label} (auto-trace)"
                assert endpoint.ask(ASK_QUERY) == plain_ask, label
                monkeypatch.delenv("REPRO_TRACE", raising=False)

        # The auto-trace sink actually recorded complete roots.
        lines = trace_file.read_text().splitlines()
        assert len(lines) == (len(MULTISET_QUERIES) + 1) * len(
            SHARD_COUNTS
        ) * 2
