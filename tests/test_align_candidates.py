"""Unit tests for candidate relation discovery."""

import pytest

from repro.align.candidates import CandidateFinder
from repro.align.config import AlignmentConfig
from repro.rdf.namespace import SAME_AS


@pytest.fixture
def movie_setup(movie_world):
    """Clients and namespaces for the movie world, filmdb -> imdb direction."""
    filmdb = movie_world.kb("filmdb")
    imdb = movie_world.kb("imdb")
    return {
        "world": movie_world,
        "source": filmdb.client(),   # query relations live in filmdb
        "target": imdb.client(),     # candidates come from imdb
        "target_ns": imdb.namespace,
        "filmdb": filmdb,
        "imdb": imdb,
    }


class TestCandidateFinder:
    def test_finds_true_candidate(self, movie_setup):
        finder = CandidateFinder(
            source=movie_setup["source"],
            target=movie_setup["target"],
            links=movie_setup["world"].links,
            target_namespace=movie_setup["target_ns"],
        )
        directed_by = movie_setup["filmdb"].namespace.term("directedBy")
        candidates = finder.find(directed_by)
        names = {candidate.relation.local_name for candidate in candidates}
        assert "hasDirector" in names

    def test_correlated_relation_also_proposed(self, movie_setup):
        # The whole point of the UBS strategy: hasProducer shows up as a
        # (wrong) candidate for directedBy because of the correlation.
        finder = CandidateFinder(
            source=movie_setup["source"],
            target=movie_setup["target"],
            links=movie_setup["world"].links,
            target_namespace=movie_setup["target_ns"],
        )
        directed_by = movie_setup["filmdb"].namespace.term("directedBy")
        names = {c.relation.local_name for c in finder.find(directed_by)}
        assert "hasProducer" in names

    def test_same_as_never_proposed(self, movie_setup):
        finder = CandidateFinder(
            source=movie_setup["source"],
            target=movie_setup["target"],
            links=movie_setup["world"].links,
            target_namespace=movie_setup["target_ns"],
        )
        directed_by = movie_setup["filmdb"].namespace.term("directedBy")
        assert SAME_AS not in {c.relation for c in finder.find(directed_by)}

    def test_literal_relation_candidates(self, movie_setup):
        finder = CandidateFinder(
            source=movie_setup["source"],
            target=movie_setup["target"],
            links=movie_setup["world"].links,
            target_namespace=movie_setup["target_ns"],
        )
        title = movie_setup["filmdb"].namespace.term("title")
        names = {c.relation.local_name for c in finder.find(title)}
        assert "hasTitle" in names

    def test_unknown_relation_yields_no_candidates(self, movie_setup):
        finder = CandidateFinder(
            source=movie_setup["source"],
            target=movie_setup["target"],
            links=movie_setup["world"].links,
            target_namespace=movie_setup["target_ns"],
        )
        missing = movie_setup["filmdb"].namespace.term("doesNotExist")
        assert finder.find(missing) == []

    def test_candidates_ranked_by_hits(self, movie_setup):
        finder = CandidateFinder(
            source=movie_setup["source"],
            target=movie_setup["target"],
            links=movie_setup["world"].links,
            target_namespace=movie_setup["target_ns"],
        )
        directed_by = movie_setup["filmdb"].namespace.term("directedBy")
        candidates = finder.find(directed_by)
        hits = [candidate.hits for candidate in candidates]
        assert hits == sorted(hits, reverse=True)
        assert candidates[0].relation.local_name == "hasDirector"

    def test_max_candidates_respected(self, movie_setup):
        config = AlignmentConfig(max_candidates=1)
        finder = CandidateFinder(
            source=movie_setup["source"],
            target=movie_setup["target"],
            links=movie_setup["world"].links,
            target_namespace=movie_setup["target_ns"],
            config=config,
        )
        directed_by = movie_setup["filmdb"].namespace.term("directedBy")
        assert len(finder.find(directed_by)) == 1

    def test_deterministic_given_seed(self, movie_setup):
        def run():
            finder = CandidateFinder(
                source=movie_setup["filmdb"].client(),
                target=movie_setup["imdb"].client(),
                links=movie_setup["world"].links,
                target_namespace=movie_setup["target_ns"],
                config=AlignmentConfig(random_seed=5),
            )
            directed_by = movie_setup["filmdb"].namespace.term("directedBy")
            return [(c.relation, c.hits) for c in finder.find(directed_by)]

        assert run() == run()
