"""Unit tests for the sameAs equivalence index (union-find)."""

from repro.kb.sameas import SameAsIndex
from repro.rdf.namespace import OWL
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple

from tests.conftest import EX, EX2


class TestLinks:
    def test_direct_link(self):
        index = SameAsIndex()
        index.add_link(EX.a, EX2.a)
        assert index.are_same(EX.a, EX2.a)
        assert index.are_same(EX2.a, EX.a)

    def test_identity_always_same(self):
        index = SameAsIndex()
        assert index.are_same(EX.a, EX.a)
        assert not index.are_same(EX.a, EX.b)

    def test_transitive_chain(self):
        index = SameAsIndex()
        index.add_link(EX.a, EX2.a)
        index.add_link(EX2.a, EX2.a_alias)
        assert index.are_same(EX.a, EX2.a_alias)

    def test_link_count_and_len(self):
        index = SameAsIndex([(EX.a, EX2.a), (EX.b, EX2.b)])
        assert index.link_count == 2
        assert len(index) == 4

    def test_duplicate_link_does_not_grow_classes(self):
        index = SameAsIndex()
        index.add_link(EX.a, EX2.a)
        index.add_link(EX.a, EX2.a)
        assert index.class_count() == 1
        assert len(index) == 2

    def test_literals_ignored(self):
        index = SameAsIndex()
        index.add_link(EX.a, Literal("x"))
        assert len(index) == 0

    def test_contains(self):
        index = SameAsIndex([(EX.a, EX2.a)])
        assert EX.a in index
        assert EX.zzz not in index


class TestClassesAndTranslation:
    def test_equivalence_class_and_equivalents(self):
        index = SameAsIndex([(EX.a, EX2.a), (EX2.a, EX2.a_alias)])
        assert index.equivalence_class(EX.a) == {EX.a, EX2.a, EX2.a_alias}
        assert index.equivalents(EX.a) == {EX2.a, EX2.a_alias}
        assert index.equivalence_class(EX.unknown) == {EX.unknown}

    def test_translate_to_namespace(self):
        index = SameAsIndex([(EX.a, EX2.a)])
        assert index.translate(EX.a, EX2) == EX2.a
        assert index.translate(EX2.a, EX) == EX.a

    def test_translate_identity_when_already_in_namespace(self):
        index = SameAsIndex()
        assert index.translate(EX.a, EX) == EX.a

    def test_translate_missing_returns_none(self):
        index = SameAsIndex([(EX.a, EX2.a)])
        assert index.translate(EX.b, EX2) is None

    def test_translate_deterministic_choice(self):
        index = SameAsIndex([(EX.a, EX2.zz), (EX.a, EX2.aa)])
        assert index.translate(EX.a, EX2) == EX2.aa

    def test_classes_and_class_count(self):
        index = SameAsIndex([(EX.a, EX2.a), (EX.b, EX2.b)])
        assert index.class_count() == 2
        assert all(len(cls) == 2 for cls in index.classes())


class TestConstructionAndExport:
    def test_from_triples(self, people_store):
        index = SameAsIndex.from_triples(iter(people_store))
        assert index.are_same(EX["Frank_Sinatra"], EX2["FrankSinatra"])
        assert index.class_count() == 2

    def test_to_triples_spanning_edges(self):
        index = SameAsIndex([(EX.a, EX2.a), (EX2.a, EX2.a_alias)])
        triples = index.to_triples()
        assert all(t.predicate == OWL.sameAs for t in triples)
        # A 3-member class is spanned by 2 edges.
        assert len(triples) == 2
        rebuilt = SameAsIndex.from_triples(triples)
        assert rebuilt.are_same(EX.a, EX2.a_alias)

    def test_restricted_to(self):
        index = SameAsIndex([(EX.a, EX2.a), (EX.b, EX2.b)])
        restricted = index.restricted_to([EX.a, EX2.a])
        assert restricted.are_same(EX.a, EX2.a)
        assert not restricted.are_same(EX.b, EX2.b)
