"""Tests for the columnar bulk-load path and the flat membership map."""

import pytest

from repro.errors import StoreError
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple
from repro.store.bulk import load_triples
from repro.store.index import IdTripleIndex
from repro.store.triplestore import TripleStore
from repro.synthetic.generator import generate_world
from repro.synthetic.presets import movie_world_spec

EX = Namespace("http://bulk.test/")


def sample_triples():
    triples = []
    for index in range(40):
        subject = EX[f"s{index % 10}"]
        predicate = EX[f"p{index % 4}"]
        triples.append(Triple(subject, predicate, EX[f"o{index}"]))
        triples.append(Triple(subject, predicate, Literal(f"value {index}")))
    return triples


class TestBulkLoad:
    def test_bulk_load_equals_per_triple_add(self):
        triples = sample_triples()
        incremental = TripleStore(name="incremental")
        incremental.add_all(triples)
        bulk = TripleStore(name="bulk")
        inserted = bulk.bulk_load(triples)
        assert inserted == len(set(triples))
        assert len(bulk) == len(incremental)
        assert set(bulk) == set(incremental)
        for predicate in incremental.predicates():
            assert set(bulk.match(predicate=predicate)) == set(
                incremental.match(predicate=predicate)
            )
            assert bulk.count(predicate=predicate) == incremental.count(
                predicate=predicate
            )

    def test_bulk_load_skips_duplicates_within_batch_and_against_store(self):
        triples = sample_triples()
        store = TripleStore()
        store.add(triples[0])
        inserted = store.bulk_load(triples + triples[:5])
        assert inserted == len(set(triples)) - 1
        assert len(store) == len(set(triples))
        # A second identical load is a no-op.
        assert store.bulk_load(triples) == 0
        assert len(store) == len(set(triples))

    def test_bulk_load_into_populated_store_merges_runs(self):
        triples = sample_triples()
        store = TripleStore(triples=triples[:30])
        store.bulk_load(triples[20:])
        reference = TripleStore(triples=triples)
        assert set(store) == set(reference)
        assert store.count() == reference.count()
        stats = store.statistics()
        assert stats.triple_count == len(store)

    def test_mutation_after_bulk_load_keeps_indexes_consistent(self):
        triples = sample_triples()
        store = TripleStore(triples=triples)
        extra = Triple(EX.fresh, EX.p0, EX.fresh_object)
        assert store.add(extra)
        assert store.remove(extra)
        assert store.remove(triples[0])
        assert triples[0] not in store
        assert set(store) == set(triples) - {triples[0]}
        # Sorted runs stay sorted after interleaved bulk and single adds.
        for subject, predicate, _ in ((t.subject, t.predicate, t.object) for t in triples[:5]):
            objects = store.objects_of(subject, predicate)
            ids = [store.term_id(o) for o in objects]
            assert ids == sorted(ids)

    def test_large_batch_vectorised_path_agrees_with_incremental(self):
        # Batches >= the numpy threshold take the lexsort/grouped path;
        # the result must be indistinguishable from per-triple adds.
        triples = [
            Triple(EX[f"s{index % 50}"], EX[f"p{index % 7}"], EX[f"o{index % 61}"])
            for index in range(3000)
        ]
        bulk = TripleStore()
        assert bulk.bulk_load(triples) == len(set(triples))
        incremental = TripleStore()
        incremental.add_all(triples)
        assert len(bulk) == len(incremental)
        assert set(bulk) == set(incremental)
        for predicate in incremental.predicates():
            assert bulk.count(predicate=predicate) == incremental.count(
                predicate=predicate
            )
        subject = EX.s0
        assert sorted(map(repr, bulk.predicates_of(subject))) == sorted(
            map(repr, incremental.predicates_of(subject))
        )

    def test_bulk_load_rejects_non_triples(self):
        store = TripleStore()
        with pytest.raises(StoreError):
            store.bulk_load([("not", "a", "triple")])  # type: ignore[list-item]

    def test_failed_bulk_load_leaves_store_unchanged(self):
        # A mid-batch error (bad element or a raising iterable) must not
        # leave triples half-registered: membership, len and the indexes
        # have to stay consistent, and a retry must succeed.
        triples = sample_triples()
        store = TripleStore(triples=triples[:5])
        with pytest.raises(StoreError):
            store.bulk_load([triples[10], "broken", triples[11]])  # type: ignore[list-item]
        assert len(store) == 5
        assert triples[10] not in store
        assert store.count() == 5

        def exploding():
            yield triples[10]
            raise RuntimeError("source failed")

        with pytest.raises(RuntimeError):
            store.bulk_load(exploding())
        assert triples[10] not in store
        # The failed batches left no tombstones: loading again works fully.
        assert store.bulk_load([triples[10], triples[11]]) == 2
        assert triples[10] in store
        assert store.count(predicate=triples[10].predicate) == len(
            [t for t in store if t.predicate == triples[10].predicate]
        )

    def test_load_triples_helper_uses_bulk_path(self):
        triples = sample_triples()
        store = load_triples(triples, name="helper")
        assert len(store) == len(set(triples))
        assert store.name == "helper"

    def test_generated_world_is_bulk_loaded_and_consistent(self):
        world = generate_world(movie_world_spec(films=20, people=25))
        for kb in world.kbs.values():
            store = kb.store
            assert len(store) > 0
            # Index bookkeeping agrees with the flat map after bulk build.
            assert store.count() == len(store)
            total = sum(
                store.count(predicate=info.iri)
                for info in kb.relations(include_same_as=True)
            )
            assert total == len(store)


class TestBulkExtendIndex:
    def test_bulk_extend_matches_incremental_adds(self):
        entries = sorted(
            {(key % 5, second % 7, key * 13 + second) for key in range(40) for second in range(3)}
        )
        incremental = IdTripleIndex()
        for key, second, third in entries:
            incremental.add(key, second, third)
        bulk = IdTripleIndex()
        bulk.bulk_extend(entries)
        assert len(bulk) == len(incremental)
        assert set(bulk.triples()) == set(incremental.triples())
        for key, _, _ in entries:
            assert bulk.count_for_key(key) == incremental.count_for_key(key)
            assert bulk.second_count_for_key(key) == incremental.second_count_for_key(key)

    def test_bulk_extend_appends_to_existing_runs(self):
        index = IdTripleIndex()
        index.add(1, 1, 5)
        index.add(1, 1, 1)
        index.bulk_extend([(1, 1, 2), (1, 1, 9), (2, 1, 3)])
        assert list(index.thirds(1, 1)) == [1, 2, 5, 9]
        assert index.count_for_key(1) == 4
        assert index.count_for_key(2) == 1
        assert len(index) == 5

    def test_sorted_thirds_exposes_run(self):
        index = IdTripleIndex()
        for third in (9, 2, 5):
            index.add(3, 4, third)
        run = index.sorted_thirds(3, 4)
        assert list(run) == [2, 5, 9]
        assert index.sorted_thirds(3, 99) == ()
        assert index.sorted_thirds(99, 4) == ()


class TestMembershipProbe:
    def test_contains_routes_through_flat_map(self):
        triples = sample_triples()
        store = TripleStore(triples=triples)
        for triple in triples:
            assert triple in store
        # Equal-but-distinct instances hit via hash equality.
        clone = Triple(triples[0].subject, triples[0].predicate, triples[0].object)
        assert clone in store
        assert Triple(EX.nope, EX.p0, EX.nope) not in store
        assert "not a triple" not in store

    def test_contains_tracks_remove_and_clear(self):
        triples = sample_triples()
        store = TripleStore(triples=triples)
        store.remove(triples[0])
        assert triples[0] not in store
        store.clear()
        assert all(triple not in store for triple in triples)
        # IDs survive clear; re-adding restores membership.
        store.add(triples[1])
        assert triples[1] in store

    def test_sorted_run_ids_shapes(self):
        store = TripleStore(triples=sample_triples())
        sid = store.term_id(EX.s0)
        pid = store.term_id(EX.p0)
        run = store.sorted_run_ids(subject=sid, predicate=pid)
        assert list(run) == sorted(run)
        assert len(list(run)) == store.count_ids(sid, pid, None)
        with pytest.raises(StoreError):
            store.sorted_run_ids(subject=sid)


class TestFromIdColumns:
    """The streaming ID-column loader must agree with Triple-based loads."""

    @staticmethod
    def _columns():
        from repro.store.dictionary import TermDictionary

        dictionary = TermDictionary()
        triples = sample_triples()
        subjects, predicates, objects = [], [], []
        for triple in triples:
            s, p, o = dictionary.encode_triple(triple)
            subjects.append(s)
            predicates.append(p)
            objects.append(o)
        return dictionary, triples, subjects, predicates, objects

    def test_equals_triple_load(self):
        dictionary, triples, subjects, predicates, objects = self._columns()
        reference = TripleStore(triples=triples)
        store = TripleStore.from_id_columns("cols", dictionary, subjects, predicates, objects)
        assert store.is_frozen
        assert set(store) == set(reference)
        assert len(store) == len(reference)

    def test_deduplicates(self):
        dictionary, _, subjects, predicates, objects = self._columns()
        doubled = TripleStore.from_id_columns(
            "cols", dictionary, subjects * 2, predicates * 2, objects * 2
        )
        once = TripleStore.from_id_columns("cols", dictionary, subjects, predicates, objects)
        assert set(doubled.match_ids()) == set(once.match_ids())
        assert len(doubled) == len(once)

    def test_mutation_after_load(self):
        dictionary, triples, subjects, predicates, objects = self._columns()
        store = TripleStore.from_id_columns("cols", dictionary, subjects, predicates, objects)
        extra = Triple(EX.zz, EX.p0, EX.yy)
        assert store.add(extra)
        assert extra in store
        assert store.remove(extra)
        assert len(store) == len(set(triples))

    def test_persist_roundtrip(self, tmp_path):
        dictionary, triples, subjects, predicates, objects = self._columns()
        store = TripleStore.from_id_columns("cols", dictionary, subjects, predicates, objects)
        store.save(tmp_path / "cols.snap")
        reopened = TripleStore.open(tmp_path / "cols.snap")
        assert set(reopened) == set(triples)

    def test_empty_columns(self):
        from repro.store.dictionary import TermDictionary

        store = TripleStore.from_id_columns("empty", TermDictionary(), [], [], [])
        assert len(store) == 0
        assert list(store.match_ids()) == []

    def test_pure_python_fallback_matches(self, monkeypatch):
        dictionary, _, subjects, predicates, objects = self._columns()
        fast = TripleStore.from_id_columns("cols", dictionary, subjects, predicates, objects)
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        slow = TripleStore.from_id_columns("cols", dictionary, subjects, predicates, objects)
        assert sorted(slow.match_ids()) == sorted(fast.match_ids())
