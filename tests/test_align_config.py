"""Unit tests for the alignment configuration."""

import pytest

from repro.align.config import AlignmentConfig
from repro.errors import AlignmentError


class TestValidation:
    def test_defaults_are_valid(self):
        config = AlignmentConfig()
        assert config.sample_size == 10
        assert config.confidence_measure == "pca"

    def test_invalid_sample_size(self):
        with pytest.raises(AlignmentError):
            AlignmentConfig(sample_size=0)

    def test_invalid_measure(self):
        with pytest.raises(AlignmentError):
            AlignmentConfig(confidence_measure="f-measure")

    def test_invalid_threshold(self):
        with pytest.raises(AlignmentError):
            AlignmentConfig(confidence_threshold=1.5)

    def test_invalid_min_support(self):
        with pytest.raises(AlignmentError):
            AlignmentConfig(min_support=-1)

    def test_invalid_ubs_settings(self):
        with pytest.raises(AlignmentError):
            AlignmentConfig(ubs_contradiction_threshold=0)
        with pytest.raises(AlignmentError):
            AlignmentConfig(ubs_sample_size=0)

    def test_invalid_candidate_settings(self):
        with pytest.raises(AlignmentError):
            AlignmentConfig(candidate_sample_size=0)
        with pytest.raises(AlignmentError):
            AlignmentConfig(max_candidates=0)
        with pytest.raises(AlignmentError):
            AlignmentConfig(oversample_factor=0)


class TestPaperPresets:
    def test_pca_baseline_matches_paper_row(self):
        config = AlignmentConfig.paper_pca_baseline()
        assert config.confidence_measure == "pca"
        assert config.confidence_threshold == pytest.approx(0.3)
        assert not config.use_unbiased_sampling
        assert config.sample_size == 10

    def test_cwa_baseline_matches_paper_row(self):
        config = AlignmentConfig.paper_cwa_baseline()
        assert config.confidence_measure == "cwa"
        assert config.confidence_threshold == pytest.approx(0.1)
        assert not config.use_unbiased_sampling

    def test_ubs_preset_matches_paper_row(self):
        config = AlignmentConfig.paper_ubs()
        assert config.confidence_measure == "pca"
        assert config.use_unbiased_sampling

    def test_presets_accept_sample_size(self):
        assert AlignmentConfig.paper_ubs(sample_size=25).sample_size == 25


class TestDerivedCopies:
    def test_with_threshold(self):
        config = AlignmentConfig().with_threshold(0.7)
        assert config.confidence_threshold == pytest.approx(0.7)
        assert AlignmentConfig().confidence_threshold != 0.7

    def test_with_sample_size(self):
        assert AlignmentConfig().with_sample_size(3).sample_size == 3

    def test_copies_are_frozen(self):
        config = AlignmentConfig()
        with pytest.raises(Exception):
            config.sample_size = 99  # type: ignore[misc]
