"""Snapshot persistence: round-trip, corruption, laziness and promotion.

The contract under test (see :mod:`repro.store.persist`):

* ``save -> open -> save`` is **byte-identical**, for single stores and
  for every file of a sharded snapshot directory;
* flipping a single byte in *any* section (or the header, magic, or
  manifest), and truncating the file, raises a clean
  :class:`~repro.errors.SnapshotCorruptError`;
* a cold-opened store answers the whole bookkeeping API identically to
  the warm store it was saved from, stays lazy under reads, and promotes
  transparently on the first mutation.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SnapshotCorruptError, StoreError
from repro.kb.knowledge_base import KnowledgeBase
from repro.rdf.namespace import Namespace
from repro.rdf.terms import BlankNode, IRI, Literal
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.store import persist
from repro.store.dictionary import (
    LazyTermDictionary,
    TermDictionary,
    decode_term_record,
    encode_term_record,
)
from repro.store.index import FrozenIdIndex, IdTripleIndex
from repro.store.triplestore import TripleStore

EX = Namespace("http://persist.test/")


def _mixed_triples():
    """A store exercising every term kind (IRIs, blanks, literal shapes)."""
    triples = []
    for index in range(120):
        subject = EX[f"s{index % 24}"]
        triples.append(Triple(subject, EX[f"p{index % 5}"], EX[f"o{index % 17}"]))
        triples.append(
            Triple(subject, EX.label, Literal(f"nomé {index % 9}", language="en"))
        )
        triples.append(Triple(subject, EX.age, Literal(index % 80)))
        triples.append(Triple(BlankNode(f"b{index % 7}"), EX.near, subject))
    triples.append(Triple(EX.plain, EX.label, Literal("plain value")))
    triples.append(
        Triple(EX.typed, EX.label, Literal("2001-02-03", datatype=EX.date.value))
    )
    return triples


@pytest.fixture(scope="module")
def warm_store():
    return TripleStore(name="persist-fixture", triples=_mixed_triples())


@pytest.fixture()
def snapshot_path(tmp_path, warm_store):
    path = tmp_path / "store.snap"
    warm_store.save(path)
    return path


# --------------------------------------------------------------------- #
# Term record codec
# --------------------------------------------------------------------- #
class TestTermRecordCodec:
    TERMS = [
        IRI("http://x.test/a"),
        IRI("http://x.test/ümläut"),
        BlankNode("node7"),
        Literal("plain"),
        Literal(""),
        Literal("hello", language="en-gb"),
        Literal("42", datatype="http://www.w3.org/2001/XMLSchema#integer"),
        Literal("embédded \x00 byte"),
    ]

    @pytest.mark.parametrize("term", TERMS, ids=repr)
    def test_round_trip(self, term):
        assert decode_term_record(encode_term_record(term)) == term

    def test_encoding_is_injective_across_shapes(self):
        records = [encode_term_record(term) for term in self.TERMS]
        assert len(set(records)) == len(records)
        # The classic trap: a plain literal, a datatyped literal and an
        # IRI with the same string must all encode differently.
        trio = [
            Literal("http://x.test/a"),
            IRI("http://x.test/a"),
            Literal("a", language="en"),
            Literal("a", datatype="http://x.test/en"),
        ]
        assert len({encode_term_record(t) for t in trio}) == len(trio)

    def test_rejects_garbage(self):
        with pytest.raises(StoreError):
            encode_term_record("not a term")
        with pytest.raises(StoreError):
            decode_term_record(b"")
        with pytest.raises(StoreError):
            decode_term_record(b"\x09junk")


# --------------------------------------------------------------------- #
# Byte-identical round trips
# --------------------------------------------------------------------- #
class TestByteIdenticalRoundTrip:
    def test_single_store(self, tmp_path, warm_store, snapshot_path):
        reopened = TripleStore.open(snapshot_path)
        second = tmp_path / "second.snap"
        reopened.save(second)
        assert snapshot_path.read_bytes() == second.read_bytes()

    def test_single_store_without_mmap(self, tmp_path, snapshot_path):
        reopened = TripleStore.open(snapshot_path, mmap=False)
        second = tmp_path / "second.snap"
        reopened.save(second)
        assert snapshot_path.read_bytes() == second.read_bytes()

    def test_resave_after_promotion_is_still_identical(
        self, tmp_path, snapshot_path
    ):
        # Promote the dictionary and the Triple maps without changing the
        # triple set: the rebuilt sections must reproduce the raw ones.
        reopened = TripleStore.open(snapshot_path)
        _ = reopened.dictionary.ids_map  # forces dictionary promotion
        _ = reopened.id_triples  # forces Triple-map materialisation
        second = tmp_path / "second.snap"
        reopened.save(second)
        assert snapshot_path.read_bytes() == second.read_bytes()

    def test_sharded_directory(self, tmp_path, warm_store):
        sharded = ShardedTripleStore(num_shards=4, triples=iter(warm_store))
        first = tmp_path / "first"
        sharded.save(first)
        reopened = ShardedTripleStore.open(first)
        second = tmp_path / "second"
        reopened.save(second)
        names = sorted(p.name for p in first.iterdir())
        assert names == sorted(p.name for p in second.iterdir())
        for name in names:
            assert (first / name).read_bytes() == (second / name).read_bytes(), name

    @given(
        st.lists(
            st.builds(
                Triple,
                st.sampled_from([EX[f"n{i}"] for i in range(8)]),
                st.sampled_from([EX[f"q{i}"] for i in range(4)]),
                st.one_of(
                    st.sampled_from([EX[f"n{i}"] for i in range(8)]),
                    st.integers(0, 50).map(Literal),
                ),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip(self, tmp_path_factory, triples):
        tmp = tmp_path_factory.mktemp("prop")
        store = TripleStore(triples=triples)
        first, second = tmp / "a.snap", tmp / "b.snap"
        store.save(first)
        reopened = TripleStore.open(first)
        assert set(reopened) == set(store)
        assert len(reopened) == len(store)
        reopened.save(second)
        assert first.read_bytes() == second.read_bytes()


# --------------------------------------------------------------------- #
# Corruption handling
# --------------------------------------------------------------------- #
def _section_spans(raw: bytes):
    """Absolute ``tag -> (start, length)`` spans from a snapshot's header."""
    header_len = int.from_bytes(raw[8:12], "little")
    header = json.loads(raw[16 : 16 + header_len].decode("utf-8"))
    base = 16 + header_len
    base += (-base) % 8
    return {
        tag: (base + offset, length)
        for tag, (offset, length, _crc) in header["sections"].items()
    }


def _flip_byte(raw: bytes, position: int) -> bytes:
    corrupted = bytearray(raw)
    corrupted[position] ^= 0x5A
    return bytes(corrupted)


class TestCorruption:
    def test_every_section_independently_corrupted(self, tmp_path, snapshot_path):
        raw = snapshot_path.read_bytes()
        spans = _section_spans(raw)
        # The fixture store interns all three term kinds and fills all
        # three index orders, so every section must be non-empty.
        assert all(length > 0 for _, length in spans.values())
        for tag, (start, length) in spans.items():
            target = tmp_path / "corrupt.snap"
            target.write_bytes(_flip_byte(raw, start + length // 2))
            with pytest.raises(SnapshotCorruptError):
                TripleStore.open(target)
            # mmap=False takes the bytes path; same detection.
            with pytest.raises(SnapshotCorruptError):
                TripleStore.open(target, mmap=False)

    def test_header_and_magic_corruption(self, tmp_path, snapshot_path):
        raw = snapshot_path.read_bytes()
        target = tmp_path / "corrupt.snap"
        for position in (0, 9, 20):  # magic, declared length, header body
            target.write_bytes(_flip_byte(raw, position))
            with pytest.raises(SnapshotCorruptError):
                TripleStore.open(target)

    def test_truncation(self, tmp_path, snapshot_path):
        raw = snapshot_path.read_bytes()
        target = tmp_path / "truncated.snap"
        for keep in (0, 7, 15, len(raw) // 2, len(raw) - 3):
            target.write_bytes(raw[:keep])
            with pytest.raises(SnapshotCorruptError):
                TripleStore.open(target)

    def test_wrong_version_and_kind(self, tmp_path, warm_store):
        path = tmp_path / "v.snap"
        persist.write_container(
            path, kind="store", name="v", sections=[], triples=0, terms=0
        )
        raw = path.read_bytes()
        header_len = int.from_bytes(raw[8:12], "little")
        header = json.loads(raw[16 : 16 + header_len])
        header["version"] = 99
        body = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        import zlib

        rebuilt = (
            raw[:8]
            + len(body).to_bytes(4, "little")
            + zlib.crc32(body).to_bytes(4, "little")
            + body
        )
        target = tmp_path / "v99.snap"
        target.write_bytes(rebuilt)
        with pytest.raises(SnapshotCorruptError):
            TripleStore.open(target)
        # A dictionary-only container is not openable as a store.
        dict_only = tmp_path / "dict.snap"
        persist.write_container(
            dict_only,
            kind="dictionary",
            name="d",
            sections=persist.dictionary_sections(warm_store.dictionary),
            triples=0,
            terms=len(warm_store.dictionary),
        )
        with pytest.raises(SnapshotCorruptError):
            TripleStore.open(dict_only)

    def test_verify_false_skips_checksums_not_structure(
        self, tmp_path, snapshot_path
    ):
        raw = snapshot_path.read_bytes()
        spans = _section_spans(raw)
        start, length = spans["spo/thirds"]
        target = tmp_path / "corrupt.snap"
        target.write_bytes(_flip_byte(raw, start + 8 * (length // 16)))
        # Same length, different int64 values: checksum off -> opens.
        store = TripleStore.open(target, verify=False)
        assert len(store) > 0
        # Structural damage (truncation) still raises without verify.
        target.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotCorruptError):
            TripleStore.open(target, verify=False)

    def test_sharded_manifest_corruption(self, tmp_path, warm_store):
        sharded = ShardedTripleStore(num_shards=2, triples=iter(warm_store))
        directory = tmp_path / "shd"
        sharded.save(directory)
        manifest = directory / "manifest.json"
        body = json.loads(manifest.read_text())
        body["boundaries"] = [0]  # tamper without fixing the checksum
        manifest.write_text(json.dumps(body, sort_keys=True, indent=2))
        with pytest.raises(SnapshotCorruptError):
            ShardedTripleStore.open(directory)
        manifest.write_text("{not json")
        with pytest.raises(SnapshotCorruptError):
            ShardedTripleStore.open(directory)

    def test_sharded_section_corruption(self, tmp_path, warm_store):
        sharded = ShardedTripleStore(num_shards=2, triples=iter(warm_store))
        directory = tmp_path / "shd"
        sharded.save(directory)
        snap_files = sorted(p for p in directory.iterdir() if p.suffix == ".snap")
        assert len(snap_files) == 3  # dictionary + two shards
        for path in snap_files:
            raw = path.read_bytes()
            spans = _section_spans(raw)
            tag, (start, length) = next(iter(spans.items()))
            path.write_bytes(_flip_byte(raw, start + length // 2))
            with pytest.raises(SnapshotCorruptError):
                ShardedTripleStore.open(directory)
            path.write_bytes(raw)  # restore for the next file
        # sanity: restored directory opens again
        assert len(ShardedTripleStore.open(directory)) == len(sharded)


# --------------------------------------------------------------------- #
# Laziness, equivalence and promotion
# --------------------------------------------------------------------- #
class TestColdStoreSemantics:
    def test_reads_stay_lazy(self, snapshot_path, warm_store):
        cold = TripleStore.open(snapshot_path)
        assert cold.is_frozen
        probe = next(iter(warm_store))
        assert probe in cold
        pid = cold.term_id(EX.age)
        assert pid is not None
        assert cold.count_ids(None, pid, None) == warm_store.count_ids(
            None, warm_store.term_id(EX.age), None
        )
        # Membership, counts and term lookups must not thaw anything.
        assert cold.is_frozen
        assert not cold.dictionary.is_promoted

    def test_bookkeeping_equivalence(self, snapshot_path, warm_store):
        cold = TripleStore.open(snapshot_path)
        dictionary = warm_store.dictionary
        for term in list(dictionary.terms()):
            assert cold.term_id(term) == warm_store.term_id(term)
        for shape in [
            (None, None, None),
            (warm_store.term_id(EX.s1), None, None),
            (None, warm_store.term_id(EX.p1), None),
            (None, None, warm_store.term_id(EX.o1)),
            (warm_store.term_id(EX.s1), warm_store.term_id(EX.p1), None),
            (None, warm_store.term_id(EX.p1), warm_store.term_id(EX.o1)),
        ]:
            assert cold.count_ids(*shape) == warm_store.count_ids(*shape)
            assert sorted(cold.match_ids(*shape)) == sorted(
                warm_store.match_ids(*shape)
            )
        for position in "spo":
            assert cold.count_distinct_ids(position) == warm_store.count_distinct_ids(
                position
            )
        run_args = (warm_store.term_id(EX.s1), warm_store.term_id(EX.p1), None)
        assert list(cold.sorted_run_ids(*run_args)) == list(
            warm_store.sorted_run_ids(*run_args)
        )
        assert sorted(t.value for t in cold.predicates()) == sorted(
            t.value for t in warm_store.predicates()
        )
        assert cold.entities() == warm_store.entities()

    def test_frozen_index_matches_writable(self, warm_store):
        writable = warm_store._spo
        keys, key_groups, seconds, group_starts, thirds = writable.csr_columns()
        frozen = FrozenIdIndex(
            memoryview(keys),
            memoryview(key_groups),
            memoryview(seconds),
            memoryview(group_starts),
            memoryview(thirds),
        )
        assert len(frozen) == len(writable)
        assert sorted(frozen.keys()) == sorted(writable.keys())
        assert frozen.key_count() == writable.key_count()
        for key in writable.keys():
            assert frozen.count_for_key(key) == writable.count_for_key(key)
            assert frozen.second_count_for_key(key) == writable.second_count_for_key(key)
            assert frozen.distinct_third_count(key) == writable.distinct_third_count(key)
            assert list(frozen.seconds(key)) == sorted(writable.seconds(key))
            assert sorted(frozen.pairs(key)) == sorted(writable.pairs(key))
            for second in writable.seconds(key):
                assert frozen.third_count(key, second) == writable.third_count(
                    key, second
                )
                assert list(frozen.sorted_thirds(key, second)) == list(
                    writable.sorted_thirds(key, second)
                )
        assert sorted(frozen.triples()) == sorted(writable.triples())
        assert not frozen.has_key(-1)
        assert frozen.count_for_key(-1) == 0
        assert frozen.third_count(-1, 0) == 0
        assert list(frozen.thirds(-1, 0)) == []
        assert frozen.sorted_thirds(-1, 0) == ()

    def test_thaw_round_trips(self, warm_store):
        columns = warm_store._pos.csr_columns()
        frozen = FrozenIdIndex(*map(memoryview, columns))
        thawed = frozen.thaw()
        assert isinstance(thawed, IdTripleIndex)
        assert sorted(thawed.triples()) == sorted(frozen.triples())
        for key in frozen.keys():
            assert thawed.count_for_key(key) == frozen.count_for_key(key)

    def test_mutation_promotes_and_stays_correct(self, snapshot_path, warm_store):
        cold = TripleStore.open(snapshot_path)
        fresh = Triple(EX.fresh_subject, EX.p0, Literal("fresh"))
        assert cold.add(fresh)
        assert not cold.is_frozen
        assert cold.data_version == 1
        assert fresh in cold
        assert len(cold) == len(warm_store) + 1
        victim = next(iter(warm_store))
        assert cold.remove(victim)
        assert victim not in cold
        assert len(cold) == len(warm_store)
        # Unknown-term interning went through the lazy dictionary's
        # promotion; known terms kept their snapshot IDs.
        assert cold.dictionary.is_promoted
        for term in list(warm_store.dictionary.terms()):
            assert cold.term_id(term) == warm_store.term_id(term)

    def test_bulk_load_promotes(self, snapshot_path):
        cold = TripleStore.open(snapshot_path)
        before = len(cold)
        inserted = cold.bulk_load(
            [Triple(EX[f"bulk{i}"], EX.p0, EX.o0) for i in range(10)]
        )
        assert inserted == 10
        assert len(cold) == before + 10
        assert not cold.is_frozen

    def test_noop_bulk_load_does_not_thaw(self, snapshot_path, warm_store):
        # An empty or all-duplicate batch stages and dedupes but inserts
        # nothing: the frozen columns must survive untouched.
        cold = TripleStore.open(snapshot_path)
        assert cold.bulk_load([]) == 0
        assert cold.is_frozen
        assert cold.bulk_load(list(warm_store)[:5]) == 0
        assert cold.is_frozen

    def test_sharded_resave_is_incremental(self, tmp_path, warm_store):
        sharded = ShardedTripleStore(num_shards=2, triples=iter(warm_store))
        directory = tmp_path / "shd"
        sharded.save(directory)
        gen1 = {p.name for p in directory.iterdir()}
        assert any("-g1.snap" in name for name in gen1)
        # A clean resave writes nothing at all: same files, same manifest.
        manifest_bytes = (directory / "manifest.json").read_bytes()
        sharded.save(directory)
        assert {p.name for p in directory.iterdir()} == gen1
        assert (directory / "manifest.json").read_bytes() == manifest_bytes
        # A dirty resave rewrites only the touched shard at the next
        # generation; untouched shards keep their old-generation files.
        sharded.add(Triple(EX.roll, EX.p0, EX.o0))
        sharded.save(directory)
        gen2 = {p.name for p in directory.iterdir()}
        assert any("-g2.snap" in name for name in gen2)
        assert any("-g1.snap" in name for name in gen2)
        reopened = ShardedTripleStore.open(directory)
        assert set(reopened) == set(sharded)

    def test_sharded_crashed_save_leaves_old_snapshot_openable(
        self, tmp_path, warm_store
    ):
        # Simulate a crash mid-resave: a newer-generation payload file
        # exists but the manifest was never replaced.  The old manifest
        # must keep resolving to the old generation's intact files.
        sharded = ShardedTripleStore(num_shards=2, triples=iter(warm_store))
        directory = tmp_path / "shd"
        sharded.save(directory)
        partial = directory / "shard0-g2.snap"
        partial.write_bytes(b"half-written garbage from a crashed save")
        reopened = ShardedTripleStore.open(directory)
        assert set(reopened) == set(sharded)
        # The next save that actually writes claims generation 3 (never
        # reusing the crashed generation's names) and sweeps the debris.
        sharded.add(Triple(EX.after_crash, EX.p0, EX.o0))
        sharded.save(directory)
        names = {p.name for p in directory.iterdir()}
        assert not any("-g2.snap" in name for name in names)
        assert any("-g3.snap" in name for name in names)
        assert len(ShardedTripleStore.open(directory)) == len(sharded)

    def test_empty_store_name_round_trips(self, tmp_path):
        store = TripleStore(name="", triples=[Triple(EX.a, EX.b, EX.c)])
        first, second = tmp_path / "a.snap", tmp_path / "b.snap"
        store.save(first)
        reopened = TripleStore.open(first)
        assert reopened.name == ""
        reopened.save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_duplicate_add_and_absent_remove_stay_frozen(
        self, snapshot_path, warm_store
    ):
        cold = TripleStore.open(snapshot_path)
        duplicate = next(iter(warm_store))
        assert cold.add(duplicate) is False
        assert cold.remove(Triple(EX.not_there, EX.p0, EX.o0)) is False
        assert cold.is_frozen
        assert cold.data_version == 0

    def test_resave_over_open_snapshot_is_safe(self, tmp_path):
        # Atomic replace: saving over a path another store has mmap'd
        # must neither corrupt the open store nor the file.
        path = tmp_path / "shared.snap"
        first = TripleStore(triples=[Triple(EX.a, EX.b, EX.c)])
        first.save(path)
        cold = TripleStore.open(path)
        second = TripleStore(
            triples=[Triple(EX[f"x{i}"], EX.b, EX.c) for i in range(50)]
        )
        second.save(path)
        # The already-open store still reads its original inode...
        assert len(cold) == 1
        assert Triple(EX.a, EX.b, EX.c) in cold
        # ...and a fresh open sees the replacement, fully valid.
        assert len(TripleStore.open(path)) == 50
        assert not list(tmp_path.glob("*.tmp"))

    def test_clear_on_cold_store(self, snapshot_path):
        cold = TripleStore.open(snapshot_path)
        cold.clear()
        assert len(cold) == 0
        assert cold.count() == 0
        assert list(iter(cold)) == []
        assert cold.add(Triple(EX.a, EX.b, EX.c))
        assert len(cold) == 1

    def test_lazy_dictionary_decode_and_lookup(self, snapshot_path, warm_store):
        cold = TripleStore.open(snapshot_path)
        dictionary = cold.dictionary
        assert isinstance(dictionary, LazyTermDictionary)
        assert len(dictionary) == len(warm_store.dictionary)
        # Unknown probes answer None without promotion.
        assert dictionary.id_for(EX.never_seen) is None
        assert EX.never_seen not in dictionary
        some = list(warm_store.dictionary.terms())[:10]
        for term in some:
            tid = dictionary.id_for(term)
            assert tid == warm_store.dictionary.id_for(term)
            assert dictionary.decode(tid) == term
            assert dictionary.kind(tid) == warm_store.dictionary.kind(tid)
        assert not dictionary.is_promoted
        with pytest.raises(StoreError):
            dictionary.decode(len(dictionary) + 5)
        # Non-Term probes answer None, exactly like the warm dict.get.
        assert dictionary.id_for("not a term") is None
        assert warm_store.dictionary.id_for("not a term") is None
        assert "not a term" not in dictionary

    def test_shared_kind_queries(self, snapshot_path, warm_store):
        cold = TripleStore.open(snapshot_path)
        warm_dict = warm_store.dictionary
        for tid in range(len(warm_dict)):
            assert cold.dictionary.is_literal_id(tid) == warm_dict.is_literal_id(tid)


class TestShardedColdStore:
    def test_topology_and_content(self, tmp_path, warm_store):
        sharded = ShardedTripleStore(num_shards=4, triples=iter(warm_store))
        directory = tmp_path / "shd"
        sharded.save(directory)
        cold = ShardedTripleStore.open(directory)
        assert cold.num_shards == 4
        assert cold.boundaries == sharded.boundaries
        assert cold.shard_sizes() == sharded.shard_sizes()
        assert set(cold) == set(sharded)
        assert len(cold.dictionary) == len(sharded.dictionary)
        # All shards share the one lazy dictionary instance.
        assert all(shard.dictionary is cold.dictionary for shard in cold.shards)

    def test_mutation_after_reopen(self, tmp_path, warm_store):
        sharded = ShardedTripleStore(num_shards=2, triples=iter(warm_store))
        directory = tmp_path / "shd"
        sharded.save(directory)
        cold = ShardedTripleStore.open(directory)
        fresh = Triple(EX.late_arrival, EX.p0, EX.o0)
        assert cold.add(fresh)
        assert fresh in cold
        assert len(cold) == len(sharded) + 1
        # New subject ID exceeds every frozen boundary: it must have been
        # routed to the last shard.
        assert cold.shard_sizes()[-1] == sharded.shard_sizes()[-1] + 1

    def test_single_shard_store(self, tmp_path):
        sharded = ShardedTripleStore(
            num_shards=1, triples=[Triple(EX.a, EX.b, EX.c)]
        )
        directory = tmp_path / "one"
        sharded.save(directory)
        cold = ShardedTripleStore.open(directory)
        assert len(cold) == 1 and cold.num_shards == 1

    def test_bulk_load_leaves_untouched_shards_frozen(self, tmp_path, warm_store):
        sharded = ShardedTripleStore(num_shards=4, triples=iter(warm_store))
        directory = tmp_path / "shd"
        sharded.save(directory)
        cold = ShardedTripleStore.open(directory)
        # One new-subject triple routes to the last shard: only that
        # shard may pay materialisation/promotion; the others must stay
        # frozen snapshot views.
        inserted = cold.bulk_load([Triple(EX.very_late, EX.p0, EX.o0)])
        assert inserted == 1
        assert not cold.shards[-1].is_frozen
        assert all(shard.is_frozen for shard in cold.shards[:-1])

    def test_skew_threshold_survives_round_trip(self, tmp_path):
        sharded = ShardedTripleStore(
            num_shards=2,
            triples=[Triple(EX[f"s{i}"], EX.p, EX.o) for i in range(8)],
            skew_threshold=9.0,
        )
        directory = tmp_path / "shd"
        sharded.save(directory)
        assert ShardedTripleStore.open(directory).skew_threshold == 9.0


class TestEmptyAndKnowledgeBase:
    def test_empty_store_round_trip(self, tmp_path):
        path = tmp_path / "empty.snap"
        TripleStore(name="empty").save(path)
        cold = TripleStore.open(path)
        assert len(cold) == 0
        assert cold.count() == 0
        assert list(cold.match()) == []
        second = tmp_path / "empty2.snap"
        cold.save(second)
        assert path.read_bytes() == second.read_bytes()

    def test_knowledge_base_round_trip(self, tmp_path):
        kb = KnowledgeBase("persistkb", EX)
        kb.add_triples(_mixed_triples())
        directory = tmp_path / "kb"
        kb.save(directory)
        reopened = KnowledgeBase.open(directory)
        assert reopened.name == kb.name
        assert reopened.namespace == kb.namespace
        assert len(reopened) == len(kb)
        assert sorted(i.iri.value for i in reopened.relations()) == sorted(
            i.iri.value for i in kb.relations()
        )
        # A cold KB serves queries through its endpoint immediately.
        client_result = reopened.endpoint().select(
            "SELECT (COUNT(*) AS ?c) WHERE { ?s <http://persist.test/age> ?o }"
        )
        expected = kb.store.count(predicate=EX.age)
        counted = client_result.rows[0].get_term(client_result.variables[0])
        assert counted.to_python() == expected

    def test_sharded_knowledge_base_round_trip(self, tmp_path):
        store = ShardedTripleStore(num_shards=3, triples=_mixed_triples())
        kb = KnowledgeBase("shardkb", EX, store=store)
        directory = tmp_path / "kb"
        kb.save(directory)
        reopened = KnowledgeBase.open(directory)
        assert isinstance(reopened.store, ShardedTripleStore)
        assert reopened.store.num_shards == 3
        assert len(reopened) == len(kb)

    def test_kb_metadata_corruption(self, tmp_path):
        kb = KnowledgeBase("persistkb", EX)
        kb.add_fact(EX.a, EX.b, EX.c)
        directory = tmp_path / "kb"
        kb.save(directory)
        (directory / "kb.json").write_text("][")
        with pytest.raises(SnapshotCorruptError):
            KnowledgeBase.open(directory)
        # Valid JSON missing required keys is corruption too, not KeyError.
        (directory / "kb.json").write_text(
            json.dumps({"format": "repro-kb", "version": 1})
        )
        with pytest.raises(SnapshotCorruptError):
            KnowledgeBase.open(directory)
