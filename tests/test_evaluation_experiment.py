"""Tests for the experiment runner (integration-level, small worlds)."""

import pytest

from repro.align.config import AlignmentConfig
from repro.evaluation.experiment import AlignmentExperiment, run_table1_experiment


class TestAlignmentExperiment:
    def test_query_relations_include_gold_and_distractors(self, movie_world):
        experiment = AlignmentExperiment(movie_world, distractor_relations=0)
        relations = experiment.query_relations("imdb", "filmdb")
        names = {relation.local_name for relation in relations}
        assert {"directedBy", "producedBy", "title"} <= names

    def test_max_query_relations_cap(self, movie_world):
        experiment = AlignmentExperiment(movie_world, max_query_relations=1)
        assert len(experiment.query_relations("imdb", "filmdb")) == 1

    def test_run_direction_and_evaluate(self, movie_world):
        experiment = AlignmentExperiment(movie_world, distractor_relations=0)
        result = experiment.run_direction("imdb", "filmdb", AlignmentConfig.paper_ubs())
        evaluation = experiment.evaluate_direction("imdb", "filmdb", result)
        assert evaluation.direction == "imdb ⊂ filmdb"
        assert evaluation.precision == 1.0
        assert evaluation.metrics.recall == 1.0

    def test_baseline_is_fooled_but_ubs_is_not(self, movie_world):
        experiment = AlignmentExperiment(movie_world, distractor_relations=0)
        baseline = experiment.run_direction("imdb", "filmdb", AlignmentConfig.paper_pca_baseline())
        ubs = experiment.run_direction("imdb", "filmdb", AlignmentConfig.paper_ubs())
        baseline_eval = experiment.evaluate_direction("imdb", "filmdb", baseline)
        ubs_eval = experiment.evaluate_direction("imdb", "filmdb", ubs)
        assert ubs_eval.precision > baseline_eval.precision

    def test_gold_pairs_nonempty(self, movie_world):
        experiment = AlignmentExperiment(movie_world)
        assert len(experiment.gold_pairs("imdb", "filmdb")) == 3

    def test_run_method_selects_threshold(self, movie_world):
        experiment = AlignmentExperiment(movie_world, distractor_relations=0)
        method = experiment.run_method("ubs", AlignmentConfig.paper_ubs(), select_threshold=True)
        assert set(method.directions) == {"imdb ⊂ filmdb", "filmdb ⊂ imdb"}
        assert 0.0 <= method.threshold <= 1.0
        assert method.average_f1() > 0.5


class TestTable1Report:
    @pytest.fixture(scope="class")
    def report(self, request):
        movie_world = request.getfixturevalue("movie_world")
        return run_table1_experiment(
            movie_world, sample_size=10, distractor_relations=0, select_threshold=False
        )

    def test_three_methods_reported(self, report):
        assert [method.method for method in report.methods] == ["pca", "cwa", "ubs"]

    def test_fixed_thresholds_match_paper(self, report):
        assert report.method("pca").threshold == pytest.approx(0.3)
        assert report.method("cwa").threshold == pytest.approx(0.1)
        assert report.method("ubs").threshold == pytest.approx(0.3)

    def test_ubs_dominates_baselines_in_precision(self, report):
        directions = list(report.method("ubs").directions)
        for direction in directions:
            ubs_precision = report.method("ubs").directions[direction].precision
            pca_precision = report.method("pca").directions[direction].precision
            assert ubs_precision >= pca_precision

    def test_table_rendering_shape(self, report):
        text = report.to_table().render()
        assert "Table 1" in text
        assert "P (" in text and "F1 (" in text
        assert "ubs" in text

    def test_unknown_method_lookup(self, report):
        with pytest.raises(KeyError):
            report.method("nope")
