"""Unit tests for the YAGO-like / DBpedia-like preset."""

import pytest

from repro.errors import SyntheticDataError
from repro.synthetic.generator import generate_world
from repro.synthetic.presets import FAMILY_PATTERNS, yago_dbpedia_spec


class TestSpecShape:
    def test_relation_counts_match_paper(self):
        spec = yago_dbpedia_spec(families=10, yago_relation_count=92, dbpedia_relation_count=200)
        assert len(spec.kb("yago").mappings) == 92
        assert len(spec.kb("dbpedia").mappings) == 200

    def test_default_counts_are_papers(self):
        spec = yago_dbpedia_spec()
        assert len(spec.kb("yago").mappings) == 92
        assert len(spec.kb("dbpedia").mappings) == 1313

    def test_all_patterns_represented(self):
        spec = yago_dbpedia_spec(families=len(FAMILY_PATTERNS))
        names = " ".join(m.name for m in spec.kb("yago").mappings)
        for pattern in FAMILY_PATTERNS:
            assert pattern in names

    def test_too_few_families_rejected(self):
        with pytest.raises(SyntheticDataError):
            yago_dbpedia_spec(families=2)

    def test_relation_count_below_aligned_count_rejected(self):
        with pytest.raises(SyntheticDataError):
            yago_dbpedia_spec(families=20, yago_relation_count=5)

    def test_gold_contains_all_three_kinds(self):
        spec = yago_dbpedia_spec(families=10, yago_relation_count=40, dbpedia_relation_count=60)
        truth = spec.ground_truth()
        pairs = truth.subsumption_pairs("yago", "dbpedia")
        names = {(p.local_name, c.local_name) for p, c in pairs}
        assert any("equivalent" in p for p, _ in names)
        assert any("subsumption" in p for p, _ in names)
        assert any("trap" in p for p, _ in names)

    def test_trap_relations_not_in_gold(self):
        spec = yago_dbpedia_spec(families=10, yago_relation_count=40, dbpedia_relation_count=60)
        truth = spec.ground_truth()
        pairs = truth.subsumption_pairs("yago", "dbpedia")
        assert not any(
            p.local_name.endswith("_corr") and c.local_name.endswith(("_true",))
            for p, c in pairs
        ) and not any(
            p.local_name.endswith("_shadow") for p, _ in pairs
        )


class TestGeneratedPresetWorld:
    def test_generated_world_statistics(self, small_yago_dbpedia_world):
        world = small_yago_dbpedia_world
        yago, dbpedia = world.kb_pair()
        assert yago.relation_count() == 30
        assert dbpedia.relation_count() == 60
        assert len(world.ground_truth) > 10
        assert world.links.class_count() > 50

    def test_gold_relations_have_facts(self, small_yago_dbpedia_world):
        world = small_yago_dbpedia_world
        truth = world.ground_truth
        yago = world.kb("yago")
        for premise, _ in truth.subsumption_pairs("yago", "dbpedia"):
            assert yago.store.count(predicate=premise) > 0

    def test_literal_relations_present(self, small_yago_dbpedia_world):
        world = small_yago_dbpedia_world
        yago = world.kb("yago")
        literal_relations = [
            info for info in yago.relations() if info.is_literal_valued and "literal" in info.name
        ]
        assert literal_relations
