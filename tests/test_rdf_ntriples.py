"""Unit tests for the N-Triples reader/writer."""

import io

import pytest

from repro.errors import ParseError
from repro.rdf.ntriples import (
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
    term_to_ntriples,
)
from repro.rdf.terms import IRI, BlankNode, Literal
from repro.rdf.triple import Triple

S = IRI("http://example.org/s")
P = IRI("http://example.org/p")
O = IRI("http://example.org/o")


class TestTermSerialisation:
    def test_iri(self):
        assert term_to_ntriples(S) == "<http://example.org/s>"

    def test_blank_node(self):
        assert term_to_ntriples(BlankNode("b1")) == "_:b1"

    def test_plain_literal(self):
        assert term_to_ntriples(Literal("hello")) == '"hello"'

    def test_language_literal(self):
        assert term_to_ntriples(Literal("hello", language="en")) == '"hello"@en'

    def test_datatyped_literal(self):
        rendered = term_to_ntriples(Literal(5))
        assert rendered == '"5"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_string_escaping(self):
        rendered = term_to_ntriples(Literal('say "hi"\nplease\t!'))
        assert rendered == '"say \\"hi\\"\\nplease\\t!"'


class TestLineParsing:
    def test_simple_triple(self):
        triple = parse_ntriples_line(
            "<http://example.org/s> <http://example.org/p> <http://example.org/o> ."
        )
        assert triple == Triple(S, P, O)

    def test_literal_object(self):
        triple = parse_ntriples_line(f"{term_to_ntriples(S)} {term_to_ntriples(P)} \"x y\" .")
        assert triple.object == Literal("x y")

    def test_language_tagged_literal(self):
        triple = parse_ntriples_line(
            f'{term_to_ntriples(S)} {term_to_ntriples(P)} "ciao"@it .'
        )
        assert triple.object == Literal("ciao", language="it")

    def test_datatyped_literal(self):
        triple = parse_ntriples_line(
            f'{term_to_ntriples(S)} {term_to_ntriples(P)} '
            '"7"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert triple.object == Literal("7", datatype="http://www.w3.org/2001/XMLSchema#integer")

    def test_blank_node_subject(self):
        triple = parse_ntriples_line(f"_:b0 {term_to_ntriples(P)} {term_to_ntriples(O)} .")
        assert triple.subject == BlankNode("b0")

    def test_escaped_quotes_in_literal(self):
        triple = parse_ntriples_line(
            f'{term_to_ntriples(S)} {term_to_ntriples(P)} "say \\"hi\\"" .'
        )
        assert triple.object == Literal('say "hi"')

    def test_unicode_escape(self):
        triple = parse_ntriples_line(
            f'{term_to_ntriples(S)} {term_to_ntriples(P)} "caf\\u00e9" .'
        )
        assert triple.object == Literal("café")

    def test_comment_line_returns_none(self):
        assert parse_ntriples_line("# a comment") is None

    def test_blank_line_returns_none(self):
        assert parse_ntriples_line("   ") is None

    def test_missing_dot_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples_line(f"{term_to_ntriples(S)} {term_to_ntriples(P)} {term_to_ntriples(O)}")

    def test_literal_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples_line(f'{term_to_ntriples(S)} "p" {term_to_ntriples(O)} .')

    def test_literal_subject_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples_line(f'"s" {term_to_ntriples(P)} {term_to_ntriples(O)} .')

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples_line(
                f"{term_to_ntriples(S)} {term_to_ntriples(P)} {term_to_ntriples(O)} . extra"
            )

    def test_unterminated_iri_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("<http://example.org/s <p> <o> .")

    def test_parse_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_ntriples_line("<http://example.org/s> oops .", line_number=7)
        assert excinfo.value.line == 7


class TestDocumentRoundTrip:
    def _sample_triples(self):
        return [
            Triple(S, P, O),
            Triple(S, P, Literal("plain")),
            Triple(S, P, Literal("tagged", language="en")),
            Triple(S, P, Literal(42)),
            Triple(BlankNode("x"), P, Literal('with "quotes" and \n newline')),
        ]

    def test_round_trip(self):
        triples = self._sample_triples()
        document = serialize_ntriples(triples)
        assert list(parse_ntriples(document)) == triples

    def test_serialize_to_stream(self):
        buffer = io.StringIO()
        serialize_ntriples(self._sample_triples(), out=buffer)
        assert buffer.getvalue().count("\n") == 5

    def test_parse_skips_comments_and_blanks(self):
        document = "# header\n\n" + serialize_ntriples([Triple(S, P, O)])
        assert len(list(parse_ntriples(document))) == 1

    def test_parse_accepts_iterable_of_lines(self):
        document = serialize_ntriples(self._sample_triples())
        assert len(list(parse_ntriples(document.splitlines()))) == 5

    def test_empty_document(self):
        assert serialize_ntriples([]) == ""
        assert list(parse_ntriples("")) == []
