"""SPARQL results serialisation: JSON/TSV documents and scalar parsing."""

from __future__ import annotations

import json

import pytest

from repro.errors import SparqlError
from repro.rdf.terms import IRI, XSD_INTEGER, BlankNode, Literal
from repro.sparql.bindings import Binding, Variable
from repro.sparql.results import AskResult, ResultSet
from repro.sparql.serialize import (
    content_type_for,
    from_sparql_json,
    serialize,
    term_from_json,
    term_to_json,
    to_sparql_json,
    to_sparql_tsv,
)

A, B = Variable("a"), Variable("b")


def _result() -> ResultSet:
    rows = [
        Binding({A: IRI("http://x.test/s"), B: Literal("plain")}),
        Binding({A: BlankNode("node7"), B: Literal("bonjour", language="fr")}),
        Binding({A: IRI("http://x.test/t")}),  # ?b unbound
        Binding({A: Literal(42), B: Literal("tab\there")}),
    ]
    return ResultSet([A, B], rows)


class TestTermJson:
    @pytest.mark.parametrize(
        "term,expected",
        [
            (IRI("http://x.test/s"), {"type": "uri", "value": "http://x.test/s"}),
            (BlankNode("b1"), {"type": "bnode", "value": "b1"}),
            (Literal("v"), {"type": "literal", "value": "v"}),
            (
                Literal("chat", language="fr"),
                {"type": "literal", "value": "chat", "xml:lang": "fr"},
            ),
            (
                Literal(5),
                {
                    "type": "literal",
                    "value": "5",
                    "datatype": XSD_INTEGER,
                },
            ),
        ],
    )
    def test_roundtrip(self, term, expected):
        obj = term_to_json(term)
        assert obj == expected
        assert term_from_json(obj) == term

    def test_legacy_typed_literal_alias(self):
        term = term_from_json(
            {"type": "typed-literal", "value": "5", "datatype": XSD_INTEGER}
        )
        assert term == Literal(5)

    def test_malformed_objects_rejected(self):
        with pytest.raises(SparqlError):
            term_from_json({"type": "uri"})
        with pytest.raises(SparqlError):
            term_from_json({"type": "triple", "value": "x"})


class TestJsonDocuments:
    def test_select_document_shape(self):
        document = json.loads(to_sparql_json(_result()))
        assert document["head"]["vars"] == ["a", "b"]
        bindings = document["results"]["bindings"]
        assert len(bindings) == 4
        assert "b" not in bindings[2]  # unbound variables are omitted

    def test_roundtrip_preserves_solutions(self):
        result = _result()
        parsed = from_sparql_json(to_sparql_json(result))
        assert parsed.variables == result.variables
        assert [dict(row.items()) for row in parsed] == [
            dict(row.items()) for row in result
        ]

    def test_deterministic_bytes(self):
        assert to_sparql_json(_result()) == to_sparql_json(_result())

    def test_ask_document(self):
        assert json.loads(to_sparql_json(AskResult(True))) == {
            "head": {},
            "boolean": True,
        }
        assert from_sparql_json(to_sparql_json(AskResult(False))) == AskResult(False)

    def test_malformed_documents_rejected(self):
        for text in ("not json", "[]", '{"head":{}}'):
            with pytest.raises(SparqlError):
                from_sparql_json(text)


class TestTsvDocuments:
    def test_tsv_shape(self):
        lines = to_sparql_tsv(_result()).split("\n")
        assert lines[0] == "?a\t?b"
        assert lines[1] == '<http://x.test/s>\t"plain"'
        assert lines[2] == '_:node7\t"bonjour"@fr'
        assert lines[3] == "<http://x.test/t>\t"  # unbound -> empty cell
        assert lines[-1] == ""  # trailing newline

    def test_tab_in_literal_is_escaped(self):
        # N-Triples escaping keeps the cell free of raw delimiters.
        row = to_sparql_tsv(_result()).split("\n")[4]
        assert row.count("\t") == 1
        assert "\\t" in row

    def test_ask_has_no_tsv_form(self):
        with pytest.raises(SparqlError):
            to_sparql_tsv(AskResult(True))

    def test_serialize_dispatch(self):
        assert serialize(_result(), "tsv").startswith("?a\t?b")
        assert serialize(AskResult(True), "tsv").startswith('{"head"')
        assert content_type_for("json") == "application/sparql-results+json"
        assert content_type_for("tsv") == "text/tab-separated-values"
        with pytest.raises(SparqlError):
            serialize(_result(), "xml")


class TestScalarInt:
    """The COUNT-reading path: exact integers, junk handled, no crashes."""

    def _scalar(self, literal) -> ResultSet:
        variable = Variable("c")
        return ResultSet([variable], [Binding({variable: literal})])

    def test_plain_integer(self):
        assert self._scalar(Literal(17)).scalar_int() == 17

    def test_huge_integer_is_exact(self):
        # Counts past 2**53 must not round through float.
        value = 2**60 + 1
        assert self._scalar(Literal(str(value))).scalar_int() == value

    def test_float_lexical(self):
        assert self._scalar(Literal("3.0")).scalar_int() == 3

    @pytest.mark.parametrize("lexical", ["INF", "-INF", "NaN", "bogus", ""])
    def test_non_finite_and_junk_default(self, lexical):
        # "INF" used to escape as an uncaught OverflowError from
        # int(float("INF")); every unusable lexical yields the default.
        assert self._scalar(Literal(lexical)).scalar_int() == 0
        assert self._scalar(Literal(lexical)).scalar_int(default=-1) == -1

    def test_non_literal_and_empty_default(self):
        variable = Variable("c")
        assert ResultSet([variable], []).scalar_int(default=5) == 5
        assert self._scalar(IRI("http://x.test/s")).scalar_int() == 0
