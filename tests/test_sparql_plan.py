"""Tests for the cardinality-driven BGP planner and its join operators."""

import pytest

from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.sparql.ast import TriplePatternNode
from repro.sparql.bindings import Variable
from repro.sparql.evaluate import QueryEvaluator, evaluate_query
from repro.sparql.plan import CardinalityEstimator, plan_bgp
from repro.store.triplestore import TripleStore

EX = Namespace("http://plan.test/")

S = Variable("s")
X = Variable("x")
Y = Variable("y")


def skewed_store() -> TripleStore:
    """A store with one big, one mid and one tiny predicate.

    * ``big``: 120 facts over 60 subjects (fan-out 2)
    * ``mid``: 20 facts over 20 subjects (all also big-subjects)
    * ``tiny``: 4 facts over 4 subjects (all also big- and mid-subjects)
    """
    store = TripleStore()
    for index in range(60):
        store.add(Triple(EX[f"e{index}"], EX.big, EX[f"v{index}"]))
        store.add(Triple(EX[f"e{index}"], EX.big, EX[f"u{index}"]))
    for index in range(20):
        store.add(Triple(EX[f"e{index}"], EX.mid, EX[f"w{index}"]))
    for index in range(4):
        store.add(Triple(EX[f"e{index}"], EX.tiny, EX[f"t{index}"]))
    return store


class TestPlanOrdering:
    def test_most_selective_pattern_runs_first_despite_text_order(self):
        store = skewed_store()
        patterns = [
            TriplePatternNode(S, EX.big, X),
            TriplePatternNode(S, EX.mid, Y),
            TriplePatternNode(S, EX.tiny, Variable("t")),
        ]
        plan = plan_bgp(store, patterns)
        ordered_predicates = [step.pattern.predicate for step in plan.steps]
        assert ordered_predicates == [EX.tiny, EX.mid, EX.big]
        assert plan.operators()[0] == "scan"

    def test_constant_count_alone_does_not_decide(self):
        # Both patterns have one constant; the planner must order by size.
        store = skewed_store()
        patterns = [
            TriplePatternNode(S, EX.big, X),
            TriplePatternNode(S, EX.tiny, Y),
        ]
        plan = plan_bgp(store, patterns)
        assert plan.steps[0].pattern.predicate == EX.tiny

    def test_unknown_constant_estimates_zero_and_runs_first(self):
        store = skewed_store()
        estimator = CardinalityEstimator(store)
        ghost = TriplePatternNode(S, EX.never_seen, X)
        assert estimator.pattern_estimate(ghost, set()) == 0.0
        plan = plan_bgp(store, [TriplePatternNode(S, EX.big, X), ghost])
        assert plan.steps[0].pattern is ghost

    def test_disconnected_pattern_deferred_to_last(self):
        store = skewed_store()
        disconnected = TriplePatternNode(Variable("a"), EX.mid, Variable("b"))
        patterns = [
            disconnected,
            TriplePatternNode(S, EX.tiny, Variable("t")),
            TriplePatternNode(S, EX.big, X),
        ]
        plan = plan_bgp(store, patterns)
        assert plan.steps[-1].pattern is disconnected
        assert plan.steps[-1].operator == "hash"
        assert plan.steps[-1].join_variables == ()


class TestOperatorSelection:
    def test_merge_join_on_sorted_run_compatible_bgp(self):
        # ?s tiny t0 . ?s big v0 — both two-constant patterns over the same
        # variable: the first scan streams ?s in sorted ID order, so the
        # second side can sort-merge against its subject run.
        store = skewed_store()
        patterns = [
            TriplePatternNode(S, EX.tiny, EX.t0),
            TriplePatternNode(S, EX.big, EX.v0),
        ]
        plan = plan_bgp(store, patterns)
        assert plan.operators() == ["scan", "merge"]
        assert plan.steps[1].merge_variable == S

    def test_merge_survives_an_intermediate_left_streaming_join(self):
        # The middle pattern binds a new variable via a nested/hash join;
        # left-streaming joins preserve the ?s order, so the third pattern
        # can still merge.
        store = skewed_store()
        patterns = [
            TriplePatternNode(S, EX.tiny, EX.t0),
            TriplePatternNode(S, EX.mid, Y),
            TriplePatternNode(S, EX.big, EX.v0),
        ]
        plan = plan_bgp(store, patterns)
        assert plan.operators()[0] == "scan"
        assert plan.operators()[2] == "merge"

    def test_nested_join_for_selective_probe(self):
        # After scanning tiny (4 rows) the stream is smaller than mid's 20
        # facts, so probing the index per solution beats building a table.
        store = skewed_store()
        patterns = [
            TriplePatternNode(S, EX.tiny, Variable("t")),
            TriplePatternNode(S, EX.mid, Y),
        ]
        plan = plan_bgp(store, patterns)
        assert plan.operators() == ["scan", "nested"]
        assert plan.steps[1].join_variables == (S,)

    def test_hash_join_when_stream_larger_than_build(self):
        # t (5 rows) scans first, f fans the stream out to ~500 rows, and
        # only then is g (50 facts) joined: 500 probes against a 50-entry
        # build side, so the planner picks the hash operator for g.
        store = TripleStore()
        for i in range(5):
            store.add(Triple(EX[f"s{i}"], EX.t, EX[f"a{i}"]))
            for j in range(100):
                store.add(Triple(EX[f"s{i}"], EX.f, EX[f"x{j}"]))
        for j in range(50):
            store.add(Triple(EX[f"x{j}"], EX.g, EX[f"c{j}"]))
        patterns = [
            TriplePatternNode(S, EX.t, Variable("a")),
            TriplePatternNode(S, EX.f, X),
            TriplePatternNode(X, EX.g, Variable("c")),
        ]
        plan = plan_bgp(store, patterns)
        assert [step.pattern.predicate for step in plan.steps] == [EX.t, EX.f, EX.g]
        assert plan.steps[1].operator == "nested"
        assert plan.steps[2].operator == "hash"
        assert plan.steps[2].join_variables == (X,)

    def test_values_input_disables_merge_sortedness(self):
        # With a fanned-out input stream the first scan's output is only
        # block-sorted, so merge must not be chosen.
        store = skewed_store()
        patterns = [
            TriplePatternNode(S, EX.tiny, EX.t0),
            TriplePatternNode(S, EX.big, EX.v0),
        ]
        plan = plan_bgp(store, patterns, single_input=False)
        assert "merge" not in plan.operators()


class TestEvaluatorIntegration:
    def test_explain_exposes_the_executed_plan(self):
        store = skewed_store()
        evaluator = QueryEvaluator(store)
        query = (
            f"SELECT ?s WHERE {{ ?s <{EX.big.value}> ?x . "
            f"?s <{EX.tiny.value}> ?t }}"
        )
        plan = evaluator.explain(query)
        assert plan.steps[0].pattern.predicate == EX.tiny
        # The cached plan is reused for the identical group.
        assert evaluator.explain(query) is plan

    def test_plan_cache_invalidated_when_store_changes(self):
        store = skewed_store()
        evaluator = QueryEvaluator(store)
        query = f"SELECT ?s WHERE {{ ?s <{EX.big.value}> ?x }}"
        first = evaluator.explain(query)
        store.add(Triple(EX.extra, EX.big, EX.value))
        assert evaluator.explain(query) is not first

    def test_merge_plan_returns_same_rows_as_naive(self):
        store = skewed_store()
        query = (
            f"SELECT ?s WHERE {{ ?s <{EX.tiny.value}> <{EX.t0.value}> . "
            f"?s <{EX.big.value}> <{EX.v0.value}> }}"
        )
        planner_rows = sorted(map(str, QueryEvaluator(store).evaluate(query).column("s")))
        naive_rows = sorted(
            map(str, QueryEvaluator(store, use_planner=False).evaluate(query).column("s"))
        )
        assert planner_rows == naive_rows
        assert planner_rows == [str(EX.e0)]

    def test_three_pattern_join_matches_naive(self):
        store = skewed_store()
        query = (
            f"SELECT ?s ?x ?y WHERE {{ ?s <{EX.big.value}> ?x . "
            f"?s <{EX.mid.value}> ?y . ?s <{EX.tiny.value}> ?t }}"
        )
        planned = QueryEvaluator(store).evaluate(query)
        naive = QueryEvaluator(store, use_planner=False).evaluate(query)
        assert sorted(map(repr, planned)) == sorted(map(repr, naive))
        assert len(planned) == 8

    def test_disconnected_product_matches_naive(self):
        store = skewed_store()
        query = (
            f"SELECT ?s ?a WHERE {{ ?s <{EX.tiny.value}> ?t . "
            f"?a <{EX.mid.value}> ?m }}"
        )
        planned = QueryEvaluator(store).evaluate(query)
        naive = QueryEvaluator(store, use_planner=False).evaluate(query)
        assert sorted(map(repr, planned)) == sorted(map(repr, naive))
        assert len(planned) == 4 * 20

    def test_ask_and_limit_short_circuit_still_work(self):
        store = skewed_store()
        ask = (
            f"ASK {{ ?s <{EX.tiny.value}> ?t . ?s <{EX.big.value}> ?x }}"
        )
        assert bool(evaluate_query(store, ask)) is True
        limited = evaluate_query(
            store,
            f"SELECT ?s WHERE {{ ?s <{EX.big.value}> ?x . "
            f"?s <{EX.mid.value}> ?y }} LIMIT 3",
        )
        assert len(limited) == 3

    def test_values_with_undef_rows_matches_naive(self):
        # A VALUES variable left UNDEF in some rows is only bound in some
        # solutions; the planner must not claim it bound (a hash join
        # keyed on it would silently drop the unbound-row solutions).
        store = TripleStore()
        for i in range(5):
            store.add(Triple(EX[f"h{i}"], EX.p1, EX[f"hx{i}"]))
            for j in range(60):
                store.add(Triple(EX[f"h{i}"], EX.p2, EX[f"hy{j}"]))
        for j in range(20):
            store.add(Triple(EX[f"z{j}"], EX.p3, EX[f"hy{j}"]))
        query = (
            f"SELECT ?s ?o WHERE {{ VALUES ?o {{ UNDEF <{EX.hy0.value}> }} "
            f"?s <{EX.p1.value}> ?x . ?s <{EX.p2.value}> ?y . "
            f"?z <{EX.p3.value}> ?o }}"
        )
        planned = QueryEvaluator(store).evaluate(query)
        naive = QueryEvaluator(store, use_planner=False).evaluate(query)
        assert sorted(map(repr, planned)) == sorted(map(repr, naive))

    def test_values_query_with_planner_matches_naive(self):
        store = skewed_store()
        query = (
            f"SELECT ?s ?x WHERE {{ VALUES ?s {{ <{EX.e0.value}> <{EX.e1.value}> }} "
            f"?s <{EX.big.value}> ?x . ?s <{EX.mid.value}> ?y }}"
        )
        planned = QueryEvaluator(store).evaluate(query)
        naive = QueryEvaluator(store, use_planner=False).evaluate(query)
        assert sorted(map(repr, planned)) == sorted(map(repr, naive))
        assert len(planned) == 4


class TestPlanContextLifecycle:
    def test_plan_context_does_not_keep_stores_alive(self):
        import gc
        import weakref

        from repro.sparql import plan as plan_module

        store = skewed_store()
        QueryEvaluator(store).evaluate(
            f"SELECT ?s WHERE {{ ?s <{EX.big.value}> ?x . ?s <{EX.mid.value}> ?y }}"
        )
        assert store in plan_module._CONTEXTS
        ref = weakref.ref(store)
        del store
        gc.collect()
        assert ref() is None, "plan context must not pin the store"


class TestCardinalityEstimates:
    def test_constant_pattern_counts_are_exact(self):
        store = skewed_store()
        estimator = CardinalityEstimator(store)
        assert estimator.pattern_estimate(TriplePatternNode(S, EX.big, X), set()) == 120.0
        assert estimator.pattern_estimate(TriplePatternNode(S, EX.tiny, X), set()) == 4.0

    def test_bound_variable_divides_by_distinct_count(self):
        store = skewed_store()
        estimator = CardinalityEstimator(store)
        # 120 big facts over 60 distinct subjects -> 2 expected per subject.
        estimate = estimator.pattern_estimate(TriplePatternNode(S, EX.big, X), {S})
        assert estimate == pytest.approx(2.0)

    def test_estimates_cached_per_estimator(self):
        store = skewed_store()
        estimator = CardinalityEstimator(store)
        pattern = TriplePatternNode(S, EX.big, X)
        estimator.pattern_estimate(pattern, {S})
        assert ("s", None, store.term_id(EX.big), None) in estimator._distinct_cache
