"""Unit tests for the SPARQL parser."""

import pytest

from repro.errors import ParseError, SparqlError
from repro.rdf.namespace import RDF, YAGO
from repro.rdf.terms import IRI, Literal
from repro.sparql.ast import (
    AskQuery,
    BinaryExpression,
    CountExpression,
    ExistsExpression,
    FilterNode,
    FunctionCall,
    GroupGraphPattern,
    InExpression,
    OptionalNode,
    SelectQuery,
    TriplePatternNode,
    UnionNode,
    ValuesNode,
)
from repro.sparql.bindings import Variable
from repro.sparql.parser import parse_query


class TestSelectClause:
    def test_select_variables(self):
        query = parse_query("SELECT ?s ?o WHERE { ?s ?p ?o }")
        assert isinstance(query, SelectQuery)
        assert [item.output_variable.name for item in query.projection] == ["s", "o"]
        assert not query.distinct

    def test_select_star(self):
        query = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert query.select_all

    def test_select_distinct(self):
        query = parse_query("SELECT DISTINCT ?s WHERE { ?s ?p ?o }")
        assert query.distinct

    def test_count_star_alias(self):
        query = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }")
        item = query.projection[0]
        assert isinstance(item.expression, CountExpression)
        assert item.expression.counts_all
        assert item.output_variable == Variable("c")
        assert query.is_aggregate

    def test_count_distinct_variable(self):
        query = parse_query("SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?o }")
        expression = query.projection[0].expression
        assert isinstance(expression, CountExpression)
        assert expression.distinct
        assert expression.variable == Variable("s")

    def test_missing_projection_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT WHERE { ?s ?p ?o }")

    def test_where_keyword_optional(self):
        query = parse_query("SELECT ?s { ?s ?p ?o }")
        assert isinstance(query, SelectQuery)

    def test_ask_query(self):
        query = parse_query("ASK { ?s ?p ?o }")
        assert isinstance(query, AskQuery)

    def test_unknown_query_form_rejected(self):
        with pytest.raises(ParseError):
            parse_query("CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }")

    def test_empty_query_rejected(self):
        with pytest.raises(SparqlError):
            parse_query("   ")


class TestPrologue:
    def test_prefix_declaration_used(self):
        query = parse_query(
            "PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p ex:o }"
        )
        pattern = query.where.triple_patterns()[0]
        assert pattern.predicate == IRI("http://example.org/p")

    def test_default_prefixes_available(self):
        query = parse_query("SELECT ?s WHERE { ?s yago:wasBornIn ?o }")
        assert query.where.triple_patterns()[0].predicate == YAGO.wasBornIn

    def test_unknown_prefix_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?s WHERE { ?s nope:p ?o }")


class TestTriplesBlock:
    def test_object_list(self):
        query = parse_query("SELECT ?s WHERE { ?s yago:knows yago:A, yago:B }")
        patterns = query.where.triple_patterns()
        assert len(patterns) == 2
        assert {p.object for p in patterns} == {YAGO.A, YAGO.B}

    def test_predicate_object_list(self):
        query = parse_query("SELECT ?s WHERE { ?s yago:p yago:A ; yago:q ?x }")
        predicates = [p.predicate for p in query.where.triple_patterns()]
        assert predicates == [YAGO.p, YAGO.q]

    def test_a_keyword_is_rdf_type(self):
        query = parse_query("SELECT ?s WHERE { ?s a yago:Person }")
        assert query.where.triple_patterns()[0].predicate == RDF.type

    def test_literal_objects(self):
        query = parse_query('SELECT ?s WHERE { ?s yago:name "Frank" }')
        assert query.where.triple_patterns()[0].object == Literal("Frank")

    def test_numeric_literal_object(self):
        query = parse_query("SELECT ?s WHERE { ?s yago:age 42 }")
        obj = query.where.triple_patterns()[0].object
        assert isinstance(obj, Literal) and obj.to_python() == 42

    def test_boolean_literal_object(self):
        query = parse_query("SELECT ?s WHERE { ?s yago:alive true }")
        obj = query.where.triple_patterns()[0].object
        assert obj.to_python() is True

    def test_literal_subject_rejected(self):
        with pytest.raises(ParseError):
            parse_query('SELECT ?s WHERE { "x" yago:p ?o }')

    def test_multiple_statements_with_dots(self):
        query = parse_query("SELECT ?s WHERE { ?s yago:p ?o . ?o yago:q ?z . }")
        assert len(query.where.triple_patterns()) == 2


class TestGroupPatterns:
    def test_optional(self):
        query = parse_query("SELECT ?s WHERE { ?s yago:p ?o OPTIONAL { ?s yago:q ?z } }")
        optionals = [e for e in query.where.elements if isinstance(e, OptionalNode)]
        assert len(optionals) == 1
        assert len(optionals[0].group.triple_patterns()) == 1

    def test_union(self):
        query = parse_query(
            "SELECT ?x WHERE { { ?x yago:p ?o } UNION { ?x yago:q ?o } UNION { ?x yago:r ?o } }"
        )
        unions = [e for e in query.where.elements if isinstance(e, UnionNode)]
        assert len(unions) == 1
        assert len(unions[0].branches) == 3

    def test_nested_group_without_union(self):
        query = parse_query("SELECT ?x WHERE { { ?x yago:p ?o } }")
        assert any(isinstance(e, GroupGraphPattern) for e in query.where.elements)

    def test_filter_with_comparison(self):
        query = parse_query("SELECT ?x WHERE { ?x yago:age ?a FILTER(?a > 18) }")
        filters = [e for e in query.where.elements if isinstance(e, FilterNode)]
        assert len(filters) == 1
        assert isinstance(filters[0].expression, BinaryExpression)

    def test_filter_builtin_without_parentheses(self):
        query = parse_query('SELECT ?x WHERE { ?x yago:name ?n FILTER REGEX(?n, "a") }')
        expression = [e for e in query.where.elements if isinstance(e, FilterNode)][0].expression
        assert isinstance(expression, FunctionCall)
        assert expression.name == "REGEX"

    def test_filter_not_exists(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x yago:p ?o FILTER NOT EXISTS { ?x yago:q ?o } }"
        )
        expression = [e for e in query.where.elements if isinstance(e, FilterNode)][0].expression
        assert isinstance(expression, ExistsExpression)
        assert expression.negated

    def test_filter_in_list(self):
        query = parse_query("SELECT ?x WHERE { ?x yago:p ?o FILTER(?o IN (yago:A, yago:B)) }")
        expression = [e for e in query.where.elements if isinstance(e, FilterNode)][0].expression
        assert isinstance(expression, InExpression)
        assert len(expression.choices) == 2

    def test_values_single_variable(self):
        query = parse_query("SELECT ?x WHERE { VALUES ?x { yago:A yago:B } ?x yago:p ?o }")
        values = [e for e in query.where.elements if isinstance(e, ValuesNode)][0]
        assert values.variables == (Variable("x"),)
        assert len(values.rows) == 2

    def test_values_multiple_variables_with_undef(self):
        query = parse_query(
            "SELECT ?x WHERE { VALUES (?x ?y) { (yago:A yago:B) (yago:C UNDEF) } ?x yago:p ?y }"
        )
        values = [e for e in query.where.elements if isinstance(e, ValuesNode)][0]
        assert values.rows[1][1] is None

    def test_values_row_arity_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?x WHERE { VALUES (?x ?y) { (yago:A) } }")

    def test_unterminated_group_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?x WHERE { ?x yago:p ?o ")

    def test_group_variables_collects_all(self):
        query = parse_query(
            "SELECT * WHERE { ?a yago:p ?b OPTIONAL { ?a yago:q ?c } VALUES ?d { yago:X } }"
        )
        names = {v.name for v in query.where.variables()}
        assert names == {"a", "b", "c", "d"}


class TestSolutionModifiers:
    def test_limit_offset(self):
        query = parse_query("SELECT ?s WHERE { ?s ?p ?o } OFFSET 5 LIMIT 10")
        assert query.limit == 10
        assert query.offset == 5

    def test_negative_limit_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?s WHERE { ?s ?p ?o } LIMIT -3")

    def test_order_by_variable(self):
        query = parse_query("SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s")
        assert len(query.order_by) == 1
        assert not query.order_by[0].descending

    def test_order_by_desc(self):
        query = parse_query("SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) ?p")
        assert query.order_by[0].descending
        assert len(query.order_by) == 2

    def test_group_by(self):
        query = parse_query(
            "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s"
        )
        assert query.group_by == (Variable("s"),)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?s WHERE { ?s ?p ?o } nonsense")
