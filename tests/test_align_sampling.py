"""Unit tests for Simple Sample Extraction."""

import pytest

from repro.align.config import AlignmentConfig
from repro.align.sampling import SimpleSampleExtractor
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.sameas import SameAsIndex
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal

#: A tiny fully-controlled KB pair for precise assertions.
A_NS = Namespace("http://sampling.test/a/")
B_NS = Namespace("http://sampling.test/b/")


@pytest.fixture
def tiny_pair():
    """KB A: bornAt(p, city); KB B: birthPlace(p, city) missing one fact."""
    kb_a = KnowledgeBase("A", A_NS)
    kb_b = KnowledgeBase("B", B_NS)
    links = SameAsIndex()
    for index in range(4):
        person_a, person_b = A_NS[f"p{index}"], B_NS[f"p{index}"]
        city_a, city_b = A_NS[f"c{index}"], B_NS[f"c{index}"]
        kb_a.add_fact(person_a, A_NS.bornAt, city_a)
        links.add_link(person_a, person_b)
        links.add_link(city_a, city_b)
        if index != 3:
            # KB B does not know p3's birth place at all (PCA-friendly gap).
            kb_b.add_fact(person_b, B_NS.birthPlace, city_b)
    # An extra B fact that A does not have.
    kb_b.add_fact(B_NS.p0, B_NS.birthPlace, B_NS.extraCity)
    return kb_a, kb_b, links


def make_extractor(tiny_pair, **config_kwargs):
    kb_a, kb_b, links = tiny_pair
    config = AlignmentConfig(sample_size=4, random_seed=1, **config_kwargs)
    return SimpleSampleExtractor(
        premise_client=kb_a.client(),
        conclusion_client=kb_b.client(),
        links=links,
        conclusion_namespace=B_NS,
        config=config,
    ), kb_a, kb_b


class TestSampleSubjects:
    def test_only_linkable_subjects_sampled(self, tiny_pair):
        extractor, kb_a, _ = make_extractor(tiny_pair)
        kb_a.add_fact(A_NS.unlinked, A_NS.bornAt, A_NS.somewhere)
        subjects = extractor.sample_subjects(A_NS.bornAt)
        assert A_NS.unlinked not in subjects
        assert len(subjects) == 4

    def test_sample_size_respected(self, tiny_pair):
        extractor, *_ = make_extractor(tiny_pair)
        extractor.config = AlignmentConfig(sample_size=2, random_seed=1)
        assert len(extractor.sample_subjects(A_NS.bornAt)) == 2

    def test_empty_relation(self, tiny_pair):
        extractor, *_ = make_extractor(tiny_pair)
        assert extractor.sample_subjects(A_NS.noSuchRelation) == []


class TestExtract:
    def test_evidence_counts(self, tiny_pair):
        extractor, *_ = make_extractor(tiny_pair)
        evidence = extractor.extract(A_NS.bornAt, B_NS.birthPlace)
        # 4 sampled subjects, p3 has no conclusion facts.
        assert len(evidence) == 4
        assert evidence.positive_pairs() == 3
        assert evidence.premise_pairs() == 4
        assert evidence.pca_body_pairs() == 3

    def test_subjects_are_translated_to_conclusion_namespace(self, tiny_pair):
        extractor, *_ = make_extractor(tiny_pair)
        evidence = extractor.extract(A_NS.bornAt, B_NS.birthPlace)
        assert all(record.subject in B_NS for record in evidence)

    def test_conclusion_objects_include_all_facts_of_subject(self, tiny_pair):
        # Required by the PCA measure: all r facts of a sampled subject are
        # retrieved, not only the ones matching the premise.
        extractor, *_ = make_extractor(tiny_pair)
        evidence = extractor.extract(A_NS.bornAt, B_NS.birthPlace)
        p0_record = next(r for r in evidence if r.subject == B_NS.p0)
        assert set(p0_record.conclusion_objects) == {B_NS.c0, B_NS.extraCity}

    def test_explicit_subject_list_skips_sampling(self, tiny_pair):
        extractor, *_ = make_extractor(tiny_pair)
        evidence = extractor.extract(A_NS.bornAt, B_NS.birthPlace, subjects=[A_NS.p1])
        assert len(evidence) == 1
        assert evidence.records[0].subject == B_NS.p1

    def test_explicit_subjects_without_links_are_dropped(self, tiny_pair):
        extractor, *_ = make_extractor(tiny_pair)
        evidence = extractor.extract(A_NS.bornAt, B_NS.birthPlace, subjects=[A_NS.nobody])
        assert len(evidence) == 0

    def test_untranslatable_objects_ignored_by_default(self, tiny_pair):
        extractor, kb_a, _ = make_extractor(tiny_pair)
        # p1 has a second bornAt fact whose object has no sameAs image.
        kb_a.add_fact(A_NS.p1, A_NS.bornAt, A_NS.unlinkedCity)
        evidence = extractor.extract(A_NS.bornAt, B_NS.birthPlace)
        p1_record = next(r for r in evidence if r.subject == B_NS.p1)
        assert p1_record.untranslatable_objects == 1
        assert len(p1_record.premise_objects) == 1

    def test_untranslatable_objects_kept_when_configured(self, tiny_pair):
        extractor, kb_a, _ = make_extractor(tiny_pair, require_sameas_objects=False)
        kb_a.add_fact(A_NS.p1, A_NS.bornAt, A_NS.unlinkedCity)
        evidence = extractor.extract(A_NS.bornAt, B_NS.birthPlace)
        p1_record = next(r for r in evidence if r.subject == B_NS.p1)
        # The raw object is kept and counts against the rule.
        assert len(p1_record.premise_objects) == 2

    def test_literal_objects_pass_through(self, tiny_pair):
        extractor, kb_a, kb_b = make_extractor(tiny_pair)
        kb_a.add_fact(A_NS.p0, A_NS.label, Literal("Person Zero"))
        kb_b.add_fact(B_NS.p0, B_NS.name, Literal("person zero"))
        evidence = extractor.extract(A_NS.label, B_NS.name)
        assert evidence.positive_pairs() == 1

    def test_deterministic_given_seed(self, movie_world):
        imdb = movie_world.kb("imdb")
        filmdb = movie_world.kb("filmdb")

        def run():
            extractor = SimpleSampleExtractor(
                premise_client=imdb.client(),
                conclusion_client=filmdb.client(),
                links=movie_world.links,
                conclusion_namespace=filmdb.namespace,
                config=AlignmentConfig(random_seed=3),
            )
            evidence = extractor.extract(
                imdb.namespace.term("hasDirector"), filmdb.namespace.term("directedBy")
            )
            return evidence.counts()

        assert run() == run()

    def test_query_budget_is_small(self, movie_world):
        # The whole extraction for one candidate must stay within a handful
        # of endpoint queries - that is the point of the paper.
        imdb = movie_world.kb("imdb")
        filmdb = movie_world.kb("filmdb")
        premise_client = imdb.client()
        conclusion_client = filmdb.client()
        extractor = SimpleSampleExtractor(
            premise_client=premise_client,
            conclusion_client=conclusion_client,
            links=movie_world.links,
            conclusion_namespace=filmdb.namespace,
            config=AlignmentConfig(sample_size=10),
        )
        extractor.extract(imdb.namespace.term("hasDirector"), filmdb.namespace.term("directedBy"))
        total_queries = (
            premise_client.endpoint.log.query_count + conclusion_client.endpoint.log.query_count
        )
        assert total_queries <= 8
