"""Differential fuzzing: thread-backend vs process-backend scatter.

Extends the :mod:`tests.test_differential_persist` harness to the
process-parallel executor: for hypothesis-generated datasets, the same
store must answer every query identically (as solution multisets) no
matter which scatter backend serves it —

* the warm planned evaluator over a single store (the reference);
* ``ShardedQueryEvaluator(store)`` — the in-process thread backend —
  at 1, 2 and 8 shards;
* ``ShardedQueryEvaluator(store, backend="process", executor=...)`` —
  worker processes over the per-shard snapshots — at 1, 2 and 8 shards.

The workload is the full battery: BGP joins, OPTIONAL, UNION, ASK,
LIMIT, COUNT / COUNT DISTINCT and VALUES (with UNDEF rows).  Every
family is drawn and checked inside one hypothesis example so the worker
pools (up to 11 processes per example) are booted once per dataset, not
once per query.  LIMIT pages may legitimately differ in *which* rows
they pick, so they assert size + subset-of-universe instead of identity.
"""

import multiprocessing
import os
import tempfile
from collections import Counter
from contextlib import ExitStack
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.sparql.ast import (
    AskQuery,
    CountExpression,
    GroupGraphPattern,
    OptionalNode,
    ProjectionItem,
    SelectQuery,
    TriplePatternNode,
    UnionNode,
    ValuesNode,
)
from repro.sparql.bindings import Variable
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store.triplestore import TripleStore

EX = Namespace("http://diffbackend.test/")

START_METHOD = os.environ.get("REPRO_WORKER_START_METHOD") or None
if START_METHOD and START_METHOD not in multiprocessing.get_all_start_methods():
    pytest.skip(
        f"start method {START_METHOD!r} unsupported on this platform",
        allow_module_level=True,
    )

SHARD_COUNTS = (1, 2, 8)

# Same deliberately tiny vocabulary as the persistence harness: random
# BGPs actually join, literals exercise the record codec.
_iris = st.sampled_from([EX[f"n{index}"] for index in range(6)])
_literals = st.sampled_from(
    [Literal("v0"), Literal("v1", language="en"), Literal(7)]
)
_objects = st.one_of(_iris, _literals)
_variables = st.sampled_from([Variable(name) for name in "abc"])
_subject_terms = st.one_of(_variables, _iris)
_object_terms = st.one_of(_variables, _iris)
_patterns = st.builds(
    TriplePatternNode, _subject_terms, _subject_terms, _object_terms
)
_pattern_lists = st.lists(_patterns, min_size=1, max_size=3)
_triples = st.lists(st.builds(Triple, _iris, _iris, _objects), max_size=40)
_values_nodes = st.lists(
    st.tuples(st.one_of(st.none(), _iris), st.one_of(st.none(), _iris)),
    min_size=1,
    max_size=3,
).map(
    lambda rows: ValuesNode(
        variables=(Variable("a"), Variable("b")), rows=tuple(rows)
    )
)


def _multiset(result) -> Counter:
    return Counter(frozenset(row.items()) for row in result)


def _select(*elements, **modifiers) -> SelectQuery:
    return SelectQuery(
        projection=(),
        where=GroupGraphPattern(tuple(elements)),
        select_all=True,
        **modifiers,
    )


def _backend_evaluators(triples, stack: ExitStack):
    """``(reference, [(label, evaluator), ...])`` across both backends."""
    reference = QueryEvaluator(TripleStore(triples=triples))
    evaluators = []
    tmp = Path(tempfile.mkdtemp(prefix="diffbackend-"))
    for count in SHARD_COUNTS:
        store = ShardedTripleStore(num_shards=count, triples=triples)
        evaluators.append((f"thread-{count}", ShardedQueryEvaluator(store)))
        executor = stack.enter_context(
            store.serve(tmp / f"shards{count}", start_method=START_METHOD)
        )
        evaluators.append(
            (
                f"process-{count}",
                ShardedQueryEvaluator(
                    store, backend="process", executor=executor
                ),
            )
        )
    return reference, evaluators


class TestDifferentialBackends:
    @given(
        triples=_triples,
        bgp=_pattern_lists,
        required=_patterns,
        optionals=st.lists(_patterns, min_size=1, max_size=2),
        left=st.lists(_patterns, min_size=1, max_size=2),
        right=st.lists(_patterns, min_size=1, max_size=2),
        values=_values_nodes,
        ask_patterns=_pattern_lists,
        limit=st.integers(min_value=0, max_value=7),
        chain_p1=_iris,
        chain_p2=_iris,
    )
    @settings(max_examples=8, deadline=None)
    def test_backends_agree_on_full_battery(
        self,
        triples,
        bgp,
        required,
        optionals,
        left,
        right,
        values,
        ask_patterns,
        limit,
        chain_p1,
        chain_p2,
    ):
        # An s–o chain is never co-partitioned: it exercises the join
        # shipping path (or, over the broadcast limit, the global one).
        chain = (
            TriplePatternNode(Variable("a"), chain_p1, Variable("b")),
            TriplePatternNode(Variable("b"), chain_p2, Variable("c")),
        )
        multiset_queries = [
            ("bgp", _select(*bgp)),
            (
                "optional",
                _select(
                    required, OptionalNode(GroupGraphPattern(tuple(optionals)))
                ),
            ),
            (
                "union",
                _select(
                    UnionNode(
                        branches=(
                            GroupGraphPattern(tuple(left)),
                            GroupGraphPattern(tuple(right)),
                        )
                    )
                ),
            ),
            ("values", _select(values, *bgp)),
            (
                "count",
                SelectQuery(
                    projection=(
                        ProjectionItem(
                            expression=CountExpression(), alias=Variable("c")
                        ),
                        ProjectionItem(
                            expression=CountExpression(
                                variable=Variable("a"), distinct=True
                            ),
                            alias=Variable("d"),
                        ),
                    ),
                    where=GroupGraphPattern(tuple(bgp)),
                ),
            ),
            ("chain", _select(*chain)),
            (
                "chain-count",
                SelectQuery(
                    projection=(
                        ProjectionItem(
                            expression=CountExpression(), alias=Variable("c")
                        ),
                        ProjectionItem(
                            expression=CountExpression(
                                variable=Variable("c"), distinct=True
                            ),
                            alias=Variable("d"),
                        ),
                    ),
                    where=GroupGraphPattern(chain),
                ),
            ),
            (
                "grouped-count",
                SelectQuery(
                    projection=(
                        ProjectionItem(variable=Variable("b")),
                        ProjectionItem(
                            expression=CountExpression(variable=Variable("a")),
                            alias=Variable("c"),
                        ),
                        ProjectionItem(
                            expression=CountExpression(
                                variable=Variable("c"), distinct=True
                            ),
                            alias=Variable("d"),
                        ),
                    ),
                    where=GroupGraphPattern(chain),
                    group_by=(Variable("b"),),
                ),
            ),
        ]
        ask = AskQuery(where=GroupGraphPattern(tuple(ask_patterns)))
        paged = _select(*bgp, limit=limit)
        universe_query = _select(*bgp)

        with ExitStack() as stack:
            reference, evaluators = _backend_evaluators(triples, stack)
            expectations = {
                label: _multiset(reference.evaluate(query))
                for label, query in multiset_queries
            }
            expected_ask = bool(reference.evaluate(ask))
            universe = _multiset(reference.evaluate(universe_query))
            expected_page = min(limit, sum(universe.values()))

            for label, evaluator in evaluators:
                for family, query in multiset_queries:
                    assert (
                        _multiset(evaluator.evaluate(query))
                        == expectations[family]
                    ), f"{family} @ {label}"
                assert bool(evaluator.evaluate(ask)) == expected_ask, label
                page = _multiset(evaluator.evaluate(paged))
                assert sum(page.values()) == expected_page, label
                for row, count in page.items():
                    assert universe[row] >= count, label
