"""Unit tests for alignment result containers."""

import pytest

from repro.align.config import AlignmentConfig
from repro.align.result import AlignmentResult, RelationAlignment, ScoredCandidate
from repro.align.rule import RelationRef, SubsumptionRule

from tests.conftest import EX, EX2

CONCLUSION = RelationRef("dbpedia", EX2.birthPlace)


def scored(local_name: str, confidence: float, support: int = 5, pruned: bool = False,
           reverse_confidence=None) -> ScoredCandidate:
    premise = RelationRef("yago", EX[local_name])
    rule = SubsumptionRule(
        premise=premise, conclusion=CONCLUSION, confidence=confidence, support=support,
        measure="pca", body_size=10, pruned_by_ubs=pruned,
    )
    reverse = None
    if reverse_confidence is not None:
        reverse = SubsumptionRule(
            premise=CONCLUSION, conclusion=premise, confidence=reverse_confidence,
            support=support, measure="pca",
        )
    return ScoredCandidate(rule=rule, evidence_subjects=10, candidate_hits=3, reverse_rule=reverse)


@pytest.fixture
def alignment() -> RelationAlignment:
    return RelationAlignment(
        relation=CONCLUSION,
        candidates=[
            scored("wasBornIn", 0.95, reverse_confidence=0.9),
            scored("diedIn", 0.4),
            scored("livesIn", 0.8, pruned=True),
            scored("citizenOf", 0.2, support=0),
        ],
    )


class TestRelationAlignment:
    def test_sorted_candidates_by_confidence(self, alignment):
        names = [c.relation.local_name for c in alignment.sorted_candidates()]
        assert names == ["wasBornIn", "livesIn", "diedIn", "citizenOf"]

    def test_accepted_filters_threshold_support_and_pruning(self, alignment):
        accepted = {rule.premise.relation.local_name for rule in alignment.accepted(0.3)}
        assert accepted == {"wasBornIn", "diedIn"}

    def test_best(self, alignment):
        assert alignment.best().relation.local_name == "wasBornIn"

    def test_len_and_iter(self, alignment):
        assert len(alignment) == 4
        assert len(list(alignment)) == 4

    def test_equivalences(self, alignment):
        equivalences = alignment.equivalences(threshold=0.3)
        assert len(equivalences) == 1
        assert equivalences[0].left.relation.local_name == "wasBornIn"

    def test_candidate_equivalence_none_without_reverse(self, alignment):
        assert alignment.candidates[1].equivalence() is None


class TestAlignmentResult:
    def _result(self, alignment) -> AlignmentResult:
        result = AlignmentResult(
            source_kb="dbpedia", target_kb="yago", config=AlignmentConfig.paper_ubs()
        )
        result.add(alignment)
        result.query_statistics = {"dbpedia": {"queries": 12.0}, "yago": {"queries": 30.0}}
        return result

    def test_direction_label(self, alignment):
        assert self._result(alignment).direction == "yago ⊂ dbpedia"

    def test_accepted_rules_use_config_threshold_by_default(self, alignment):
        result = self._result(alignment)
        names = {rule.premise.relation.local_name for rule in result.accepted_rules()}
        assert names == {"wasBornIn", "diedIn"}

    def test_accepted_rules_with_explicit_threshold(self, alignment):
        result = self._result(alignment)
        names = {rule.premise.relation.local_name for rule in result.accepted_rules(threshold=0.9)}
        assert names == {"wasBornIn"}

    def test_predicted_pairs(self, alignment):
        pairs = self._result(alignment).predicted_pairs(threshold=0.9)
        assert pairs == {(EX.wasBornIn, EX2.birthPlace)}

    def test_scored_pairs_include_everything(self, alignment):
        assert len(self._result(alignment).scored_pairs()) == 4

    def test_for_relation(self, alignment):
        result = self._result(alignment)
        assert result.for_relation(EX2.birthPlace) is alignment
        assert result.for_relation(EX2.unknown) is None

    def test_equivalences(self, alignment):
        assert len(self._result(alignment).equivalences(threshold=0.3)) == 1

    def test_total_queries_and_summary(self, alignment):
        result = self._result(alignment)
        assert result.total_queries() == pytest.approx(42.0)
        summary = result.summary()
        assert "yago ⊂ dbpedia" in summary
        assert "42" in summary

    def test_len_and_iteration(self, alignment):
        result = self._result(alignment)
        assert len(result) == 1
        assert list(result) == [alignment]
