"""Concurrency tests: budget accounting, query waves, batched alignment."""

import asyncio
import threading

import pytest

from repro.align.aligner import RemoteDataset, SofyaAligner
from repro.endpoint import (
    AccessPolicy,
    SimulatedSparqlEndpoint,
    SparqlEndpoint,
    WaveScheduler,
    sharded_endpoint,
)
from repro.errors import EndpointError, QueryBudgetExceeded
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard import ShardedTripleStore
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store import TripleStore
from repro.synthetic import generate_world, movie_world_spec

EX = Namespace("http://conc.test/")


def small_store():
    return TripleStore(
        triples=[Triple(EX[f"s{i}"], EX.p, EX[f"o{i % 7}"]) for i in range(40)]
    )


ASK = "ASK { ?s <http://conc.test/p> ?o }"
SELECT = "SELECT ?s ?o WHERE { ?s <http://conc.test/p> ?o }"


class TestBudgetThreadSafety:
    @pytest.mark.parametrize("threads", [4, 8])
    def test_hammered_budget_admits_exactly_the_quota(self, threads):
        budget = 50
        endpoint = SparqlEndpoint(
            small_store(), policy=AccessPolicy(max_queries=budget, max_result_rows=None)
        )
        admitted = []
        rejected = []
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()  # maximise contention on the reservation path
            for _ in range(20):
                try:
                    endpoint.query(ASK)
                    admitted.append(1)
                except QueryBudgetExceeded:
                    rejected.append(1)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert sum(admitted) == budget
        assert sum(admitted) + len(rejected) == threads * 20
        assert endpoint.log.query_count == budget
        assert endpoint.queries_remaining == 0

    def test_rejected_full_scan_refunds_budget(self):
        endpoint = SparqlEndpoint(
            small_store(),
            policy=AccessPolicy(max_queries=5, allow_full_scan=False,
                                max_result_rows=None),
        )
        with pytest.raises(EndpointError):
            endpoint.query("SELECT ?s WHERE { ?s ?p ?o }")
        assert endpoint.queries_remaining == 5
        endpoint.query(ASK)
        assert endpoint.queries_remaining == 4

    def test_evaluation_error_refunds_budget(self):
        endpoint = SparqlEndpoint(
            small_store(), policy=AccessPolicy(max_queries=5, max_result_rows=None)
        )
        with pytest.raises(Exception):
            endpoint.query("SELECT ?s WHERE { broken !! }")
        assert endpoint.queries_remaining == 5

    def test_log_snapshot_consistent_under_concurrent_recording(self):
        endpoint = SparqlEndpoint(small_store())

        def worker():
            for _ in range(25):
                endpoint.query(ASK)

        pool = [threading.Thread(target=worker) for _ in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        snapshot = endpoint.log.snapshot()
        assert snapshot["queries"] == 100.0
        assert endpoint.log.query_count == 100


class TestWaveScheduler:
    def test_wave_results_in_submission_order(self):
        store = small_store()
        endpoint = SimulatedSparqlEndpoint(store)
        with WaveScheduler(endpoint, max_workers=4) as scheduler:
            wave = scheduler.run_wave([SELECT, ASK, SELECT])
        assert wave.succeeded == 3 and not wave.errors
        assert len(wave.results[0]) == 40
        assert bool(wave.results[1]) is True
        assert len(wave.results[2]) == 40
        assert wave.throughput > 0

    def test_budget_exhaustion_mid_wave_is_partial_not_fatal(self):
        endpoint = SimulatedSparqlEndpoint(
            small_store(), policy=AccessPolicy(max_queries=3, max_result_rows=None)
        )
        with WaveScheduler(endpoint, max_workers=4) as scheduler:
            wave = scheduler.run_wave([ASK] * 10)
        assert wave.succeeded == 3
        assert wave.failed == 7
        assert all(isinstance(error, QueryBudgetExceeded) for _, error in wave.errors)
        assert endpoint.log.query_count == 3
        with pytest.raises(QueryBudgetExceeded):
            wave.raise_first_error()

    def test_map_batches_items_into_waves(self):
        endpoint = SimulatedSparqlEndpoint(small_store())
        with WaveScheduler(endpoint, max_workers=2) as scheduler:
            waves = scheduler.map(
                lambda i: f"ASK {{ <http://conc.test/s{i}> <http://conc.test/p> ?o }}",
                list(range(5)),
                wave_size=2,
            )
        assert [wave.succeeded for wave in waves] == [2, 2, 1]
        assert all(bool(r) for wave in waves for r in wave.results)

    def test_async_wave(self):
        endpoint = SimulatedSparqlEndpoint(small_store())
        with WaveScheduler(endpoint, max_workers=4) as scheduler:
            wave = asyncio.run(scheduler.run_wave_async([ASK, SELECT]))
        assert wave.succeeded == 2
        assert bool(wave.results[0]) is True
        assert len(wave.results[1]) == 40

    def test_default_workers_follow_shard_count(self):
        sharded = ShardedTripleStore(
            num_shards=3,
            triples=[Triple(EX[f"s{i}"], EX.p, EX.o) for i in range(30)],
        )
        endpoint = sharded_endpoint(sharded)
        assert isinstance(endpoint._evaluator, ShardedQueryEvaluator)
        with WaveScheduler(endpoint) as scheduler:
            assert scheduler.max_workers == 3
            wave = scheduler.run_wave([ASK] * 6)
        assert wave.succeeded == 6

    def test_latency_scale_sleeps(self):
        endpoint = SimulatedSparqlEndpoint(
            small_store(),
            policy=AccessPolicy(latency_per_query=1.0, latency_per_row=0.0,
                                max_result_rows=None),
            latency_scale=0.001,
        )
        with WaveScheduler(endpoint, max_workers=8) as scheduler:
            wave = scheduler.run_wave([ASK] * 8)
        # 8 concurrent 1 ms sleeps must not take 8 ms sequentially.
        assert wave.wall_seconds >= 0.001
        assert endpoint.log.total_virtual_seconds == pytest.approx(8.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(EndpointError):
            SimulatedSparqlEndpoint(small_store(), latency_scale=-1)


class TestBatchedAligner:
    @pytest.fixture(scope="class")
    def world(self):
        return generate_world(movie_world_spec(), shard_count=2)

    def _aligner(self, world):
        imdb, filmdb = world.kb_pair()
        return SofyaAligner(
            RemoteDataset.from_kb(imdb), RemoteDataset.from_kb(filmdb), world.links
        )

    def test_single_worker_matches_sequential(self, world):
        sequential = self._aligner(world).align_relations()
        batched = self._aligner(world).align_relations_batched(max_workers=1)
        assert set(sequential.alignments) == set(batched.alignments)

    def test_concurrent_workers_align_everything(self, world):
        sequential = self._aligner(world).align_relations()
        batched = self._aligner(world).align_relations_batched(max_workers=4)
        assert set(batched.alignments) == set(sequential.alignments)
        # Every relation that found candidates sequentially also does
        # concurrently (samples differ, candidate discovery should not).
        for relation, alignment in sequential.alignments.items():
            if alignment.candidates:
                assert batched.alignments[relation].candidates

    def test_budget_exhaustion_keeps_partial_result(self, world):
        imdb, filmdb = world.kb_pair()
        aligner = SofyaAligner(
            RemoteDataset.from_kb(imdb, policy=AccessPolicy(max_queries=8,
                                                            max_result_rows=None)),
            RemoteDataset.from_kb(filmdb),
            world.links,
        )
        result = aligner.align_relations_batched(max_workers=2)
        assert len(result.alignments) < 4  # some relations dropped mid-run
        assert result.query_statistics["imdb"]["queries"] <= 8
