"""Unit tests for Unbiased Sample Extraction (UBS)."""

import pytest

from repro.align.config import AlignmentConfig
from repro.align.unbiased import UBSReport, UnbiasedSampleExtractor
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.sameas import SameAsIndex
from repro.rdf.namespace import Namespace

#: Controlled movie-style world: K' has hasDirector/hasProducer, K has directedBy.
KP_NS = Namespace("http://ubs.test/kprime/")
K_NS = Namespace("http://ubs.test/k/")


@pytest.fixture
def controlled_pair():
    """Five films; in two of them the producer differs from the director."""
    kprime = KnowledgeBase("kprime", KP_NS)
    k = KnowledgeBase("k", K_NS)
    links = SameAsIndex()

    people = [f"person{i}" for i in range(6)]
    for index in range(5):
        film_p, film_k = KP_NS[f"film{index}"], K_NS[f"film{index}"]
        links.add_link(film_p, film_k)
        director = people[index]
        kprime.add_fact(film_p, KP_NS.hasDirector, KP_NS[director])
        k.add_fact(film_k, K_NS.directedBy, K_NS[director])
        links.add_link(KP_NS[director], K_NS[director])
        # Films 0-2: producer == director (the trap); films 3-4: different person.
        producer = director if index < 3 else people[index + 1]
        kprime.add_fact(film_p, KP_NS.hasProducer, KP_NS[producer])
        links.add_link(KP_NS[producer], K_NS[producer])
    return kprime, k, links


def make_extractor(controlled_pair, **config_kwargs):
    kprime, k, links = controlled_pair
    config = AlignmentConfig(ubs_sample_size=10, **config_kwargs)
    return UnbiasedSampleExtractor(
        premise_client=kprime.client(),
        conclusion_client=k.client(),
        links=links,
        conclusion_namespace=K_NS,
        config=config,
    )


class TestUBSReport:
    def test_prunes_requires_threshold_and_majority(self):
        report = UBSReport(candidate=KP_NS.hasProducer, contradictions=2, confirmations=1)
        assert report.prunes(1)
        assert report.prunes(2)
        assert not report.prunes(3)

    def test_no_pruning_when_confirmations_dominate(self):
        report = UBSReport(candidate=KP_NS.hasProducer, contradictions=1, confirmations=3)
        assert not report.prunes(1)

    def test_no_pruning_without_contradictions(self):
        report = UBSReport(candidate=KP_NS.hasProducer)
        assert not report.prunes(1)


class TestCheckCandidate:
    def test_wrong_candidate_contradicted(self, controlled_pair):
        extractor = make_extractor(controlled_pair)
        report = extractor.check_candidate(
            candidate=KP_NS.hasProducer,
            siblings=[KP_NS.hasDirector, KP_NS.hasProducer],
            conclusion_relation=K_NS.directedBy,
        )
        # Films 3 and 4 contradict hasProducer => directedBy.
        assert report.contradictions == 2
        assert report.confirmations == 0
        assert report.prunes(1)

    def test_correct_candidate_not_contradicted(self, controlled_pair):
        extractor = make_extractor(controlled_pair)
        report = extractor.check_candidate(
            candidate=KP_NS.hasDirector,
            siblings=[KP_NS.hasDirector, KP_NS.hasProducer],
            conclusion_relation=K_NS.directedBy,
        )
        assert report.contradictions == 0
        assert report.confirmations == 2
        assert not report.prunes(1)

    def test_candidate_is_never_its_own_sibling(self, controlled_pair):
        extractor = make_extractor(controlled_pair)
        report = extractor.check_candidate(
            candidate=KP_NS.hasProducer,
            siblings=[KP_NS.hasProducer],
            conclusion_relation=K_NS.directedBy,
        )
        assert report.contradictions == 0
        assert report.confirmations == 0
        assert report.extra_evidence.records == []

    def test_extra_evidence_is_collected(self, controlled_pair):
        extractor = make_extractor(controlled_pair)
        report = extractor.check_candidate(
            candidate=KP_NS.hasProducer,
            siblings=[KP_NS.hasDirector],
            conclusion_relation=K_NS.directedBy,
        )
        assert len(report.extra_evidence) == 2
        assert all(record.from_unbiased_sampling for record in report.extra_evidence)
        assert len(report.disagreement_subjects) == 2

    def test_contradiction_requires_conclusion_knowledge(self, controlled_pair):
        # If K does not know the sibling's object either, the sample is not
        # counted as a contradiction (no punishment for incompleteness).
        kprime, k, links = controlled_pair
        k.store.remove(
            next(iter(k.store.match(subject=K_NS.film3, predicate=K_NS.directedBy)))
        )
        extractor = make_extractor((kprime, k, links))
        report = extractor.check_candidate(
            candidate=KP_NS.hasProducer,
            siblings=[KP_NS.hasDirector],
            conclusion_relation=K_NS.directedBy,
        )
        assert report.contradictions == 1

    def test_missing_links_skip_samples(self, controlled_pair):
        kprime, k, _ = controlled_pair
        empty_links = SameAsIndex()
        extractor = UnbiasedSampleExtractor(
            premise_client=kprime.client(),
            conclusion_client=k.client(),
            links=empty_links,
            conclusion_namespace=K_NS,
            config=AlignmentConfig(),
        )
        report = extractor.check_candidate(
            candidate=KP_NS.hasProducer,
            siblings=[KP_NS.hasDirector],
            conclusion_relation=K_NS.directedBy,
        )
        assert report.contradictions == 0
        assert report.confirmations == 0

    def test_stops_querying_once_threshold_reached(self, controlled_pair):
        kprime, k, links = controlled_pair
        premise_client = kprime.client()
        extractor = UnbiasedSampleExtractor(
            premise_client=premise_client,
            conclusion_client=k.client(),
            links=links,
            conclusion_namespace=K_NS,
            config=AlignmentConfig(ubs_contradiction_threshold=1, ubs_sample_size=10),
        )
        extractor.check_candidate(
            candidate=KP_NS.hasProducer,
            siblings=[KP_NS.hasDirector, KP_NS.hasTitle, KP_NS.hasEditor],
            conclusion_relation=K_NS.directedBy,
        )
        # Once the first sibling produced enough contradictions, no further
        # disagreement queries are issued for the remaining siblings.
        assert premise_client.endpoint.log.query_count == 1
