"""Unit tests for the SPARQL endpoint facade."""

import pytest

from repro.endpoint.endpoint import SparqlEndpoint
from repro.endpoint.policy import AccessPolicy
from repro.errors import EndpointError, QueryBudgetExceeded, ResultTruncated
from repro.sparql.results import AskResult, ResultSet

from tests.conftest import EX

PREFIX = "PREFIX ex: <http://example.org/kb1/> "


class TestQueryExecution:
    def test_select_returns_result_set(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        result = endpoint.query(PREFIX + "SELECT ?s WHERE { ?s ex:bornIn ?c }")
        assert isinstance(result, ResultSet)
        assert len(result) == 3

    def test_ask_helper(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        assert endpoint.ask(PREFIX + "ASK { ex:Marie_Curie ex:bornIn ex:Poland }")

    def test_select_helper_rejects_ask(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        with pytest.raises(EndpointError):
            endpoint.select(PREFIX + "ASK { ?s ?p ?o }")

    def test_ask_helper_rejects_select(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        with pytest.raises(EndpointError):
            endpoint.ask(PREFIX + "SELECT ?s WHERE { ?s ?p ?o }")

    def test_dataset_size(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        assert endpoint.dataset_size() == len(people_store)


class TestPolicyEnforcement:
    def test_query_budget(self, people_store):
        endpoint = SparqlEndpoint(people_store, policy=AccessPolicy(max_queries=2))
        endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")
        assert endpoint.queries_remaining == 1
        endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")
        with pytest.raises(QueryBudgetExceeded):
            endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")

    def test_budget_survives_log_reset(self, people_store):
        endpoint = SparqlEndpoint(people_store, policy=AccessPolicy(max_queries=1))
        endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")
        endpoint.reset_accounting()
        assert endpoint.log.query_count == 0
        with pytest.raises(QueryBudgetExceeded):
            endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")

    def test_row_cap_truncates_silently(self, people_store):
        endpoint = SparqlEndpoint(people_store, policy=AccessPolicy(max_result_rows=2))
        result = endpoint.select(PREFIX + "SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
        assert len(result) == 2
        assert result.truncated
        assert endpoint.log.truncated_count == 1

    def test_row_cap_can_fail_hard(self, people_store):
        policy = AccessPolicy(max_result_rows=2, fail_on_truncation=True)
        endpoint = SparqlEndpoint(people_store, policy=policy)
        with pytest.raises(ResultTruncated):
            endpoint.select(PREFIX + "SELECT ?s ?p ?o WHERE { ?s ?p ?o }")

    def test_full_scan_forbidden(self, people_store):
        endpoint = SparqlEndpoint(people_store, policy=AccessPolicy(allow_full_scan=False))
        with pytest.raises(EndpointError):
            endpoint.select("SELECT ?s ?p ?o WHERE { ?s ?p ?o }")

    def test_constant_pattern_allowed_under_no_full_scan(self, people_store):
        endpoint = SparqlEndpoint(people_store, policy=AccessPolicy(allow_full_scan=False))
        result = endpoint.select(PREFIX + "SELECT ?s WHERE { ?s ex:bornIn ?c }")
        assert len(result) == 3

    def test_unlimited_queries_reports_none_remaining(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        assert endpoint.queries_remaining is None


class TestAccounting:
    def test_log_records_query_forms(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        endpoint.query(PREFIX + "SELECT ?s WHERE { ?s ex:bornIn ?c }")
        endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")
        endpoint.query(PREFIX + "SELECT (COUNT(*) AS ?c) WHERE { ?s ex:bornIn ?c }")
        assert endpoint.log.by_form() == {"SELECT": 1, "ASK": 1, "COUNT": 1}

    def test_log_records_rows_and_cost(self, people_store):
        policy = AccessPolicy(latency_per_query=1.0, latency_per_row=0.0)
        endpoint = SparqlEndpoint(people_store, policy=policy)
        endpoint.query(PREFIX + "SELECT ?s WHERE { ?s ex:bornIn ?c }")
        assert endpoint.log.total_rows == 3
        assert endpoint.log.total_virtual_seconds == pytest.approx(1.0)

    def test_repr_contains_name(self, people_store):
        endpoint = SparqlEndpoint(people_store, name="yago-endpoint")
        assert "yago-endpoint" in repr(endpoint)


class TestParseCache:
    def test_repeated_query_text_parses_once(self, people_store):
        from repro.endpoint.endpoint import clear_parse_cache, parse_cache_info

        clear_parse_cache()
        endpoint = SparqlEndpoint(people_store)
        query = PREFIX + "SELECT ?s WHERE { ?s ex:bornIn ?c }"
        first = endpoint.query(query)
        before = parse_cache_info()
        second = endpoint.query(query)
        after = parse_cache_info()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses
        assert [row for row in first] == [row for row in second]

    def test_cache_shared_across_endpoints(self, people_store):
        from repro.endpoint.endpoint import clear_parse_cache, parse_cache_info

        clear_parse_cache()
        query = PREFIX + "ASK { ?s ex:bornIn ?c }"
        SparqlEndpoint(people_store, name="a").query(query)
        SparqlEndpoint(people_store, name="b").query(query)
        assert parse_cache_info().hits >= 1
        assert parse_cache_info().misses == 1
