"""Unit tests for the SPARQL endpoint facade."""

import pytest

from repro.endpoint.endpoint import SparqlEndpoint
from repro.endpoint.policy import AccessPolicy
from repro.errors import EndpointError, QueryBudgetExceeded, ResultTruncated
from repro.sparql.results import AskResult, ResultSet

from tests.conftest import EX

PREFIX = "PREFIX ex: <http://example.org/kb1/> "


class TestQueryExecution:
    def test_select_returns_result_set(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        result = endpoint.query(PREFIX + "SELECT ?s WHERE { ?s ex:bornIn ?c }")
        assert isinstance(result, ResultSet)
        assert len(result) == 3

    def test_ask_helper(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        assert endpoint.ask(PREFIX + "ASK { ex:Marie_Curie ex:bornIn ex:Poland }")

    def test_select_helper_rejects_ask(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        with pytest.raises(EndpointError):
            endpoint.select(PREFIX + "ASK { ?s ?p ?o }")

    def test_ask_helper_rejects_select(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        with pytest.raises(EndpointError):
            endpoint.ask(PREFIX + "SELECT ?s WHERE { ?s ?p ?o }")

    def test_dataset_size(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        assert endpoint.dataset_size() == len(people_store)


class TestPolicyEnforcement:
    def test_query_budget(self, people_store):
        endpoint = SparqlEndpoint(people_store, policy=AccessPolicy(max_queries=2))
        endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")
        assert endpoint.queries_remaining == 1
        endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")
        with pytest.raises(QueryBudgetExceeded):
            endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")

    def test_budget_survives_log_reset(self, people_store):
        endpoint = SparqlEndpoint(people_store, policy=AccessPolicy(max_queries=1))
        endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")
        endpoint.reset_accounting()
        assert endpoint.log.query_count == 0
        with pytest.raises(QueryBudgetExceeded):
            endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")

    def test_row_cap_truncates_silently(self, people_store):
        endpoint = SparqlEndpoint(people_store, policy=AccessPolicy(max_result_rows=2))
        result = endpoint.select(PREFIX + "SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
        assert len(result) == 2
        assert result.truncated
        assert endpoint.log.truncated_count == 1

    def test_row_cap_can_fail_hard(self, people_store):
        policy = AccessPolicy(max_result_rows=2, fail_on_truncation=True)
        endpoint = SparqlEndpoint(people_store, policy=policy)
        with pytest.raises(ResultTruncated):
            endpoint.select(PREFIX + "SELECT ?s ?p ?o WHERE { ?s ?p ?o }")

    def test_full_scan_forbidden(self, people_store):
        endpoint = SparqlEndpoint(people_store, policy=AccessPolicy(allow_full_scan=False))
        with pytest.raises(EndpointError):
            endpoint.select("SELECT ?s ?p ?o WHERE { ?s ?p ?o }")

    def test_constant_pattern_allowed_under_no_full_scan(self, people_store):
        endpoint = SparqlEndpoint(people_store, policy=AccessPolicy(allow_full_scan=False))
        result = endpoint.select(PREFIX + "SELECT ?s WHERE { ?s ex:bornIn ?c }")
        assert len(result) == 3

    def test_unlimited_queries_reports_none_remaining(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        assert endpoint.queries_remaining is None


class TestAccounting:
    def test_log_records_query_forms(self, people_store):
        endpoint = SparqlEndpoint(people_store)
        endpoint.query(PREFIX + "SELECT ?s WHERE { ?s ex:bornIn ?c }")
        endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")
        endpoint.query(PREFIX + "SELECT (COUNT(*) AS ?c) WHERE { ?s ex:bornIn ?c }")
        assert endpoint.log.by_form() == {"SELECT": 1, "ASK": 1, "COUNT": 1}

    def test_log_records_rows_and_cost(self, people_store):
        policy = AccessPolicy(latency_per_query=1.0, latency_per_row=0.0)
        endpoint = SparqlEndpoint(people_store, policy=policy)
        endpoint.query(PREFIX + "SELECT ?s WHERE { ?s ex:bornIn ?c }")
        assert endpoint.log.total_rows == 3
        assert endpoint.log.total_virtual_seconds == pytest.approx(1.0)

    def test_repr_contains_name(self, people_store):
        endpoint = SparqlEndpoint(people_store, name="yago-endpoint")
        assert "yago-endpoint" in repr(endpoint)


class TestParseCache:
    def test_repeated_query_text_parses_once(self, people_store):
        from repro.endpoint.endpoint import clear_parse_cache, parse_cache_info

        clear_parse_cache()
        endpoint = SparqlEndpoint(people_store)
        query = PREFIX + "SELECT ?s WHERE { ?s ex:bornIn ?c }"
        first = endpoint.query(query)
        before = parse_cache_info()
        second = endpoint.query(query)
        after = parse_cache_info()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses
        assert [row for row in first] == [row for row in second]

    def test_cache_shared_across_endpoints(self, people_store):
        from repro.endpoint.endpoint import clear_parse_cache, parse_cache_info

        clear_parse_cache()
        query = PREFIX + "ASK { ?s ex:bornIn ?c }"
        SparqlEndpoint(people_store, name="a").query(query)
        SparqlEndpoint(people_store, name="b").query(query)
        assert parse_cache_info().hits >= 1
        assert parse_cache_info().misses == 1


class TestAccountingInvariants:
    """The quota and the log must never diverge: every consumed budget
    slot corresponds to exactly one QueryRecord, whatever the outcome."""

    def test_hard_truncation_is_still_logged(self, people_store):
        policy = AccessPolicy(
            max_queries=5, max_result_rows=2, fail_on_truncation=True
        )
        endpoint = SparqlEndpoint(people_store, policy=policy)
        with pytest.raises(ResultTruncated):
            endpoint.select(PREFIX + "SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
        # The query ran and consumed budget, so it must be on the log —
        # marked truncated, with the capped row count the policy allowed.
        assert endpoint.queries_remaining == 4
        assert endpoint.log.query_count == 1
        record = list(endpoint.log)[0]
        assert record.truncated
        assert record.row_count == 2

    def test_budget_and_log_agree_across_outcomes(self, people_store):
        policy = AccessPolicy(
            max_queries=10, max_result_rows=2, fail_on_truncation=True
        )
        endpoint = SparqlEndpoint(people_store, policy=policy)
        endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")
        with pytest.raises(ResultTruncated):
            endpoint.query(PREFIX + "SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
        endpoint.query(PREFIX + "SELECT ?s WHERE { ?s ex:profession ex:Physicist }")
        consumed = policy.max_queries - endpoint.queries_remaining
        assert consumed == endpoint.log.query_count == 3

    def test_charge_cached_consumes_budget_and_logs(self, people_store):
        endpoint = SparqlEndpoint(
            people_store, policy=AccessPolicy(max_queries=2)
        )
        endpoint.charge_cached("SELECT ...", "SELECT", row_count=7)
        assert endpoint.queries_remaining == 1
        assert endpoint.log.query_count == 1
        record = list(endpoint.log)[0]
        assert record.mode == "cached"
        assert record.row_count == 7

    def test_charge_cached_respects_exhausted_budget(self, people_store):
        endpoint = SparqlEndpoint(
            people_store, policy=AccessPolicy(max_queries=1)
        )
        endpoint.query(PREFIX + "ASK { ?s ex:bornIn ?c }")
        with pytest.raises(QueryBudgetExceeded):
            endpoint.charge_cached("SELECT ...", "SELECT", row_count=1)
        # The rejected charge logged nothing, like a rejected query.
        assert endpoint.log.query_count == 1

    def test_data_version_tracks_store_mutations(self, people_store):
        from repro.rdf.triple import Triple

        endpoint = SparqlEndpoint(people_store)
        before = endpoint.data_version
        people_store.add(
            Triple(EX["Nikola_Tesla"], EX.bornIn, EX.Serbia)
        )
        assert endpoint.data_version > before


class TestQueryLogConcurrency:
    def test_aggregate_readers_race_appenders_and_reset(self, people_store):
        """Aggregates read under the log's lock: hammering them during
        concurrent appends and resets must never raise or tear."""
        import threading

        from repro.endpoint.log import QueryLog, QueryRecord

        log = QueryLog()
        stop = threading.Event()
        failures = []

        def appender():
            while not stop.is_set():
                log.record(
                    QueryRecord("q", "SELECT", 3, False, 0.5, 0.001, "single")
                )

        def resetter():
            while not stop.is_set():
                log.reset()

        def reader():
            try:
                while not stop.is_set():
                    assert log.query_count >= 0
                    assert log.total_rows >= 0
                    assert log.total_virtual_seconds >= 0
                    assert log.truncated_count == 0
                    for counts in (log.by_form(), log.by_mode()):
                        assert all(value > 0 for value in counts.values())
                    log.snapshot()
            except Exception as error:  # pragma: no cover - failure path
                failures.append(error)

        threads = [
            threading.Thread(target=target)
            for target in (appender, appender, resetter, reader, reader)
        ]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures
