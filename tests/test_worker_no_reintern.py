"""The parent→worker snapshot handoff never re-interns anything.

The whole point of serving workers from per-shard snapshot files is that
the shared dictionary crosses the process boundary as *bytes on disk*,
not as pickled objects: worker-side IDs are therefore the parent's IDs.
These property tests pin that contract:

* every ID a worker streams back is byte-identical to the parent
  dictionary's — decoding it in the parent and re-encoding the term
  reproduces the exact record the ID maps to, and looking the term up
  again yields the same ID;
* result multisets of worker evaluation equal in-process evaluation
  *as raw ID bindings* (not merely as decoded terms);
* workers never promote their lazy dictionary and never thaw a frozen
  shard index copy-on-write — the read path alone must suffice;
* a cold parent (reopened from the same snapshot) stays lazy too: a
  full process-backend query round-trip promotes nothing on either side.
"""

import multiprocessing
import os
import tempfile
from collections import Counter
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.sparql.ast import (
    GroupGraphPattern,
    OptionalNode,
    TriplePatternNode,
)
from repro.sparql.bindings import IdBinding, Variable
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store.dictionary import encode_term_record

EX = Namespace("http://nointern.test/")

START_METHOD = os.environ.get("REPRO_WORKER_START_METHOD") or None
if START_METHOD and START_METHOD not in multiprocessing.get_all_start_methods():
    pytest.skip(
        f"start method {START_METHOD!r} unsupported on this platform",
        allow_module_level=True,
    )

# Tiny vocabulary so random patterns join; literals exercise every term
# kind through the record encoding.
_iris = st.sampled_from([EX[f"n{index}"] for index in range(6)])
_objects = st.one_of(
    _iris,
    st.sampled_from([Literal("v0"), Literal("v1", language="en"), Literal(7)]),
)
_variables = st.sampled_from([Variable(name) for name in "ab"])
_triples = st.lists(
    st.builds(Triple, _iris, _iris, _objects), min_size=1, max_size=30
)
# Star-shaped groups (co-partitioned on ?s) so the scatter path is taken.
_star_patterns = st.lists(
    st.builds(
        TriplePatternNode,
        st.just(Variable("s")),
        st.one_of(_variables, _iris),
        st.one_of(_variables, _iris),
    ),
    min_size=1,
    max_size=3,
)


def _id_multiset(bindings) -> Counter:
    return Counter(frozenset(binding.items()) for binding in bindings)


class TestNoReintern:
    @given(_triples, _star_patterns, st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_worker_ids_are_parent_ids(self, triples, patterns, optional_tail):
        elements = tuple(patterns)
        if optional_tail and len(elements) > 1:
            elements = elements[:-1] + (
                OptionalNode(GroupGraphPattern((elements[-1],))),
            )
        group = GroupGraphPattern(elements)

        store = ShardedTripleStore(num_shards=2, triples=triples)
        directory = Path(tempfile.mkdtemp(prefix="nointern-")) / "snap"
        with store.serve(directory, start_method=START_METHOD) as executor:
            worker_rows = list(
                executor.run_group(range(store.num_shards), group)
            )
            local_rows = [
                binding
                for shard in store.shards
                for binding in QueryEvaluator(shard)._evaluate_group(
                    group, IdBinding.EMPTY
                )
            ]
            # Identity in ID space, not merely after decoding.
            assert _id_multiset(worker_rows) == _id_multiset(local_rows)

            dictionary = store.dictionary
            for row in worker_rows:
                for _, value in row.items():
                    assert type(value) is int
                    term = dictionary.decode(value)
                    # Byte-identity: the record the parent would write
                    # for this term is the record the ID resolves to.
                    assert dictionary.id_for(term) == value
                    encode_term_record(term)  # must be encodable verbatim

            # The workload above crossed the process boundary as IDs
            # only: no worker interned anything, no shard index thawed.
            for info in executor.ping_all():
                assert info["promoted"] is False
                assert all(info["frozen"].values())

    @given(_triples)
    @settings(max_examples=8, deadline=None)
    def test_cold_parent_round_trip_promotes_nothing(self, triples):
        store = ShardedTripleStore(num_shards=2, triples=triples)
        directory = Path(tempfile.mkdtemp(prefix="nointern-cold-")) / "snap"
        store.save(directory)
        cold = ShardedTripleStore.open(directory)
        with cold.serve(directory, start_method=START_METHOD) as executor:
            evaluator = ShardedQueryEvaluator(
                cold, backend="process", executor=executor
            )
            result = evaluator.evaluate(
                "SELECT ?s ?p ?o WHERE { ?s ?p ?o . "
                "?s <http://nointern.test/n0> ?x }"
            )
            # Results decode through the parent's lazy dictionary
            # without promoting it; workers stayed lazy as well.
            assert not cold.dictionary.is_promoted
            for shard in cold.shards:
                assert shard.is_frozen
            for info in executor.ping_all():
                assert info["promoted"] is False
                assert all(info["frozen"].values())
            assert result is not None
