"""Unit tests for the synthetic world generator."""

import pytest

from repro.rdf.namespace import SAME_AS
from repro.rdf.terms import Literal
from repro.synthetic.generator import WorldGenerator, generate_world
from repro.synthetic.presets import movie_world_spec, music_world_spec

from tests.test_synthetic_schema import minimal_spec, A_NS, B_NS
from repro.synthetic.schema import KBSpec, RelationMapping


class TestGeneration:
    def test_generates_both_kbs(self):
        world = generate_world(minimal_spec())
        assert set(world.kbs) == {"a", "b"}
        assert len(world.kb("a").store) > 0
        assert len(world.kb("b").store) > 0

    def test_deterministic_for_same_seed(self):
        first = generate_world(minimal_spec(seed=5))
        second = generate_world(minimal_spec(seed=5))
        assert set(first.kb("a").store) == set(second.kb("a").store)
        assert set(first.kb("b").store) == set(second.kb("b").store)

    def test_different_seeds_differ(self):
        first = generate_world(minimal_spec(seed=5))
        second = generate_world(minimal_spec(seed=6))
        assert set(first.kb("a").store) != set(second.kb("a").store)

    def test_namespaces_respected(self):
        world = generate_world(minimal_spec())
        for triple in world.kb("a").store.match(predicate=A_NS.birthPlace):
            assert triple.subject in A_NS

    def test_full_retention_keeps_all_facts(self):
        spec = minimal_spec()
        for kb_spec in spec.kb_specs:
            kb_spec.fact_retention = 1.0
        world = generate_world(spec)
        born_at_facts = len(world.canonical_facts["bornAt"])
        assert world.kb("a").store.count(predicate=A_NS.birthPlace) == born_at_facts

    def test_subject_level_retention_drops_whole_subjects(self):
        spec = minimal_spec()
        spec.kb_specs[0].fact_retention = 0.5
        spec.kb_specs[0].retention_mode = "subject"
        spec.canonical_relations[0] = type(spec.canonical_relations[0])(
            "bornAt", subject_type="person", object_type="place", min_objects=2, max_objects=2,
        )
        world = generate_world(spec)
        # Every retained subject keeps both of its facts.
        store = world.kb("a").store
        for subject in store.subjects(A_NS.birthPlace):
            assert len(store.objects_of(subject, A_NS.birthPlace)) == 2

    def test_links_connect_the_two_kbs(self):
        world = generate_world(minimal_spec())
        assert world.links.class_count() > 0
        for cls in world.links.classes():
            namespaces = {("a" if term in A_NS else "b") for term in cls}
            assert namespaces == {"a", "b"}

    def test_links_materialised_as_sameas_triples(self):
        world = generate_world(minimal_spec())
        assert any(True for _ in world.kb("a").store.match(predicate=SAME_AS))
        assert any(True for _ in world.kb("b").store.match(predicate=SAME_AS))

    def test_link_noise_creates_wrong_links(self):
        clean = generate_world(minimal_spec(seed=3, link_noise=0.0))
        noisy = generate_world(minimal_spec(seed=3, link_noise=0.5))

        def wrong_links(world):
            wrong = 0
            for cls in world.links.classes():
                locals_a = {t.local_name for t in cls if t in A_NS}
                locals_b = {t.local_name for t in cls if t in B_NS}
                if locals_a != locals_b:
                    wrong += 1
            return wrong

        assert wrong_links(clean) == 0
        assert wrong_links(noisy) > 0

    def test_noise_relations_generated(self):
        spec = minimal_spec(
            kb_specs=[
                KBSpec("a", A_NS, mappings=[RelationMapping("noiseRel", (), noise_fact_count=12)]),
                KBSpec("b", B_NS, mappings=[RelationMapping("residence", ("bornAt",))]),
            ]
        )
        world = generate_world(spec)
        assert 0 < world.kb("a").store.count(predicate=A_NS.noiseRel) <= 12

    def test_describe_mentions_sizes(self):
        world = generate_world(minimal_spec())
        text = world.describe()
        assert "triples" in text and "gold subsumptions" in text

    def test_kb_pair_and_names(self):
        world = generate_world(minimal_spec())
        first, second = world.kb_pair()
        assert (first.name, second.name) == world.names() == ("a", "b")

    def test_unknown_kb_lookup(self):
        world = generate_world(minimal_spec())
        with pytest.raises(Exception):
            world.kb("nope")


class TestPresetWorlds:
    def test_movie_world_has_expected_relations(self, movie_world):
        imdb_names = {info.iri.local_name for info in movie_world.kb("imdb").relations()}
        filmdb_names = {info.iri.local_name for info in movie_world.kb("filmdb").relations()}
        assert {"hasDirector", "hasProducer", "hasTitle"} <= imdb_names
        assert {"directedBy", "producedBy", "title"} <= filmdb_names

    def test_movie_world_gold_excludes_the_trap(self, movie_world):
        truth = movie_world.ground_truth
        imdb_ns = movie_world.kb("imdb").namespace
        filmdb_ns = movie_world.kb("filmdb").namespace
        assert truth.contains("imdb", imdb_ns.hasDirector, "filmdb", filmdb_ns.directedBy)
        assert not truth.contains("imdb", imdb_ns.hasProducer, "filmdb", filmdb_ns.directedBy)

    def test_movie_world_producer_director_overlap_exists(self, movie_world):
        # The trap only exists if producers often direct: check the overlap.
        imdb = movie_world.kb("imdb").store
        imdb_ns = movie_world.kb("imdb").namespace
        shared = 0
        for triple in imdb.match(predicate=imdb_ns.hasProducer):
            if triple.object in imdb.objects_of(triple.subject, imdb_ns.hasDirector):
                shared += 1
        assert shared > 10

    def test_music_world_creator_is_union(self, music_world):
        worksdb = music_world.kb("worksdb")
        musicbrainz = music_world.kb("musicbrainz")
        truth = music_world.ground_truth
        assert truth.contains(
            "musicbrainz", musicbrainz.namespace.composerOf, "worksdb", worksdb.namespace.creatorOf
        )
        assert truth.contains(
            "musicbrainz", musicbrainz.namespace.writerOf, "worksdb", worksdb.namespace.creatorOf
        )
        assert not truth.contains(
            "worksdb", worksdb.namespace.creatorOf, "musicbrainz", musicbrainz.namespace.composerOf
        )

    def test_literal_styles_differ_between_kbs(self, movie_world):
        imdb = movie_world.kb("imdb")
        filmdb = movie_world.kb("filmdb")
        imdb_titles = {
            t.object.lexical for t in imdb.store.match(predicate=imdb.namespace.hasTitle)
        }
        filmdb_titles = {
            t.object.lexical for t in filmdb.store.match(predicate=filmdb.namespace.title)
        }
        assert any(" " in title for title in imdb_titles)
        assert all("_" in title or " " not in title for title in filmdb_titles)

    def test_generator_reuse_is_safe(self):
        spec = movie_world_spec(films=20, people=30)
        generator = WorldGenerator(spec)
        world = generator.generate()
        assert len(world.kb("imdb").store) > 0
