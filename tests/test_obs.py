"""Unit tests for the observability layer (``repro.obs``).

Covers the three obs modules in isolation — validated env config,
metrics registry (counters / gauges / fixed-bucket histograms with
percentile snapshots) and the trace recorder (span trees, stream spans,
worker-payload round-trips) — plus the endpoint surfaces built on them:
``profile()``, the ``REPRO_TRACE`` JSON-lines sink, the extended query
log export and ``WaveScheduler.wave_report()``.
"""

import json
import threading

import pytest

from repro.endpoint.policy import AccessPolicy
from repro.endpoint.simulation import SimulatedSparqlEndpoint, WaveScheduler
from repro.errors import ConfigError, QueryBudgetExceeded
from repro.obs import config
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceRecorder,
    count_rows,
    recorder,
)
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.store.triplestore import TripleStore

EX = Namespace("http://obs.test/")

JOIN_QUERY = (
    "SELECT ?s ?a ?b WHERE { ?s <http://obs.test/p0> ?a . "
    "?s <http://obs.test/p1> ?b }"
)
COUNT_QUERY = (
    "SELECT (COUNT(*) AS ?c) WHERE { ?s <http://obs.test/p0> ?a . "
    "?s <http://obs.test/p1> ?b }"
)


def _triples(count=60):
    triples = []
    for i in range(count):
        triples.append(Triple(EX[f"s{i}"], EX.p0, EX[f"a{i % 7}"]))
        triples.append(Triple(EX[f"s{i}"], EX.p1, EX[f"b{i % 5}"]))
    return triples


# ---------------------------------------------------------------------- #
# config: validated REPRO_* parsing
# ---------------------------------------------------------------------- #
class TestConfig:
    def test_env_int_unset_and_blank_mean_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INT", raising=False)
        assert config.env_int("REPRO_TEST_INT", 7) == 7
        monkeypatch.setenv("REPRO_TEST_INT", "   ")
        assert config.env_int("REPRO_TEST_INT", 7) == 7

    def test_env_int_parses_and_strips(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", " 42 ")
        assert config.env_int("REPRO_TEST_INT", 7) == 42

    def test_env_int_rejects_garbage_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "bogus")
        with pytest.raises(ConfigError, match="REPRO_TEST_INT.*'bogus'"):
            config.env_int("REPRO_TEST_INT", 7)

    def test_env_int_enforces_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "0")
        with pytest.raises(ConfigError, match="must be >= 1"):
            config.env_int("REPRO_TEST_INT", 7, minimum=1)

    def test_env_flag_vocabulary(self, monkeypatch):
        for raw in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_TEST_FLAG", raw)
            assert config.env_flag("REPRO_TEST_FLAG") is True, raw
        for raw in ("0", "false", "No", "off", ""):
            monkeypatch.setenv("REPRO_TEST_FLAG", raw)
            assert config.env_flag("REPRO_TEST_FLAG") is False, raw
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert config.env_flag("REPRO_TEST_FLAG", default=True) is True

    def test_env_flag_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "maybe")
        with pytest.raises(ConfigError, match="REPRO_TEST_FLAG"):
            config.env_flag("REPRO_TEST_FLAG")

    def test_env_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_PATH", raising=False)
        assert config.env_path("REPRO_TEST_PATH") is None
        monkeypatch.setenv("REPRO_TEST_PATH", "  ")
        assert config.env_path("REPRO_TEST_PATH") is None
        monkeypatch.setenv("REPRO_TEST_PATH", " /tmp/t.jsonl ")
        assert config.env_path("REPRO_TEST_PATH") == "/tmp/t.jsonl"

    def test_engine_knobs_wired_to_validators(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_WINDOW", "0")
        with pytest.raises(ConfigError, match="REPRO_RESULT_WINDOW"):
            config.result_window()
        monkeypatch.setenv("REPRO_BROADCAST_LIMIT", "-1")
        with pytest.raises(ConfigError, match="REPRO_BROADCAST_LIMIT"):
            config.broadcast_limit()
        # "0" previously meant *enabled* for REPRO_NO_NUMPY (any
        # non-empty string); it now parses as a proper boolean.
        monkeypatch.setenv("REPRO_NO_NUMPY", "0")
        assert config.numpy_disabled() is False
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert config.numpy_disabled() is True
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert config.trace_path() is None


# ---------------------------------------------------------------------- #
# metrics: counters, gauges, histograms, registry switch
# ---------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_and_gauge_basics(self):
        reg = MetricsRegistry()
        reg.increment("hits")
        reg.increment("hits", 4)
        assert reg.value("hits") == 5
        reg.set_gauge("depth", 3.5)
        assert reg.value("depth") == 3.5
        reg.gauge("depth").inc(0.5)
        assert reg.value("depth") == 4.0
        assert reg.value("never-written") == 0

    def test_single_sample_histogram_reports_it_everywhere(self):
        hist = Histogram("lat")
        hist.record(0.25)
        for q in (50, 95, 99):
            assert hist.percentile(q) == pytest.approx(0.25)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == snap["p99"] == pytest.approx(0.25)

    def test_percentiles_are_ordered_and_clamped(self):
        hist = Histogram("lat")
        samples = [0.001 * (i + 1) for i in range(200)]
        for value in samples:
            hist.record(value)
        p50, p95, p99 = (hist.percentile(q) for q in (50, 95, 99))
        assert min(samples) <= p50 <= p95 <= p99 <= max(samples)
        # The geometric buckets are coarse; percentile estimates should
        # still land within one bucket of the exact answer.
        assert p50 == pytest.approx(0.1, rel=0.6)
        assert p99 >= 0.15

    def test_empty_histogram(self):
        hist = Histogram("lat")
        assert hist.percentile(50) is None
        assert hist.snapshot() == {"count": 0}

    def test_registry_disable_turns_hot_paths_off(self):
        reg = MetricsRegistry(enabled=False)
        reg.increment("hits")
        reg.observe("lat", 0.1)
        reg.set_gauge("depth", 9)
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}
        reg.set_enabled(True)
        reg.increment("hits")
        assert reg.value("hits") == 1

    def test_prefix_reads_and_reset(self):
        reg = MetricsRegistry()
        reg.increment("scatter.mode.fold", 2)
        reg.increment("scatter.mode.ship")
        reg.increment("other")
        assert reg.counters_with_prefix("scatter.mode.") == {"fold": 2, "ship": 1}
        reg.reset()
        assert reg.snapshot()["counters"] == {}

    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                reg.increment("n")
                reg.observe("lat", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert reg.value("n") == 8000
        assert reg.histogram("lat").count == 8000


# ---------------------------------------------------------------------- #
# trace: spans, recorder, payload round-trips
# ---------------------------------------------------------------------- #
class TestSpan:
    def test_finish_is_idempotent(self):
        span = Span("stage")
        span.finish()
        first = span.duration
        span.finish(status="error", error=ValueError("late"))
        assert span.duration == first and span.status == "ok"

    def test_tree_introspection(self):
        root = Span("query")
        child = root.child("scatter", shards=2)
        child.child("worker:exec")
        child.child("worker:exec")
        assert [s.name for s in root.iter_spans()] == [
            "query", "scatter", "worker:exec", "worker:exec",
        ]
        assert root.find("scatter") is child
        assert root.find("missing") is None
        assert len(root.find_all("worker:exec")) == 2

    def test_payload_round_trip_preserves_worker_provenance(self):
        span = Span("worker:exec", {"shard": 3}, process="worker")
        span.child("decode").finish()
        span.finish(status="error", error=RuntimeError("boom"))
        rebuilt = Span.from_payload(span.to_dict())
        assert rebuilt.name == "worker:exec"
        assert rebuilt.process == "worker"
        assert rebuilt.attributes == {"shard": 3}
        assert rebuilt.status == "error" and "boom" in rebuilt.error
        assert rebuilt.duration == pytest.approx(span.duration, abs=1e-3)
        assert [c.name for c in rebuilt.children] == ["decode"]
        assert "worker:exec" in rebuilt.describe()

    def test_null_span_absorbs_everything(self):
        NULL_SPAN.annotate(rows=1)
        assert NULL_SPAN.child("x") is NULL_SPAN
        NULL_SPAN.finish(status="error", error=ValueError())


class TestTraceRecorder:
    def test_inactive_recorder_costs_nothing_visible(self):
        tracer = TraceRecorder()
        assert tracer.active is False
        assert tracer.current() is None
        with tracer.span("stage") as span:
            assert span is NULL_SPAN
        assert tracer.stream_span("stage") is None
        assert tracer.attach(Span("orphan")) is False

    def test_begin_end_builds_one_tree(self):
        tracer = TraceRecorder()
        root = tracer.begin("query")
        with tracer.span("parse"):
            pass
        with tracer.span("evaluate", backend="thread") as evaluate:
            inner = tracer.stream_span("scatter", shards=2)
            assert inner in evaluate.children
            inner.finish()
        tracer.end(root)
        assert tracer.active is False
        assert [c.name for c in root.children] == ["parse", "evaluate"]
        assert root.duration is not None

    def test_end_closes_abandoned_inner_spans(self):
        tracer = TraceRecorder()
        root = tracer.begin("query")
        tracer.begin("stage")  # never explicitly ended
        tracer.end(root, status="error", error=RuntimeError("crash"))
        assert tracer.active is False
        assert root.status == "error"
        assert root.children[0].duration is not None

    def test_span_context_records_exceptions(self):
        tracer = TraceRecorder()
        root = tracer.begin("query")
        with pytest.raises(ValueError):
            with tracer.span("evaluate"):
                raise ValueError("bad query")
        assert root.children[0].status == "error"
        assert "bad query" in root.children[0].error
        tracer.end(root)

    def test_count_rows_annotates_and_finishes(self):
        span = Span("step:join")
        assert list(count_rows(span, iter([1, 2, 3]))) == [1, 2, 3]
        assert span.attributes["rows"] == 3 and span.status == "ok"

    def test_count_rows_early_close_is_clean(self):
        span = Span("scatter")
        stream = count_rows(span, iter(range(100)))
        next(stream)
        stream.close()
        assert span.attributes == {"rows": 1, "closed_early": True}
        assert span.status == "ok"

    def test_count_rows_marks_errors(self):
        span = Span("scatter")

        def explode():
            yield 1
            raise RuntimeError("worker died")

        stream = count_rows(span, explode())
        next(stream)
        with pytest.raises(RuntimeError):
            next(stream)
        assert span.status == "error" and "worker died" in span.error


# ---------------------------------------------------------------------- #
# endpoint surfaces: profile(), REPRO_TRACE, log export, wave_report
# ---------------------------------------------------------------------- #
class TestEndpointObservability:
    def test_profile_returns_one_tree_with_engine_stages(self):
        store = ShardedTripleStore(num_shards=2, triples=_triples())
        endpoint = SimulatedSparqlEndpoint(store)
        profile = endpoint.profile(JOIN_QUERY)
        assert profile.error is None
        assert len(profile.result) == len(endpoint.query(JOIN_QUERY))
        trace = profile.trace
        assert trace.name == "query" and trace.duration is not None
        assert trace.find("parse") is not None
        assert trace.find("evaluate") is not None
        scatter = trace.find("scatter")
        assert scatter is not None
        assert scatter.attributes["rows"] == len(profile.result)
        assert trace.attributes["mode"] == "scatter"
        assert "scatter" in profile.describe()
        # The recorder's stack is clean afterwards: plain queries do not
        # accidentally nest under a leaked profile root.
        assert recorder().active is False

    def test_profile_captures_endpoint_family_errors(self):
        endpoint = SimulatedSparqlEndpoint(
            TripleStore(triples=_triples()),
            policy=AccessPolicy(max_queries=0),
        )
        profile = endpoint.profile(JOIN_QUERY)
        assert profile.result is None
        assert isinstance(profile.error, QueryBudgetExceeded)
        assert profile.trace.status == "error"
        assert recorder().active is False

    def test_profile_reraises_unrelated_errors(self):
        endpoint = SimulatedSparqlEndpoint(TripleStore(triples=_triples()))
        with pytest.raises(Exception):
            endpoint.profile("SELEC bogus")
        assert recorder().active is False

    def test_repro_trace_appends_json_lines(self, tmp_path, monkeypatch):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(sink))
        store = ShardedTripleStore(num_shards=2, triples=_triples())
        endpoint = SimulatedSparqlEndpoint(store)
        endpoint.query(JOIN_QUERY)
        endpoint.query(COUNT_QUERY)
        lines = sink.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["name"] == "query"
        assert first["attributes"]["mode"] == "scatter"
        assert second["attributes"]["mode"] in ("fold", "fast-count")
        stages = [c["name"] for c in first["children"]]
        assert "parse" in stages and "evaluate" in stages

    def test_access_log_export_carries_mode_and_latency(self, tmp_path):
        store = ShardedTripleStore(num_shards=2, triples=_triples())
        endpoint = SimulatedSparqlEndpoint(store)
        endpoint.query(JOIN_QUERY)
        endpoint.query(COUNT_QUERY)
        assert endpoint.log.by_mode().get("scatter") == 1
        path = tmp_path / "access.jsonl"
        assert endpoint.export_access_log(path) == 2
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["mode"] for r in records] == [
            "scatter",
            records[1]["mode"],  # fold or fast-count depending on plan
        ]
        assert all(r["duration_ms"] >= 0 for r in records)
        assert records[0]["rows"] == len(endpoint.query(JOIN_QUERY))

    def test_wave_report_percentiles_per_mode(self):
        store = ShardedTripleStore(num_shards=2, triples=_triples())
        endpoint = SimulatedSparqlEndpoint(store)
        with WaveScheduler(endpoint, max_workers=4) as scheduler:
            result = scheduler.run_wave([JOIN_QUERY] * 4 + [COUNT_QUERY] * 2)
        assert not result.errors
        report = scheduler.wave_report()
        assert report["queries"] == 6
        assert report["errors"] == 0 and report["crashes"] == 0
        for key in ("p50", "p95", "p99"):
            assert report["latency"][key] >= 0
        assert report["modes"]["scatter"]["count"] == 4
        assert sum(m["count"] for m in report["modes"].values()) == 6

    def test_wave_report_counts_failures(self):
        endpoint = SimulatedSparqlEndpoint(
            TripleStore(triples=_triples()),
            policy=AccessPolicy(max_queries=1),
        )
        with WaveScheduler(endpoint, max_workers=2) as scheduler:
            result = scheduler.run_wave([JOIN_QUERY, JOIN_QUERY])
        assert len(result.errors) == 1
        report = scheduler.wave_report()
        assert report["queries"] == 1
        assert report["errors"] == 1
        assert report["crashes"] == 0
