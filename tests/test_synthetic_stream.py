"""Tests for the streaming scale-world generator."""

import pytest

from repro.errors import SyntheticDataError
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store.dictionary import TermDictionary
from repro.synthetic.stream import (
    SCALE_PRESETS,
    ScaleWorldSpec,
    _draw_columns_py,
    _intern_vocabulary,
    generate_scale_world,
    scale_world_spec,
)

SPEC = scale_world_spec(3000)


class TestSpec:
    def test_named_presets(self):
        for key, triples in SCALE_PRESETS.items():
            spec = scale_world_spec(key)
            assert spec.triples == triples
            assert spec.entities == max(64, triples // 8)

    def test_explicit_size(self):
        spec = scale_world_spec(4321)
        assert spec.triples == 4321
        assert spec.name == "scale-4321"

    def test_unknown_preset_rejected(self):
        with pytest.raises(SyntheticDataError):
            scale_world_spec("11k")

    @pytest.mark.parametrize(
        "fields",
        [
            {"triples": 0},
            {"entities": 1},
            {"predicates": 0},
            {"predicate_skew": -1.0},
        ],
    )
    def test_invalid_fields_rejected(self, fields):
        base = {"name": "bad", "triples": 10, "entities": 8}
        base.update(fields)
        with pytest.raises(SyntheticDataError):
            ScaleWorldSpec(**base)

    def test_canonical_dict_round_trips_identity(self):
        assert scale_world_spec(3000).canonical_dict() == SPEC.canonical_dict()
        assert scale_world_spec(3000, seed=9).canonical_dict() != SPEC.canonical_dict()

    def test_predicate_thresholds_cumulative(self):
        thresholds = SPEC.predicate_thresholds()
        assert len(thresholds) == SPEC.predicates
        assert thresholds == sorted(thresholds)
        assert thresholds[-1] == 1.0


class TestGeneration:
    def test_deterministic(self):
        first = generate_scale_world(SPEC)
        second = generate_scale_world(SPEC)
        assert set(first.store.match_ids()) == set(second.store.match_ids())

    def test_store_is_frozen_and_lazy(self):
        world = generate_scale_world(SPEC)
        # The streaming path must never materialise per-fact Triple
        # objects: the store arrives frozen with lazy triple views.
        assert world.store.is_frozen
        assert world.store._lazy_triples
        assert world.triples > SPEC.triples * 0.99

    def test_numpy_and_pure_python_columns_identical(self):
        np = pytest.importorskip("numpy")
        from repro.synthetic.stream import _draw_columns_np

        dictionary = TermDictionary()
        entity_ids, predicate_ids = _intern_vocabulary(SPEC, dictionary)
        fast = _draw_columns_np(np, SPEC, entity_ids, predicate_ids)
        slow = _draw_columns_py(SPEC, entity_ids, predicate_ids)
        for fast_column, slow_column in zip(fast, slow):
            assert list(fast_column) == list(slow_column)

    def test_predicates_are_skewed(self):
        world = generate_scale_world(SPEC)
        namespace = SPEC.namespace
        dictionary = world.dictionary
        head = dictionary.id_for(namespace.term("p0"))
        tail = dictionary.id_for(namespace.term(f"p{SPEC.predicates - 1}"))
        head_count = sum(1 for _ in world.store.match_ids(predicate=head))
        tail_count = sum(1 for _ in world.store.match_ids(predicate=tail))
        assert head_count > tail_count > 0

    def test_sharded_equals_single(self):
        single = generate_scale_world(SPEC)
        sharded = generate_scale_world(SPEC, shard_count=4)
        shard_ids = sorted(
            triple for shard in sharded.store.shards for triple in shard.match_ids()
        )
        assert shard_ids == sorted(single.store.match_ids())
        for index, shard in enumerate(sharded.store.shards):
            for subject, _, _ in shard.match_ids():
                assert sharded.store.shard_index_for_subject(subject) == index

    def test_process_parallel_build_equals_inline(self):
        inline = generate_scale_world(SPEC, shard_count=4)
        parallel = generate_scale_world(SPEC, shard_count=4, processes=2)
        inline_ids = sorted(
            triple for shard in inline.store.shards for triple in shard.match_ids()
        )
        parallel_ids = sorted(
            triple for shard in parallel.store.shards for triple in shard.match_ids()
        )
        assert inline_ids == parallel_ids

    def test_shared_dictionary(self):
        dictionary = TermDictionary()
        world = generate_scale_world(SPEC, dictionary=dictionary)
        assert world.dictionary is dictionary
        assert len(dictionary) == SPEC.entities + SPEC.predicates

    def test_queries_find_joins(self):
        world = generate_scale_world(SPEC)
        namespace = SPEC.namespace
        query = (
            f"SELECT * WHERE {{ ?a <{namespace.term('p0').value}> ?b . "
            f"?b <{namespace.term('p1').value}> ?c }}"
        )
        rows = QueryEvaluator(world.store).evaluate(query)
        assert len(rows) > 0

    def test_sharded_queries_match_single(self):
        single = generate_scale_world(SPEC)
        sharded = generate_scale_world(SPEC, shard_count=3)
        namespace = SPEC.namespace
        query = (
            f"SELECT * WHERE {{ ?a <{namespace.term('p1').value}> ?b . "
            f"?b <{namespace.term('p2').value}> ?c }}"
        )
        single_rows = {
            frozenset(row.items())
            for row in QueryEvaluator(single.store).evaluate(query)
        }
        sharded_rows = {
            frozenset(row.items())
            for row in ShardedQueryEvaluator(sharded.store).evaluate(query)
        }
        assert sharded_rows == single_rows

    def test_describe_mentions_rate(self):
        world = generate_scale_world(SPEC)
        assert "triples/s" in world.describe()

    def test_invalid_shard_count(self):
        with pytest.raises(SyntheticDataError):
            generate_scale_world(SPEC, shard_count=0)
