"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.sparql.lexer import Token, tokenize


def kinds(query: str):
    return [token.kind for token in tokenize(query) if token.kind != "EOF"]


def values(query: str):
    return [token.value for token in tokenize(query) if token.kind != "EOF"]


class TestTokenize:
    def test_keywords_are_recognised(self):
        assert kinds("SELECT WHERE") == ["KEYWORD", "KEYWORD"]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Where")
        assert tokens[0].is_keyword("SELECT")
        assert tokens[1].is_keyword("WHERE")

    def test_variables(self):
        tokens = tokenize("?x $y")
        assert [t.kind for t in tokens[:2]] == ["VAR", "VAR"]
        assert [t.value for t in tokens[:2]] == ["x", "y"]

    def test_iri(self):
        token = tokenize("<http://example.org/a>")[0]
        assert token.kind == "IRI"
        assert token.value == "http://example.org/a"

    def test_prefixed_name(self):
        token = tokenize("yago:wasBornIn")[0]
        assert token.kind == "PNAME"
        assert token.value == "yago:wasBornIn"

    def test_string_with_escapes(self):
        token = tokenize(r'"say \"hi\"\n"')[0]
        assert token.kind == "STRING"
        assert token.value == 'say "hi"\n'

    def test_single_quoted_string(self):
        token = tokenize("'hello'")[0]
        assert token.kind == "STRING"
        assert token.value == "hello"

    def test_language_tag(self):
        assert kinds('"ciao"@it') == ["STRING", "LANGTAG"]

    def test_datatype_marker(self):
        assert kinds('"5"^^xsd:integer') == ["STRING", "PUNCT", "PNAME"]

    def test_numbers(self):
        assert kinds("42 3.14 -7 1e6") == ["NUMBER"] * 4

    def test_builtins(self):
        tokens = tokenize("REGEX regex Bound")
        assert all(t.kind == "BUILTIN" for t in tokens[:3])
        assert tokens[1].value == "REGEX"

    def test_punctuation(self):
        assert values("{ } ( ) . ; , * && || != <= >=") == [
            "{", "}", "(", ")", ".", ";", ",", "*", "&&", "||", "!=", "<=", ">=",
        ]

    def test_comparison_less_than_not_confused_with_iri(self):
        assert values("?x < 5") == ["x", "<", "5"]

    def test_comments_skipped(self):
        assert kinds("SELECT # comment with ?var and <iri>\n?x") == ["KEYWORD", "VAR"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("SELECT ?x\nWHERE { }")
        where = next(t for t in tokens if t.is_keyword("WHERE"))
        assert where.line == 2
        assert where.column == 1

    def test_eof_token_present(self):
        assert tokenize("SELECT")[-1].kind == "EOF"

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @@@")

    def test_is_punct_helper(self):
        token = Token("PUNCT", "{", 1, 1)
        assert token.is_punct("{", "}")
        assert not token.is_punct("(")
