"""Property-based cross-check: sharded scatter/gather vs single-store evaluation.

For random stores and random basic graph patterns, the sharded evaluator
(at 1, 2 and 8 shards) must return solution multisets identical to both
the single-store *planned* evaluator and the *naive nested-loop*
reference — including ASK, LIMIT, COUNT / COUNT DISTINCT, and VALUES
rows with UNDEF entries.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard import ShardedTripleStore
from repro.sparql.ast import (
    CountExpression,
    GroupGraphPattern,
    ProjectionItem,
    SelectQuery,
    AskQuery,
    TriplePatternNode,
    ValuesNode,
)
from repro.sparql.bindings import Variable
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store.triplestore import TripleStore

EX = Namespace("http://shardprop.test/")

SHARD_COUNTS = (1, 2, 8)

# A deliberately tiny vocabulary so random BGPs actually join: few IRIs,
# few variables, dense random stores (mirrors test_property_based.py).
_iris = st.sampled_from([EX[f"n{index}"] for index in range(6)])
_variables = st.sampled_from([Variable(name) for name in "abc"])
_pattern_terms = st.one_of(_variables, _iris)
_patterns = st.builds(TriplePatternNode, _pattern_terms, _pattern_terms, _pattern_terms)
_triples = st.lists(st.builds(Triple, _iris, _iris, _iris), max_size=50)
# VALUES rows may contain None (UNDEF): some solutions leave a variable
# unbound, which both the planner and the shard router must respect.
_values_nodes = st.lists(
    st.tuples(st.one_of(st.none(), _iris), st.one_of(st.none(), _iris)),
    min_size=1,
    max_size=3,
).map(
    lambda rows: ValuesNode(variables=(Variable("a"), Variable("b")), rows=tuple(rows))
)


def _multiset(result) -> Counter:
    return Counter(frozenset(row.items()) for row in result)


def _evaluators(triples):
    """Single-store planned + naive, and one sharded evaluator per count."""
    single = TripleStore(triples=triples)
    references = (
        QueryEvaluator(single),
        QueryEvaluator(single, use_planner=False),
    )
    sharded = tuple(
        ShardedQueryEvaluator(ShardedTripleStore(num_shards=count, triples=triples))
        for count in SHARD_COUNTS
    )
    return references, sharded


def _assert_all_agree(query, triples):
    (planned, naive), sharded = _evaluators(triples)
    expected = _multiset(planned.evaluate(query))
    assert expected == _multiset(naive.evaluate(query))
    for evaluator in sharded:
        assert _multiset(evaluator.evaluate(query)) == expected, (
            f"shards={evaluator.store.num_shards}"
        )


class TestShardedSelectEquivalence:
    @given(_triples, st.lists(_patterns, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_select_all_matches_both_references(self, triples, patterns):
        query = SelectQuery(
            projection=(),
            where=GroupGraphPattern(tuple(patterns)),
            select_all=True,
        )
        _assert_all_agree(query, triples)

    @given(_triples, _values_nodes, st.lists(_patterns, min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_values_with_undef_matches(self, triples, values, patterns):
        query = SelectQuery(
            projection=(),
            where=GroupGraphPattern((values,) + tuple(patterns)),
            select_all=True,
        )
        _assert_all_agree(query, triples)

    @given(_triples, st.lists(_patterns, min_size=2, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_distinct_matches(self, triples, patterns):
        query = SelectQuery(
            projection=(),
            where=GroupGraphPattern(tuple(patterns)),
            select_all=True,
            distinct=True,
        )
        _assert_all_agree(query, triples)


class TestShardedAskLimitCount:
    @given(_triples, st.lists(_patterns, min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_ask_matches(self, triples, patterns):
        query = AskQuery(where=GroupGraphPattern(tuple(patterns)))
        (planned, naive), sharded = _evaluators(triples)
        expected = bool(planned.evaluate(query))
        assert expected == bool(naive.evaluate(query))
        for evaluator in sharded:
            assert bool(evaluator.evaluate(query)) == expected

    @given(_triples, st.lists(_patterns, min_size=1, max_size=3),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=50, deadline=None)
    def test_limit_page_is_a_valid_subset(self, triples, patterns, limit):
        where = GroupGraphPattern(tuple(patterns))
        full = SelectQuery(projection=(), where=where, select_all=True)
        paged = SelectQuery(projection=(), where=where, select_all=True, limit=limit)
        (planned, _), sharded = _evaluators(triples)
        universe = _multiset(planned.evaluate(full))
        expected_size = min(limit, sum(universe.values()))
        for evaluator in sharded:
            page = _multiset(evaluator.evaluate(paged))
            assert sum(page.values()) == expected_size
            # Every returned row (with its multiplicity) exists globally.
            for row, count in page.items():
                assert universe[row] >= count

    @given(_triples, st.lists(_patterns, min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_count_and_count_distinct_match(self, triples, patterns):
        projection = (
            ProjectionItem(expression=CountExpression(), alias=Variable("c")),
            ProjectionItem(
                expression=CountExpression(variable=Variable("a"), distinct=True),
                alias=Variable("d"),
            ),
        )
        query = SelectQuery(
            projection=projection,
            where=GroupGraphPattern(tuple(patterns)),
        )
        _assert_all_agree(query, triples)
