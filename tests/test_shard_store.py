"""Unit tests for the subject-range-sharded triple store."""

import random

import pytest

from repro.errors import StoreError
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple
from repro.shard import ShardedTripleStore, ShardRouter
from repro.store import TripleStore

EX = Namespace("http://shard.test/")


def sample_triples(count=400, subjects=50, predicates=5, objects=30, seed=7):
    rng = random.Random(seed)
    triples = [
        Triple(
            EX[f"s{rng.randint(0, subjects)}"],
            EX[f"p{rng.randint(0, predicates)}"],
            EX[f"o{rng.randint(0, objects)}"],
        )
        for _ in range(count)
    ]
    triples += [Triple(EX[f"s{i}"], EX.label, Literal(f"name {i}")) for i in range(20)]
    return triples


@pytest.fixture(scope="module")
def triples():
    return sample_triples()


@pytest.fixture(scope="module")
def single(triples):
    return TripleStore(triples=triples)


class TestPartitioning:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_same_content_as_single_store(self, triples, single, num_shards):
        sharded = ShardedTripleStore(num_shards=num_shards, triples=triples)
        assert len(sharded) == len(single)
        assert set(sharded) == set(single)

    def test_every_triple_lives_in_its_routed_shard(self, triples):
        sharded = ShardedTripleStore(num_shards=4, triples=triples)
        for shard_index, shard in enumerate(sharded.shards):
            for triple in shard:
                sid = sharded.term_id(triple.subject)
                assert sharded.shard_index_for_subject(sid) == shard_index

    def test_subject_ranges_are_contiguous_and_disjoint(self, triples):
        sharded = ShardedTripleStore(num_shards=4, triples=triples)
        per_shard = [
            {sharded.term_id(t.subject) for t in shard} for shard in sharded.shards
        ]
        for earlier, later in zip(per_shard, per_shard[1:]):
            assert not (earlier & later)
            if earlier and later:
                assert max(earlier) < min(later)

    def test_shards_are_reasonably_balanced(self, triples):
        sharded = ShardedTripleStore(num_shards=4, triples=triples)
        sizes = sharded.shard_sizes()
        assert all(size > 0 for size in sizes)
        assert max(sizes) < len(sharded)  # nothing degenerated to one shard

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(StoreError):
            ShardedTripleStore(num_shards=0)

    def test_from_store(self, triples, single):
        sharded = ShardedTripleStore.from_store(single, num_shards=4)
        assert set(sharded) == set(single)
        assert sharded.num_shards == 4


class TestMutation:
    def test_adds_before_bulk_load_are_rehomed(self, triples, single):
        sharded = ShardedTripleStore(num_shards=4)
        for triple in triples[:15]:
            sharded.add(triple)
        sharded.bulk_load(triples[15:])
        assert set(sharded) == set(single)
        for shard_index, shard in enumerate(sharded.shards):
            for triple in shard:
                sid = sharded.term_id(triple.subject)
                assert sharded.shard_index_for_subject(sid) == shard_index

    def test_parallel_and_serial_builds_agree(self, triples):
        serial = ShardedTripleStore(num_shards=4)
        serial.bulk_load(triples, parallel=False)
        parallel = ShardedTripleStore(num_shards=4)
        parallel.bulk_load(triples, parallel=True)
        assert set(serial) == set(parallel)
        assert serial.shard_sizes() == parallel.shard_sizes()

    def test_add_remove_contains_route_consistently(self, triples):
        sharded = ShardedTripleStore(num_shards=4, triples=triples[:100])
        extra = Triple(EX.brand_new_subject, EX.p0, EX.o0)
        assert extra not in sharded
        assert sharded.add(extra)
        assert not sharded.add(extra)  # duplicate
        assert extra in sharded
        assert sharded.remove(extra)
        assert extra not in sharded
        assert not sharded.remove(extra)

    def test_clear_unfreezes_boundaries(self, triples):
        sharded = ShardedTripleStore(num_shards=4, triples=triples)
        assert sharded.boundaries
        sharded.clear()
        assert len(sharded) == 0
        sharded.bulk_load(triples[:50])
        assert len(sharded) == len(set(triples[:50]))

    def test_data_version_bumps_on_mutation(self, triples):
        sharded = ShardedTripleStore(num_shards=2, triples=triples[:20])
        version = sharded.data_version
        extra = Triple(EX.vx, EX.vy, EX.vz)
        sharded.add(extra)
        assert sharded.data_version > version
        version = sharded.data_version
        sharded.remove(extra)
        assert sharded.data_version > version

    def test_rejects_non_triple(self):
        sharded = ShardedTripleStore(num_shards=2)
        with pytest.raises(StoreError):
            sharded.add("not a triple")
        with pytest.raises(StoreError):
            sharded.bulk_load(["not a triple"])


class TestQuerySurface:
    @pytest.mark.parametrize("num_shards", [2, 8])
    def test_match_shapes_agree_with_single_store(self, triples, single, num_shards):
        sharded = ShardedTripleStore(num_shards=num_shards, triples=triples)
        subject, predicate, obj = EX.s3, EX.p1, EX.o5
        for pattern in [
            dict(subject=subject),
            dict(predicate=predicate),
            dict(object=obj),
            dict(subject=subject, predicate=predicate),
            dict(predicate=predicate, object=obj),
            dict(subject=subject, object=obj),
            dict(),
        ]:
            assert set(sharded.match(**pattern)) == set(single.match(**pattern))
            assert sharded.count(**pattern) == single.count(**pattern)

    def test_unknown_term_matches_nothing(self, triples):
        sharded = ShardedTripleStore(num_shards=4, triples=triples)
        assert list(sharded.match(subject=EX.never_seen)) == []
        assert sharded.count(subject=EX.never_seen) == 0

    def test_subject_runs_concatenate_sorted(self, triples):
        sharded = ShardedTripleStore(num_shards=4, triples=triples)
        pid = sharded.term_id(EX.p1)
        object_ids = set(sharded.position_ids("o", None, pid, None))
        assert object_ids
        for oid in object_ids:
            run = list(sharded.sorted_run_ids(None, pid, oid))
            assert run == sorted(run)

    def test_sorted_run_requires_two_constants(self, triples):
        sharded = ShardedTripleStore(num_shards=2, triples=triples)
        with pytest.raises(StoreError):
            sharded.sorted_run_ids(None, sharded.term_id(EX.p1), None)

    def test_count_distinct_across_shards(self, triples, single):
        sharded = ShardedTripleStore(num_shards=8, triples=triples)
        pid = single.term_id(EX.p1)
        for position in "spo":
            patterns = [(None, None, None)]
            if position != "p":
                patterns.append((None, pid, None))
            for s, p, o in patterns:
                assert sharded.count_distinct_ids(
                    position, s, p, o
                ) == single.count_distinct_ids(position, s, p, o)

    def test_vocabulary_access(self, triples, single):
        sharded = ShardedTripleStore(num_shards=4, triples=triples)
        assert sharded.predicates() == single.predicates()
        assert set(sharded.subjects()) == set(single.subjects())
        assert set(sharded.objects(EX.p2)) == set(single.objects(EX.p2))
        assert set(sharded.subjects_of(EX.p1, EX.o5)) == set(
            single.subjects_of(EX.p1, EX.o5)
        )
        assert sorted(sharded.objects_of(EX.s3, EX.p1), key=str) == sorted(
            single.objects_of(EX.s3, EX.p1), key=str
        )
        assert sharded.entities() == single.entities()
        assert sharded.has_subject(EX.s3) == single.has_subject(EX.s3)

    def test_statistics_merge_matches_single_store(self, triples, single):
        sharded = ShardedTripleStore(num_shards=4, triples=triples)
        expected = single.statistics()
        merged = sharded.statistics()
        assert merged.triple_count == expected.triple_count
        assert merged.subject_count == expected.subject_count
        assert merged.object_count == expected.object_count
        assert merged.predicate_count == expected.predicate_count
        for predicate, stats in expected.predicates.items():
            other = merged.predicates[predicate]
            assert other.fact_count == stats.fact_count
            assert other.distinct_subjects == stats.distinct_subjects
            assert other.distinct_objects == stats.distinct_objects
            assert other.literal_object_count == stats.literal_object_count


class TestRouter:
    def test_subject_constant_routes_to_one_shard(self, triples):
        sharded = ShardedTripleStore(num_shards=4, triples=triples)
        router = ShardRouter(sharded)
        sid = sharded.term_id(EX.s3)
        route = router.route_pattern((sid, None, None))
        assert len(route.probed) == 1
        assert route.probed[0] == sharded.shard_index_for_subject(sid)

    def test_count_pruning_drops_empty_shards(self, triples):
        sharded = ShardedTripleStore(num_shards=4, triples=triples)
        router = ShardRouter(sharded)
        # The label predicate only covers subjects s0..s19, which land in
        # a strict subset of shards.
        pid = sharded.term_id(EX.label)
        route = router.route_pattern((None, pid, None))
        for index in route.probed:
            assert sharded.shards[index].count_ids(None, pid, None) > 0
        for index in route.pruned:
            assert sharded.shards[index].count_ids(None, pid, None) == 0

    def test_route_group_intersects_required_patterns(self, triples):
        sharded = ShardedTripleStore(num_shards=4, triples=triples)
        router = ShardRouter(sharded)
        label = sharded.term_id(EX.label)
        p1 = sharded.term_id(EX.p1)
        surviving, routes = router.route_group([(None, label, None), (None, p1, None)])
        assert set(surviving) == set(routes[0].probed) & set(routes[1].probed)


class TestShardedFromIdColumns:
    """The sharded ID-column loader must match the single-store loader."""

    @staticmethod
    def _columns(count: int = 300):
        from repro.store.dictionary import TermDictionary

        rng = random.Random(5)
        dictionary = TermDictionary()
        subjects, predicates, objects = [], [], []
        for _ in range(count):
            triple = Triple(
                EX[f"e{rng.randrange(40)}"],
                EX[f"p{rng.randrange(4)}"],
                EX[f"e{rng.randrange(40)}"],
            )
            s, p, o = dictionary.encode_triple(triple)
            subjects.append(s)
            predicates.append(p)
            objects.append(o)
        return dictionary, subjects, predicates, objects

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_matches_single_store(self, shards):
        dictionary, subjects, predicates, objects = self._columns()
        single = TripleStore.from_id_columns("one", dictionary, subjects, predicates, objects)
        sharded = ShardedTripleStore.from_id_columns(
            dictionary, subjects, predicates, objects, num_shards=shards
        )
        shard_ids = sorted(
            triple for shard in sharded.shards for triple in shard.match_ids()
        )
        assert shard_ids == sorted(single.match_ids())
        assert len(sharded) == len(single)

    def test_routing_matches_subject_ranges(self):
        dictionary, subjects, predicates, objects = self._columns()
        sharded = ShardedTripleStore.from_id_columns(
            dictionary, subjects, predicates, objects, num_shards=4
        )
        for index, shard in enumerate(sharded.shards):
            for subject, _, _ in shard.match_ids():
                assert sharded.shard_index_for_subject(subject) == index

    def test_process_parallel_build_matches_inline(self):
        dictionary, subjects, predicates, objects = self._columns()
        inline = ShardedTripleStore.from_id_columns(
            dictionary, subjects, predicates, objects, num_shards=4
        )
        parallel = ShardedTripleStore.from_id_columns(
            dictionary, subjects, predicates, objects, num_shards=4, processes=2
        )
        assert sorted(
            triple for shard in inline.shards for triple in shard.match_ids()
        ) == sorted(triple for shard in parallel.shards for triple in shard.match_ids())

    def test_pure_python_fallback_matches(self, monkeypatch):
        dictionary, subjects, predicates, objects = self._columns()
        fast = ShardedTripleStore.from_id_columns(
            dictionary, subjects, predicates, objects, num_shards=3
        )
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        slow = ShardedTripleStore.from_id_columns(
            dictionary, subjects, predicates, objects, num_shards=3
        )
        assert sorted(
            triple for shard in fast.shards for triple in shard.match_ids()
        ) == sorted(triple for shard in slow.shards for triple in shard.match_ids())
