"""Unit tests for the τ-selection protocol."""

import pytest

from repro.align.config import AlignmentConfig
from repro.align.result import AlignmentResult, RelationAlignment, ScoredCandidate
from repro.align.rule import RelationRef, SubsumptionRule
from repro.evaluation.thresholds import (
    DEFAULT_GRID,
    ThresholdSelection,
    evaluate_at_threshold,
    select_best_threshold,
)

from tests.conftest import EX, EX2


def result_with(scored_pairs, source="dbpedia", target="yago"):
    """Build an AlignmentResult with the given (premise local name, confidence) pairs."""
    conclusion = RelationRef(source, EX2.birthPlace)
    alignment = RelationAlignment(relation=conclusion)
    for local_name, confidence in scored_pairs:
        rule = SubsumptionRule(
            premise=RelationRef(target, EX[local_name]),
            conclusion=conclusion,
            confidence=confidence,
            support=3,
            measure="pca",
        )
        alignment.candidates.append(ScoredCandidate(rule=rule))
    result = AlignmentResult(source_kb=source, target_kb=target, config=AlignmentConfig())
    result.add(alignment)
    return result


GOLD = {(EX.wasBornIn, EX2.birthPlace)}


class TestEvaluateAtThreshold:
    def test_low_threshold_accepts_everything(self):
        result = result_with([("wasBornIn", 0.9), ("diedIn", 0.5)])
        report = evaluate_at_threshold(result, GOLD, threshold=0.1)
        assert report.precision == pytest.approx(0.5)
        assert report.recall == 1.0

    def test_high_threshold_filters_wrong_rule(self):
        result = result_with([("wasBornIn", 0.9), ("diedIn", 0.5)])
        report = evaluate_at_threshold(result, GOLD, threshold=0.7)
        assert report.precision == 1.0

    def test_threshold_above_everything_kills_recall(self):
        result = result_with([("wasBornIn", 0.9)])
        report = evaluate_at_threshold(result, GOLD, threshold=0.95)
        assert report.recall == 0.0


class TestSelectBestThreshold:
    def test_selects_separating_threshold(self):
        result = result_with([("wasBornIn", 0.9), ("diedIn", 0.5)])
        selection = select_best_threshold([result], [GOLD])
        assert 0.5 <= selection.threshold < 0.9
        assert selection.average_f1 == 1.0
        assert isinstance(selection, ThresholdSelection)

    def test_ties_break_toward_larger_threshold(self):
        result = result_with([("wasBornIn", 0.9)])
        selection = select_best_threshold([result], [GOLD])
        # Any τ below 0.9 gives F1=1.0; the largest such grid value wins.
        assert selection.threshold == pytest.approx(0.85)

    def test_average_over_directions(self):
        forward = result_with([("wasBornIn", 0.9), ("diedIn", 0.8)])
        backward = result_with([("wasBornIn", 0.9)], source="yago", target="dbpedia")
        backward_gold = {(EX.wasBornIn, EX2.birthPlace)}
        selection = select_best_threshold([forward, backward], [GOLD, backward_gold])
        assert set(selection.per_direction) == {"yago ⊂ dbpedia", "dbpedia ⊂ yago"}
        assert selection.average_f1 <= 1.0

    def test_sweep_contains_grid(self):
        result = result_with([("wasBornIn", 0.9)])
        selection = select_best_threshold([result], [GOLD], grid=[0.1, 0.5])
        assert set(selection.sweep) == {0.1, 0.5}

    def test_mismatched_lengths_rejected(self):
        result = result_with([("wasBornIn", 0.9)])
        with pytest.raises(ValueError):
            select_best_threshold([result], [])

    def test_default_grid_is_fine_grained(self):
        assert len(DEFAULT_GRID) == 20
        assert DEFAULT_GRID[0] == 0.0
