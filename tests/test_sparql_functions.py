"""Unit tests for SPARQL expression evaluation (FILTER builtins, operators)."""

import pytest

from repro.rdf.terms import IRI, BlankNode, Literal
from repro.sparql.ast import (
    BinaryExpression,
    FunctionCall,
    InExpression,
    TermExpression,
    UnaryExpression,
    VariableExpression,
)
from repro.sparql.bindings import Binding, Variable
from repro.sparql.functions import (
    EvalError,
    ExpressionEvaluator,
    effective_boolean_value,
    term_to_value,
    value_to_term,
)

X = Variable("x")
NAME = Variable("name")


@pytest.fixture
def evaluator():
    return ExpressionEvaluator()


@pytest.fixture
def binding():
    return Binding({X: Literal(10), NAME: Literal("Frank Sinatra", language="en")})


def var(variable):
    return VariableExpression(variable)


def lit(value, **kwargs):
    return TermExpression(Literal(value, **kwargs))


class TestValueConversion:
    def test_term_to_value_numeric(self):
        assert term_to_value(Literal(5)) == 5
        assert term_to_value(Literal(2.5)) == pytest.approx(2.5)

    def test_term_to_value_boolean(self):
        assert term_to_value(Literal(True)) is True

    def test_term_to_value_string(self):
        assert term_to_value(Literal("x")) == "x"

    def test_value_to_term_round_trip(self):
        assert value_to_term(5) == Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert value_to_term(True).to_python() is True
        assert value_to_term("x") == Literal("x")
        assert value_to_term(IRI("http://x.org/")) == IRI("http://x.org/")

    def test_effective_boolean_value(self):
        assert effective_boolean_value(True)
        assert not effective_boolean_value(0)
        assert effective_boolean_value("non-empty")
        assert not effective_boolean_value("")
        assert effective_boolean_value(Literal(3))
        with pytest.raises(EvalError):
            effective_boolean_value(IRI("http://x.org/"))


class TestOperators:
    def test_variable_lookup(self, evaluator, binding):
        assert evaluator.evaluate(var(X), binding) == Literal(10)

    def test_unbound_variable_raises(self, evaluator):
        with pytest.raises(EvalError):
            evaluator.evaluate(var(Variable("missing")), Binding.EMPTY)

    def test_numeric_comparison(self, evaluator, binding):
        assert evaluator.evaluate(BinaryExpression(">", var(X), lit(5)), binding) is True
        assert evaluator.evaluate(BinaryExpression("<=", var(X), lit(5)), binding) is False

    def test_equality_of_iris(self, evaluator):
        left = TermExpression(IRI("http://x.org/a"))
        right = TermExpression(IRI("http://x.org/a"))
        assert evaluator.evaluate(BinaryExpression("=", left, right), Binding.EMPTY) is True

    def test_ordering_of_iris_raises(self, evaluator):
        left = TermExpression(IRI("http://x.org/a"))
        with pytest.raises(EvalError):
            evaluator.evaluate(BinaryExpression("<", left, left), Binding.EMPTY)

    def test_string_comparison(self, evaluator):
        assert evaluator.evaluate(BinaryExpression("<", lit("abc"), lit("abd")), Binding.EMPTY)

    def test_arithmetic(self, evaluator, binding):
        assert evaluator.evaluate(BinaryExpression("+", var(X), lit(5)), binding) == 15
        assert evaluator.evaluate(BinaryExpression("*", var(X), lit(2)), binding) == 20
        assert evaluator.evaluate(BinaryExpression("-", var(X), lit(3)), binding) == 7
        assert evaluator.evaluate(BinaryExpression("/", var(X), lit(4)), binding) == pytest.approx(2.5)

    def test_division_by_zero(self, evaluator, binding):
        with pytest.raises(EvalError):
            evaluator.evaluate(BinaryExpression("/", var(X), lit(0)), binding)

    def test_logical_and_or(self, evaluator, binding):
        true_expr = BinaryExpression(">", var(X), lit(5))
        false_expr = BinaryExpression("<", var(X), lit(5))
        assert evaluator.evaluate(BinaryExpression("&&", true_expr, false_expr), binding) is False
        assert evaluator.evaluate(BinaryExpression("||", true_expr, false_expr), binding) is True

    def test_unary_not(self, evaluator, binding):
        expr = UnaryExpression("!", BinaryExpression(">", var(X), lit(5)))
        assert evaluator.evaluate(expr, binding) is False

    def test_unary_minus(self, evaluator, binding):
        assert evaluator.evaluate(UnaryExpression("-", var(X)), binding) == -10

    def test_arithmetic_on_string_raises(self, evaluator, binding):
        with pytest.raises(EvalError):
            evaluator.evaluate(BinaryExpression("+", var(NAME), lit(1)), binding)

    def test_in_expression(self, evaluator, binding):
        expr = InExpression(var(X), (lit(1), lit(10)))
        assert evaluator.evaluate(expr, binding) is True
        negated = InExpression(var(X), (lit(1), lit(2)), negated=True)
        assert evaluator.evaluate(negated, binding) is True


class TestBuiltins:
    def test_str(self, evaluator, binding):
        assert evaluator.evaluate(FunctionCall("STR", (var(NAME),)), binding) == "Frank Sinatra"

    def test_strlen_lcase_ucase(self, evaluator):
        assert evaluator.evaluate(FunctionCall("STRLEN", (lit("abc"),)), Binding.EMPTY) == 3
        assert evaluator.evaluate(FunctionCall("LCASE", (lit("AbC"),)), Binding.EMPTY) == "abc"
        assert evaluator.evaluate(FunctionCall("UCASE", (lit("AbC"),)), Binding.EMPTY) == "ABC"

    def test_contains_strstarts_strends(self, evaluator, binding):
        assert evaluator.evaluate(FunctionCall("CONTAINS", (var(NAME), lit("Sinatra"))), binding)
        assert evaluator.evaluate(FunctionCall("STRSTARTS", (var(NAME), lit("Frank"))), binding)
        assert evaluator.evaluate(FunctionCall("STRENDS", (var(NAME), lit("Sinatra"))), binding)

    def test_abs(self, evaluator):
        assert evaluator.evaluate(FunctionCall("ABS", (lit(-4),)), Binding.EMPTY) == 4

    def test_bound(self, evaluator, binding):
        assert evaluator.evaluate(FunctionCall("BOUND", (var(X),)), binding) is True
        assert evaluator.evaluate(FunctionCall("BOUND", (var(Variable("zz")),)), binding) is False

    def test_bound_requires_variable(self, evaluator, binding):
        with pytest.raises(EvalError):
            evaluator.evaluate(FunctionCall("BOUND", (lit("x"),)), binding)

    def test_is_iri_literal_blank(self, evaluator):
        iri_expr = TermExpression(IRI("http://x.org/a"))
        blank_expr = TermExpression(BlankNode("b"))
        assert evaluator.evaluate(FunctionCall("ISIRI", (iri_expr,)), Binding.EMPTY) is True
        assert evaluator.evaluate(FunctionCall("ISLITERAL", (lit("x"),)), Binding.EMPTY) is True
        assert evaluator.evaluate(FunctionCall("ISBLANK", (blank_expr,)), Binding.EMPTY) is True
        assert evaluator.evaluate(FunctionCall("ISNUMERIC", (lit(3),)), Binding.EMPTY) is True
        assert evaluator.evaluate(FunctionCall("ISNUMERIC", (lit("x"),)), Binding.EMPTY) is False

    def test_sameterm(self, evaluator):
        assert evaluator.evaluate(FunctionCall("SAMETERM", (lit("a"), lit("a"))), Binding.EMPTY)
        assert not evaluator.evaluate(FunctionCall("SAMETERM", (lit("a"), lit("b"))), Binding.EMPTY)

    def test_lang_and_langmatches(self, evaluator, binding):
        assert evaluator.evaluate(FunctionCall("LANG", (var(NAME),)), binding) == "en"
        assert evaluator.evaluate(
            FunctionCall("LANGMATCHES", (FunctionCall("LANG", (var(NAME),)), lit("EN"))), binding
        )
        assert evaluator.evaluate(
            FunctionCall("LANGMATCHES", (FunctionCall("LANG", (var(NAME),)), lit("*"))), binding
        )

    def test_datatype(self, evaluator):
        result = evaluator.evaluate(FunctionCall("DATATYPE", (lit(5),)), Binding.EMPTY)
        assert isinstance(result, IRI)
        assert result.value.endswith("integer")

    def test_regex_case_insensitive_flag(self, evaluator, binding):
        assert evaluator.evaluate(
            FunctionCall("REGEX", (var(NAME), lit("sinatra"), lit("i"))), binding
        )
        assert not evaluator.evaluate(
            FunctionCall("REGEX", (var(NAME), lit("sinatra"))), binding
        )

    def test_regex_invalid_pattern(self, evaluator, binding):
        with pytest.raises(EvalError):
            evaluator.evaluate(FunctionCall("REGEX", (var(NAME), lit("["))), binding)

    def test_if(self, evaluator, binding):
        expr = FunctionCall("IF", (BinaryExpression(">", var(X), lit(5)), lit("big"), lit("small")))
        assert evaluator.evaluate(expr, binding) == Literal("big")

    def test_coalesce(self, evaluator, binding):
        expr = FunctionCall("COALESCE", (var(Variable("missing")), var(X)))
        assert evaluator.evaluate(expr, binding) == Literal(10)

    def test_coalesce_all_error(self, evaluator):
        with pytest.raises(EvalError):
            evaluator.evaluate(FunctionCall("COALESCE", (var(Variable("m")),)), Binding.EMPTY)

    def test_evaluate_boolean_swallows_errors(self, evaluator):
        assert evaluator.evaluate_boolean(var(Variable("missing")), Binding.EMPTY) is False


class TestBindings:
    def test_extend_conflicting_binding_returns_none(self):
        binding = Binding({X: Literal(1)})
        assert binding.extend(X, Literal(2)) is None
        assert binding.extend(X, Literal(1)) is binding

    def test_extend_new_variable(self):
        binding = Binding.EMPTY.extend(X, Literal(1))
        assert binding[X] == Literal(1)
        assert len(Binding.EMPTY) == 0

    def test_merge(self):
        left = Binding({X: Literal(1)})
        right = Binding({NAME: Literal("a")})
        merged = left.merge(right)
        assert merged is not None and len(merged) == 2
        conflicting = Binding({X: Literal(2)})
        assert left.merge(conflicting) is None

    def test_project(self):
        binding = Binding({X: Literal(1), NAME: Literal("a")})
        assert set(binding.project([X])) == {X}

    def test_hash_and_equality(self):
        assert Binding({X: Literal(1)}) == Binding({X: Literal(1)})
        assert hash(Binding({X: Literal(1)})) == hash(Binding({X: Literal(1)}))
