"""Unit tests for store statistics helpers."""

import pytest

from repro.rdf.terms import IRI, Literal
from repro.rdf.triple import Triple
from repro.store.stats import PredicateStatistics, compute_statistics
from repro.store.bulk import load_ntriples_file, load_triples
from repro.rdf.ntriples import serialize_ntriples

from tests.conftest import EX


class TestPredicateStatistics:
    def test_functionality_of_functional_relation(self):
        stats = PredicateStatistics(EX.p, fact_count=10, distinct_subjects=10, distinct_objects=4)
        assert stats.functionality == pytest.approx(1.0)
        assert stats.inverse_functionality == pytest.approx(0.4)
        assert stats.average_objects_per_subject == pytest.approx(1.0)

    def test_functionality_of_multivalued_relation(self):
        stats = PredicateStatistics(EX.p, fact_count=20, distinct_subjects=5, distinct_objects=20)
        assert stats.functionality == pytest.approx(0.25)
        assert stats.average_objects_per_subject == pytest.approx(4.0)

    def test_empty_relation(self):
        stats = PredicateStatistics(EX.p)
        assert stats.functionality == 0.0
        assert stats.inverse_functionality == 0.0
        assert stats.average_objects_per_subject == 0.0
        assert not stats.is_literal_valued

    def test_is_literal_valued_majority_rule(self):
        stats = PredicateStatistics(EX.p, fact_count=4, literal_object_count=3)
        assert stats.is_literal_valued
        stats2 = PredicateStatistics(EX.p, fact_count=4, literal_object_count=2)
        assert not stats2.is_literal_valued


class TestComputeStatistics:
    def test_counts(self, people_store):
        stats = compute_statistics(iter(people_store))
        assert stats.triple_count == len(people_store)
        assert stats.predicates[EX.name].literal_object_count == 3
        assert stats.predicates[EX.bornIn].distinct_objects == 3

    def test_empty_iterable(self):
        stats = compute_statistics([])
        assert stats.triple_count == 0
        assert stats.predicates == {}


class TestBulkLoading:
    def test_load_triples_into_new_store(self):
        triples = [Triple(EX.a, EX.p, EX.b), Triple(EX.a, EX.p, Literal("x"))]
        store = load_triples(triples, name="loaded")
        assert len(store) == 2
        assert store.name == "loaded"

    def test_load_triples_into_existing_store(self, people_store):
        before = len(people_store)
        load_triples([Triple(EX.zzz, EX.p, EX.b)], store=people_store)
        assert len(people_store) == before + 1

    def test_load_ntriples_file(self, tmp_path, people_store):
        path = tmp_path / "dump.nt"
        path.write_text(serialize_ntriples(iter(people_store)), encoding="utf-8")
        store = load_ntriples_file(path)
        assert len(store) == len(people_store)
        assert store.name == "dump"

    def test_load_turtle_file(self, tmp_path):
        path = tmp_path / "data.ttl"
        path.write_text(
            "@prefix ex: <http://example.org/kb1/> .\nex:a ex:p ex:b .\n", encoding="utf-8"
        )
        store = load_ntriples_file(path)
        assert len(store) == 1
