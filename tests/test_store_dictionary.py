"""Unit tests for the term dictionary (ID interning layer)."""

import pytest

from repro.errors import StoreError
from repro.rdf.terms import BlankNode, IRI, Literal
from repro.rdf.triple import Triple
from repro.store.dictionary import KIND_BLANK, KIND_IRI, KIND_LITERAL, TermDictionary
from repro.store.triplestore import TripleStore

from tests.conftest import EX


class TestInterning:
    def test_encode_assigns_dense_ids(self):
        dictionary = TermDictionary()
        first = dictionary.encode(EX.a)
        second = dictionary.encode(EX.b)
        assert [first, second] == [0, 1]
        assert len(dictionary) == 2

    def test_encode_is_idempotent(self):
        dictionary = TermDictionary()
        tid = dictionary.encode(EX.a)
        assert dictionary.encode(EX.a) == tid
        assert len(dictionary) == 1

    def test_round_trip(self):
        dictionary = TermDictionary()
        terms = [EX.a, Literal("x"), Literal(7), BlankNode("b1"), Literal("y", language="en")]
        ids = [dictionary.encode(term) for term in terms]
        assert [dictionary.decode(tid) for tid in ids] == terms

    def test_structurally_equal_terms_share_an_id(self):
        dictionary = TermDictionary()
        assert dictionary.encode(IRI("http://x.test/a")) == dictionary.encode(
            IRI("http://x.test/a")
        )

    def test_id_for_does_not_intern(self):
        dictionary = TermDictionary()
        assert dictionary.id_for(EX.a) is None
        assert len(dictionary) == 0

    def test_contains(self):
        dictionary = TermDictionary()
        dictionary.encode(EX.a)
        assert EX.a in dictionary
        assert EX.b not in dictionary

    def test_decode_unknown_id_raises(self):
        with pytest.raises(StoreError):
            TermDictionary().decode(0)

    def test_encode_rejects_non_terms(self):
        with pytest.raises(StoreError):
            TermDictionary().encode("not a term")  # type: ignore[arg-type]

    def test_terms_iterates_in_id_order(self):
        dictionary = TermDictionary()
        dictionary.encode(EX.b)
        dictionary.encode(EX.a)
        assert list(dictionary.terms()) == [EX.b, EX.a]


class TestKinds:
    def test_kind_tags(self):
        dictionary = TermDictionary()
        iri_id = dictionary.encode(EX.a)
        literal_id = dictionary.encode(Literal("x"))
        blank_id = dictionary.encode(BlankNode("b"))
        assert dictionary.kind(iri_id) == KIND_IRI
        assert dictionary.kind(literal_id) == KIND_LITERAL
        assert dictionary.kind(blank_id) == KIND_BLANK

    def test_literal_and_entity_predicates(self):
        dictionary = TermDictionary()
        iri_id = dictionary.encode(EX.a)
        literal_id = dictionary.encode(Literal("x"))
        assert dictionary.is_entity_id(iri_id) and not dictionary.is_literal_id(iri_id)
        assert dictionary.is_literal_id(literal_id) and not dictionary.is_entity_id(literal_id)


class TestTripleHelpers:
    def test_encode_decode_triple_round_trip(self):
        dictionary = TermDictionary()
        triple = Triple(EX.s, EX.p, Literal("o"))
        assert dictionary.decode_triple(dictionary.encode_triple(triple)) == triple


class TestStabilityAcrossStoreMutation:
    def test_ids_stable_across_remove(self):
        store = TripleStore()
        triple = Triple(EX.s, EX.p, EX.o)
        store.add(triple)
        subject_id = store.term_id(EX.s)
        store.remove(triple)
        assert store.term_id(EX.s) == subject_id
        assert store.term_for_id(subject_id) == EX.s
        # Re-adding reuses the same IDs.
        store.add(triple)
        assert store.term_id(EX.s) == subject_id

    def test_ids_stable_across_clear(self):
        store = TripleStore()
        store.add(Triple(EX.s, EX.p, EX.o))
        ids_before = {term: store.term_id(term) for term in (EX.s, EX.p, EX.o)}
        store.clear()
        assert len(store) == 0
        for term, tid in ids_before.items():
            assert store.term_id(term) == tid

    def test_shared_dictionary_across_stores(self):
        dictionary = TermDictionary()
        left = TripleStore(name="left", dictionary=dictionary)
        right = TripleStore(name="right", dictionary=dictionary)
        left.add(Triple(EX.s, EX.p, EX.o))
        right.add(Triple(EX.s, EX.p, EX.other))
        assert left.term_id(EX.s) == right.term_id(EX.s)


class TestCountShapes:
    """The count satellite: every pattern shape answered from index counts."""

    @pytest.fixture
    def store(self, people_store):
        return people_store

    def test_subject_predicate_shape(self, store):
        assert store.count(subject=EX["Frank_Sinatra"], predicate=EX.bornIn) == 1
        assert store.count(subject=EX["Frank_Sinatra"], predicate=EX.unknownRel) == 0

    def test_predicate_object_shape(self, store):
        assert store.count(predicate=EX.profession, object=EX.Physicist) == 2

    def test_subject_object_shape(self, store):
        assert store.count(subject=EX["Frank_Sinatra"], object=EX.USA) == 1

    def test_fully_bound_shape(self, store):
        assert store.count(EX["Frank_Sinatra"], EX.bornIn, EX.USA) == 1
        assert store.count(EX["Frank_Sinatra"], EX.bornIn, EX.Poland) == 0

    def test_unknown_term_counts_zero(self, store):
        assert store.count(subject=EX.NotThere) == 0

    def test_counts_agree_with_materialising_scan(self, store):
        shapes = [
            {"subject": EX["Marie_Curie"]},
            {"predicate": EX.bornIn},
            {"object": EX.Physicist},
            {"subject": EX["Marie_Curie"], "predicate": EX.bornIn},
            {"predicate": EX.profession, "object": EX.Physicist},
            {"subject": EX["Frank_Sinatra"], "object": EX.USA},
        ]
        for shape in shapes:
            assert store.count(**shape) == sum(1 for _ in store.match(**shape))

    def test_contains_ids(self, store):
        s = store.term_id(EX["Frank_Sinatra"])
        p = store.term_id(EX.bornIn)
        o = store.term_id(EX.USA)
        other = store.term_id(EX.Poland)
        assert store.contains_ids(s, p, o)
        assert not store.contains_ids(s, p, other)

    def test_count_distinct_ids_shapes(self, store):
        pid = store.term_id(EX.profession)
        sid = store.term_id(EX["Marie_Curie"])
        oid = store.term_id(EX.Physicist)
        assert store.count_distinct_ids("s", predicate=pid) == 3
        assert store.count_distinct_ids("o", predicate=pid) == 2
        assert store.count_distinct_ids("s", predicate=pid, object=oid) == 2
        assert store.count_distinct_ids("p", subject=sid) == 3
        assert store.count_distinct_ids("o", subject=sid, predicate=pid) == 1
