"""Unit tests for the literal matcher used by entity-literal alignment."""

import pytest

from repro.rdf.terms import Literal
from repro.similarity.literal_match import SIMILARITY_FUNCTIONS, LiteralMatcher


class TestConfiguration:
    def test_default_configuration_valid(self):
        matcher = LiteralMatcher()
        assert matcher.similarity in SIMILARITY_FUNCTIONS

    def test_unknown_similarity_rejected(self):
        with pytest.raises(ValueError):
            LiteralMatcher(similarity="nope")

    def test_threshold_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LiteralMatcher(threshold=1.5)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            LiteralMatcher(numeric_tolerance=-1)


class TestStringMatching:
    def test_exact_match(self):
        matcher = LiteralMatcher()
        assert matcher.matches(Literal("Frank Sinatra"), Literal("Frank Sinatra"))

    def test_formatting_variants_match_after_normalisation(self):
        matcher = LiteralMatcher()
        assert matcher.matches(Literal("Frank_Sinatra"), Literal("frank sinatra"))
        assert matcher.matches(Literal("FRANK SINATRA"), Literal("Frank Sinatra"))

    def test_different_names_do_not_match(self):
        matcher = LiteralMatcher()
        assert not matcher.matches(Literal("Frank Sinatra"), Literal("Albert Einstein"))

    def test_score_is_symmetric_enough(self):
        matcher = LiteralMatcher()
        left, right = Literal("Marie Curie"), Literal("Maria Curie")
        assert matcher.score(left, right) == pytest.approx(matcher.score(right, left), abs=0.05)

    def test_each_similarity_function_usable(self):
        for name in SIMILARITY_FUNCTIONS:
            matcher = LiteralMatcher(similarity=name, threshold=0.5)
            assert matcher.matches(Literal("alignment"), Literal("alignment"))

    def test_normalisation_can_be_disabled(self):
        matcher = LiteralMatcher(normalize=False, threshold=0.99)
        assert not matcher.matches(Literal("Frank_Sinatra"), Literal("frank sinatra"))

    def test_empty_strings_match(self):
        assert LiteralMatcher().matches(Literal(""), Literal(""))


class TestNumericMatching:
    def test_equal_numbers(self):
        matcher = LiteralMatcher()
        assert matcher.matches(Literal(1915), Literal(1915))
        assert matcher.score(Literal(1915), Literal(1915)) == 1.0

    def test_nearly_equal_numbers_within_tolerance(self):
        matcher = LiteralMatcher(numeric_tolerance=0.01)
        assert matcher.matches(Literal(100.0), Literal(100.5))

    def test_numbers_outside_tolerance(self):
        matcher = LiteralMatcher(numeric_tolerance=0.001)
        assert not matcher.matches(Literal(100.0), Literal(150.0))

    def test_zero_values(self):
        matcher = LiteralMatcher()
        assert matcher.matches(Literal(0), Literal(0.0))

    def test_number_vs_string_uses_string_path(self):
        matcher = LiteralMatcher(threshold=0.95)
        assert matcher.matches(Literal(42), Literal("42"))
