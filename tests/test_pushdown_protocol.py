"""Protocol-level tests for the distributed pushdown engine.

Asserts the wire-level contracts of PR 7 against the executor's
``protocol_stats()`` ledger:

* pushed-down aggregates transfer O(shards) fold partials — zero row
  batches reach the parent;
* credit-based flow control bounds parent-side buffering per in-flight
  task at ``result_window`` batches, however fast the worker produces;
* a cancelled (LIMIT-satisfied / abandoned) task refunds its buffered
  batches at cancel-enqueue time and frees the worker's credits so the
  next task on that worker starts promptly;
* the task ledger balances exactly at quiescence:
  ``dispatched == completed + cancelled + failed + crashed``.

Runs under every worker start method (``REPRO_WORKER_START_METHOD``).
"""

import multiprocessing
import os
import time
from collections import Counter

import pytest

from repro.errors import ConfigError, StoreError
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.shard.workers import DEFAULT_RESULT_WINDOW, ProcessShardExecutor
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store.triplestore import TripleStore

EX = Namespace("http://pushdown.test/")

START_METHOD = os.environ.get("REPRO_WORKER_START_METHOD") or None
if START_METHOD and START_METHOD not in multiprocessing.get_all_start_methods():
    pytest.skip(
        f"start method {START_METHOD!r} unsupported on this platform",
        allow_module_level=True,
    )


def _star_triples():
    triples = []
    for i in range(48):
        triples.append(Triple(EX[f"s{i}"], EX.p0, EX[f"a{i % 7}"]))
        triples.append(Triple(EX[f"s{i}"], EX.p1, EX[f"b{i % 5}"]))
    for i in range(7):
        triples.append(Triple(EX[f"a{i}"], EX.link, EX[f"z{i % 3}"]))
    return triples


def _wide_triples(subjects=4, values=25):
    """A per-subject cross product: subjects * values^2 join rows."""
    return [
        Triple(EX[f"w{s}"], EX[p], EX[f"{p}v{v}"])
        for s in range(subjects)
        for p in ("p0", "p1")
        for v in range(values)
    ]


STAR_QUERY = (
    "SELECT ?s ?a ?b WHERE { ?s <http://pushdown.test/p0> ?a . "
    "?s <http://pushdown.test/p1> ?b }"
)
COUNT_QUERY = (
    "SELECT (COUNT(*) AS ?c) (COUNT(DISTINCT ?s) AS ?d) "
    "(COUNT(DISTINCT ?a) AS ?e) WHERE { ?s <http://pushdown.test/p0> ?a . "
    "?s <http://pushdown.test/p1> ?b }"
)
GROUPED_QUERY = (
    "SELECT ?a (COUNT(?s) AS ?c) WHERE { ?s <http://pushdown.test/p0> ?a . "
    "?s <http://pushdown.test/p1> ?b } GROUP BY ?a"
)
CHAIN_COUNT_QUERY = (
    "SELECT (COUNT(*) AS ?c) (COUNT(DISTINCT ?z) AS ?d) WHERE "
    "{ ?s <http://pushdown.test/p0> ?a . "
    "?a <http://pushdown.test/link> ?z }"
)


def _multiset(result):
    return Counter(frozenset(row.items()) for row in result)


def _balanced(stats):
    return stats["dispatched"] == (
        stats["completed"] + stats["cancelled"] + stats["failed"] + stats["crashed"]
    )


class TestAggregatePushdown:
    def test_count_wave_transfers_only_partials(self, tmp_path):
        """The headline O(shards) contract: no row batch reaches the parent."""
        triples = _star_triples()
        store = ShardedTripleStore(num_shards=4, triples=triples)
        reference = QueryEvaluator(TripleStore(triples=triples))
        with store.serve(tmp_path / "snap", start_method=START_METHOD) as executor:
            evaluator = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            for query in (COUNT_QUERY, GROUPED_QUERY, CHAIN_COUNT_QUERY):
                before = executor.protocol_stats()
                got = evaluator.evaluate(query)
                after = executor.protocol_stats()
                assert _multiset(got) == _multiset(reference.evaluate(query)), query
                dispatched = after["dispatched"] - before["dispatched"]
                partials = after["agg_partials"] - before["agg_partials"]
                assert dispatched >= 1, query
                # One partial per routed shard task, zero row batches.
                assert partials == dispatched, query
                assert after["row_batches"] == before["row_batches"], query
                assert after["rows"] == before["rows"], query
            assert _balanced(executor.protocol_stats())

    def test_fast_count_still_answers_without_dispatch(self, tmp_path):
        # The single-pattern index-count intercept must stay in front of
        # the fold machinery: no worker task at all.
        store = ShardedTripleStore(num_shards=2, triples=_star_triples())
        with store.serve(tmp_path / "snap", start_method=START_METHOD) as executor:
            evaluator = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            result = evaluator.evaluate(
                "SELECT (COUNT(*) AS ?c) WHERE { ?s <http://pushdown.test/p0> ?a }"
            )
            assert len(result) == 1
            assert executor.protocol_stats()["dispatched"] == 0

    def test_projection_pushdown_restricts_and_dedups(self, tmp_path):
        triples = _star_triples()
        store = ShardedTripleStore(num_shards=2, triples=triples)
        reference = QueryEvaluator(TripleStore(triples=triples))
        query = (
            "SELECT DISTINCT ?a WHERE { ?s <http://pushdown.test/p0> ?a . "
            "?s <http://pushdown.test/p1> ?b }"
        )
        with store.serve(
            tmp_path / "snap", start_method=START_METHOD, batch_rows=1
        ) as executor:
            evaluator = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            got = evaluator.evaluate(query)
            assert _multiset(got) == _multiset(reference.evaluate(query))
            stats = executor.protocol_stats()
            # Workers dedup the single projected column shard-locally:
            # with batch_rows=1 each surviving row is one batch, and there
            # are at most 7 distinct ?a values per shard.
            assert stats["rows"] <= 14


class TestFlowControl:
    def test_buffering_bounded_by_result_window(self, tmp_path):
        window = 2
        triples = _wide_triples()
        store = ShardedTripleStore(num_shards=1, triples=triples)
        with store.serve(
            tmp_path / "snap",
            start_method=START_METHOD,
            batch_rows=1,
            result_window=window,
        ) as executor:
            assert executor.result_window == window
            group = parse_query(STAR_QUERY).where
            stream = executor.run_group([0], group)
            next(stream)
            # Let the worker run as far ahead as the protocol allows.
            time.sleep(0.8)
            stats = executor.protocol_stats()
            assert 0 < stats["max_buffered_batches"] <= window
            # Drain fully: every row still arrives, exactly once.
            remaining = sum(1 for _ in stream)
            expected = len(
                QueryEvaluator(TripleStore(triples=triples)).evaluate(STAR_QUERY)
            )
            assert remaining + 1 == expected
            final = executor.protocol_stats()
            assert final["max_buffered_batches"] <= window
            assert final["buffered_batches"] == 0
            assert final["acks"] > 0
            assert _balanced(final)

    def test_cancel_refunds_buffers_at_enqueue_time(self, tmp_path):
        """Satellite fix: the refund happens when the cancel is *enqueued*,
        not when the worker eventually drains the control queue."""
        store = ShardedTripleStore(num_shards=1, triples=_wide_triples())
        with store.serve(
            tmp_path / "snap",
            start_method=START_METHOD,
            batch_rows=1,
            result_window=4,
        ) as executor:
            executor.stall(0, seconds=0.5)  # keep the worker busy post-cancel
            group = parse_query(STAR_QUERY).where
            stream = executor.run_group([0], group)
            next(stream)
            time.sleep(0.3)  # let the window fill
            stream.close()  # enqueue the cancel
            # Immediately — the stalled worker cannot have drained it yet —
            # the gauge must be back to zero and the ledger balanced.
            stats = executor.protocol_stats()
            assert stats["buffered_batches"] == 0
            assert stats["cancelled"] == 1
            assert _balanced(stats)

    def test_cancel_frees_worker_credits(self, tmp_path):
        # With a 1-credit window and batch_rows=1 the worker blocks on the
        # second row until acked or cancelled; abandoning the stream must
        # unblock it so the next task runs promptly.
        store = ShardedTripleStore(num_shards=1, triples=_wide_triples())
        with store.serve(
            tmp_path / "snap",
            start_method=START_METHOD,
            batch_rows=1,
            result_window=1,
        ) as executor:
            group = parse_query(STAR_QUERY).where
            stream = executor.run_group([0], group)
            next(stream)
            stream.close()
            start = time.monotonic()
            assert executor.ping(0)["promoted"] is False
            assert time.monotonic() - start < 5.0
            stats = executor.protocol_stats()
            assert stats["cancelled"] == 1
            assert stats["buffered_batches"] == 0
            assert _balanced(stats)

    def test_limit_wave_accounting_balances(self, tmp_path):
        triples = _wide_triples()
        store = ShardedTripleStore(num_shards=2, triples=triples)
        with store.serve(
            tmp_path / "snap",
            start_method=START_METHOD,
            batch_rows=4,
            result_window=2,
        ) as executor:
            evaluator = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            for limit in (1, 3, 7):
                page = evaluator.evaluate(f"{STAR_QUERY} LIMIT {limit}")
                assert len(page) == limit
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                stats = executor.protocol_stats()
                if _balanced(stats) and stats["buffered_batches"] == 0:
                    break
                time.sleep(0.05)
            assert _balanced(stats)
            assert stats["buffered_batches"] == 0
            assert stats["cancelled"] > 0


class TestWindowConfiguration:
    def test_env_variable_sets_default(self, tmp_path, monkeypatch):
        store = ShardedTripleStore(num_shards=1, triples=_star_triples())
        monkeypatch.setenv("REPRO_RESULT_WINDOW", "3")
        with store.serve(tmp_path / "snap", start_method=START_METHOD) as executor:
            assert executor.result_window == 3

    def test_invalid_env_raises_config_error(self, tmp_path, monkeypatch):
        # Silent fallback turned typos into mystery performance
        # regressions; malformed values now fail loudly (obs.config).
        store = ShardedTripleStore(num_shards=1, triples=_star_triples())
        monkeypatch.setenv("REPRO_RESULT_WINDOW", "bogus")
        with pytest.raises(ConfigError, match="REPRO_RESULT_WINDOW"):
            store.serve(tmp_path / "snapa", start_method=START_METHOD)
        monkeypatch.setenv("REPRO_RESULT_WINDOW", "0")
        with pytest.raises(ConfigError, match="REPRO_RESULT_WINDOW"):
            store.serve(tmp_path / "snapb", start_method=START_METHOD)
        monkeypatch.setenv("REPRO_RESULT_WINDOW", "")
        with store.serve(tmp_path / "snapc", start_method=START_METHOD) as executor:
            assert executor.result_window == DEFAULT_RESULT_WINDOW

    def test_explicit_zero_window_rejected(self, tmp_path):
        store = ShardedTripleStore(num_shards=1, triples=_star_triples())
        directory = tmp_path / "snap"
        store.save(directory)
        with pytest.raises(StoreError):
            ProcessShardExecutor(
                directory, start_method=START_METHOD, result_window=0
            )


class TestJoinShippingProcess:
    def test_chain_join_runs_sharded_with_identical_rows(self, tmp_path):
        triples = _star_triples()
        store = ShardedTripleStore(num_shards=4, triples=triples)
        reference = QueryEvaluator(TripleStore(triples=triples))
        query = (
            "SELECT ?s ?a ?z WHERE { ?s <http://pushdown.test/p0> ?a . "
            "?a <http://pushdown.test/link> ?z }"
        )
        with store.serve(tmp_path / "snap", start_method=START_METHOD) as executor:
            evaluator = ShardedQueryEvaluator(
                store, backend="process", executor=executor
            )
            assert evaluator.explain(query).mode == "ship"
            got = evaluator.evaluate(query)
            assert _multiset(got) == _multiset(reference.evaluate(query))
            stats = executor.protocol_stats()
            assert stats["dispatched"] >= 1  # ran sharded, not merged-view
            assert _balanced(stats)
