"""The evaluation suite run against cold-opened snapshot fixtures.

CI satellite: every representative query shape the engine supports runs
against the *same* preset world served four ways — the warm in-memory
store, a snapshot reopened via mmap, a snapshot loaded without mmap, and
a sharded snapshot reopened through the scatter/gather evaluator — and
must agree with the warm reference on all of them.  This is the
"run the suite on a cold-opened snapshot fixture in addition to the
in-memory path" gate: any read path that silently assumes the writable
representation breaks here first.
"""

from collections import Counter

import pytest

from repro.shard.sharded_store import ShardedTripleStore
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.results import AskResult
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store.triplestore import TripleStore
from repro.synthetic.generator import generate_world
from repro.synthetic.presets import music_world_spec

REPRESENTATIONS = ("warm", "cold-mmap", "cold-bytes", "cold-sharded4")


@pytest.fixture(scope="module")
def world_kb():
    return generate_world(music_world_spec()).kb("musicbrainz")


@pytest.fixture(scope="module")
def evaluators(world_kb, tmp_path_factory):
    """One evaluator per representation over the same preset KB."""
    tmp = tmp_path_factory.mktemp("cold-suite")
    warm = world_kb.store
    warm.save(tmp / "world.snap")
    ShardedTripleStore(num_shards=4, triples=iter(warm)).save(tmp / "sharded")
    return {
        "warm": QueryEvaluator(warm),
        "cold-mmap": QueryEvaluator(TripleStore.open(tmp / "world.snap")),
        "cold-bytes": QueryEvaluator(TripleStore.open(tmp / "world.snap", mmap=False)),
        "cold-sharded4": ShardedQueryEvaluator(
            ShardedTripleStore.open(tmp / "sharded")
        ),
    }


def _battery(kb):
    """Representative query texts over whatever the preset actually holds."""
    relations = sorted(kb.relations(), key=lambda info: -info.fact_count)
    top = relations[0].iri.value
    second = relations[1].iri.value if len(relations) > 1 else top
    subject = next(iter(kb.store.subjects())).value
    queries = [
        f"SELECT ?s ?o WHERE {{ ?s <{top}> ?o }}",
        f"SELECT ?s ?o ?w WHERE {{ ?s <{top}> ?o . ?s <{second}> ?w }}",
        f"SELECT DISTINCT ?s WHERE {{ ?s <{top}> ?o }}",
        f"SELECT ?p ?o WHERE {{ <{subject}> ?p ?o }}",
        f"SELECT ?s WHERE {{ ?s <{top}> ?o }} LIMIT 5",
        f"SELECT ?s WHERE {{ ?s <{top}> ?o }} OFFSET 2 LIMIT 3",
        f"ASK {{ <{subject}> ?p ?o }}",
        f"ASK {{ <{subject}> <{top}> <{subject}> }}",
        f"SELECT (COUNT(*) AS ?c) WHERE {{ ?s <{top}> ?o }}",
        f"SELECT (COUNT(DISTINCT ?s) AS ?c) WHERE {{ ?s <{top}> ?o }}",
        f"SELECT ?s ?n WHERE {{ ?s <{top}> ?o OPTIONAL {{ ?s <{second}> ?n }} }}",
        f"SELECT ?s WHERE {{ {{ ?s <{top}> ?o }} UNION {{ ?s <{second}> ?o }} }}",
        f"SELECT ?s ?o WHERE {{ VALUES ?s {{ <{subject}> }} ?s <{top}> ?o }}",
    ]
    return queries


def _multiset(result):
    if isinstance(result, AskResult):
        return bool(result)
    return Counter(frozenset(row.items()) for row in result)


@pytest.mark.parametrize("representation", [r for r in REPRESENTATIONS if r != "warm"])
def test_battery_matches_warm_reference(representation, evaluators, world_kb):
    reference = evaluators["warm"]
    candidate = evaluators[representation]
    for query_text in _battery(world_kb):
        parsed = parse_query(query_text)
        expected = _multiset(reference.evaluate(parsed))
        actual = _multiset(candidate.evaluate(parsed))
        if " LIMIT " in query_text or query_text.endswith("LIMIT 5"):
            # Page contents may differ between representations; size and
            # membership in the full result set must not.
            full = _multiset(
                reference.evaluate(parse_query(query_text.split(" OFFSET ")[0].split(" LIMIT ")[0]))
            )
            assert sum(actual.values()) == sum(expected.values()), query_text
            for row, count in actual.items():
                assert full[row] >= count, query_text
        else:
            assert actual == expected, (representation, query_text)


def test_cold_stores_stay_frozen_after_the_battery(evaluators):
    # The whole battery is read-only: no representation may have been
    # silently promoted to the writable form.
    assert evaluators["cold-mmap"].store.is_frozen
    assert evaluators["cold-bytes"].store.is_frozen
    for shard in evaluators["cold-sharded4"].store.shards:
        assert shard.is_frozen


def test_relation_catalogue_matches_on_cold_kb(world_kb, tmp_path):
    from repro.kb.knowledge_base import KnowledgeBase

    directory = tmp_path / "kb"
    world_kb.save(directory)
    cold_kb = KnowledgeBase.open(directory)
    warm_catalogue = {
        info.iri.value: (info.kind, info.fact_count)
        for info in world_kb.relations()
    }
    cold_catalogue = {
        info.iri.value: (info.kind, info.fact_count)
        for info in cold_kb.relations()
    }
    assert cold_catalogue == warm_catalogue
