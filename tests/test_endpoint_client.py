"""Unit tests for the typed endpoint client."""

import pytest

from repro.endpoint.client import EndpointClient
from repro.endpoint.endpoint import SparqlEndpoint
from repro.rdf.namespace import OWL
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple
from repro.store.triplestore import TripleStore

from tests.conftest import EX, EX2


@pytest.fixture
def client(people_store) -> EndpointClient:
    return EndpointClient(SparqlEndpoint(people_store, name="people"))


class TestRelationQueries:
    def test_relations(self, client):
        relations = client.relations()
        assert EX.bornIn in relations
        assert EX.name in relations

    def test_relations_with_limit(self, client):
        assert len(client.relations(limit=2)) <= 2

    def test_count_facts(self, client):
        assert client.count_facts(EX.bornIn) == 3
        assert client.count_facts(EX.unknown) == 0

    def test_count_subjects(self, client):
        assert client.count_subjects(EX.profession) == 3

    def test_facts_with_paging(self, client):
        all_facts = client.facts(EX.bornIn)
        assert len(all_facts) == 3
        page = client.facts(EX.bornIn, limit=2, offset=1)
        assert len(page) == 2

    def test_paged_iteration_covers_all_facts_exactly_once(self, client):
        """Regression: LIMIT/OFFSET paging must tile the result set.

        The generated SPARQL emits LIMIT before OFFSET (grammar order);
        the offset always applies first, so consecutive pages concatenate
        to the unpaged result with no gaps or overlaps.
        """
        unpaged = client.facts(EX.bornIn)
        paged = []
        offset = 0
        while True:
            page = client.facts(EX.bornIn, limit=2, offset=offset)
            paged.extend(page)
            if len(page) < 2:
                break
            offset += 2
        assert paged == unpaged

    def test_paged_subject_iteration_covers_all_subjects(self, client):
        unpaged = client.subjects(EX.profession)
        paged = []
        offset = 0
        while True:
            page = client.subjects(EX.profession, limit=1, offset=offset)
            paged.extend(page)
            if len(page) < 1:
                break
            offset += 1
        assert paged == unpaged

    def test_paging_emits_limit_before_offset(self, client):
        client.facts(EX.bornIn, limit=2, offset=1)
        query_text = client.endpoint.log.records[-1].query
        assert "LIMIT 2 OFFSET 1" in query_text

    def test_subjects(self, client):
        subjects = client.subjects(EX.bornIn)
        assert EX["Marie_Curie"] in subjects
        assert len(subjects) == 3


class TestEntityQueries:
    def test_objects_of(self, client):
        assert client.objects_of(EX["Marie_Curie"], EX.bornIn) == [EX.Poland]

    def test_has_fact(self, client):
        assert client.has_fact(EX["Marie_Curie"], EX.bornIn, EX.Poland)
        assert not client.has_fact(EX["Marie_Curie"], EX.bornIn, EX.USA)

    def test_subject_has_relation(self, client):
        assert client.subject_has_relation(EX["Marie_Curie"], EX.bornIn)
        assert not client.subject_has_relation(EX.USA, EX.bornIn)

    def test_relations_of_subject(self, client):
        assert set(client.relations_of_subject(EX["Marie_Curie"])) == {
            EX.bornIn,
            EX.name,
            EX.profession,
        }

    def test_relations_between(self, client):
        assert client.relations_between(EX["Marie_Curie"], EX.Poland) == [EX.bornIn]

    def test_facts_of_subjects_batched(self, client):
        facts = client.facts_of_subjects(
            [EX["Marie_Curie"], EX["Albert_Einstein"]], EX.bornIn
        )
        assert len(facts) == 2
        # One endpoint query for the whole batch.
        assert client.endpoint.log.query_count == 1

    def test_facts_of_subjects_empty_input(self, client):
        assert client.facts_of_subjects([], EX.bornIn) == []
        assert client.endpoint.log.query_count == 0

    def test_relations_between_batch(self, client):
        matches = client.relations_between_batch(
            [(EX["Marie_Curie"], EX.Poland), (EX["Frank_Sinatra"], EX.USA)]
        )
        assert len(matches) == 2
        assert {relation for _, relation, _ in matches} == {EX.bornIn}

    def test_describe_subjects(self, client):
        facts = client.describe_subjects([EX["Marie_Curie"]])
        assert len(facts) == 3

    def test_literal_objects(self, client):
        literals = client.literal_objects(EX["Marie_Curie"], EX.name)
        assert literals == [Literal("Marie Curie")]
        assert client.literal_objects(EX["Marie_Curie"], EX.bornIn) == []


class TestSameAsQueries:
    def test_same_as_forward(self, client):
        assert client.same_as(EX["Frank_Sinatra"]) == [EX2["FrankSinatra"]]

    def test_same_as_reverse_direction(self, people_store):
        # A link stored in the opposite direction is still found.
        people_store.add(Triple(EX2["MarieCurie"], OWL.sameAs, EX["Marie_Curie"]))
        client = EndpointClient(SparqlEndpoint(people_store))
        assert client.same_as(EX["Marie_Curie"]) == [EX2["MarieCurie"]]

    def test_same_as_for_subjects_batched(self, client):
        pairs = client.same_as_for_subjects([EX["Frank_Sinatra"], EX["Albert_Einstein"]])
        assert len(pairs) == 2
        assert client.endpoint.log.query_count == 1


class TestSamplingSupport:
    def test_sample_subjects_uses_paging(self, client):
        sample = client.sample_subjects(EX.bornIn, sample_size=2, offset=1)
        assert len(sample) == 2

    def test_disagreement_samples(self):
        store = TripleStore()
        film = EX["film1"]
        store.add_all(
            [
                Triple(film, EX.director, EX["alice"]),
                Triple(film, EX.producer, EX["bob"]),
                Triple(EX["film2"], EX.director, EX["carol"]),
                Triple(EX["film2"], EX.producer, EX["carol"]),
            ]
        )
        client = EndpointClient(SparqlEndpoint(store))
        samples = client.disagreement_samples(primary=EX.director, sibling=EX.producer)
        assert samples == [(film, EX["alice"], EX["bob"])]

    def test_disagreement_samples_respect_limit(self):
        store = TripleStore()
        for index in range(5):
            store.add(Triple(EX[f"f{index}"], EX.director, EX[f"d{index}"]))
            store.add(Triple(EX[f"f{index}"], EX.producer, EX[f"p{index}"]))
        client = EndpointClient(SparqlEndpoint(store))
        assert len(client.disagreement_samples(EX.director, EX.producer, limit=3)) == 3
