"""Differential fuzzing: warm vs mmap-reopened vs sharded-reopened stores.

For hypothesis-generated stores and query workloads, the same data must
answer every query identically (as solution multisets) no matter which
representation serves it:

* the warm in-memory store (planned evaluator — the reference, itself
  cross-checked against the naive nested-loop path elsewhere);
* the store saved to a snapshot and reopened cold via ``mmap``;
* sharded stores at 1, 2 and 8 shards, saved and reopened cold through
  the scatter/gather evaluator.

The workload covers BGP joins, OPTIONAL, UNION, ASK, LIMIT, COUNT /
COUNT DISTINCT and VALUES (with UNDEF rows).  LIMIT pages may differ
*which* rows they pick between representations (iteration order is not
part of the contract), so those assert valid-subset-of-the-full-result
semantics instead of row identity.
"""

import tempfile
import threading
from collections import Counter
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.endpoint.policy import AccessPolicy
from repro.endpoint.simulation import SimulatedSparqlEndpoint
from repro.sparql.parser import parse_query

from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.sparql.ast import (
    AskQuery,
    CountExpression,
    GroupGraphPattern,
    OptionalNode,
    ProjectionItem,
    SelectQuery,
    TriplePatternNode,
    UnionNode,
    ValuesNode,
)
from repro.sparql.bindings import Variable
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store.triplestore import TripleStore

EX = Namespace("http://diffpersist.test/")

SHARD_COUNTS = (1, 2, 8)

# Deliberately tiny vocabulary so random BGPs actually join (mirrors
# test_shard_property.py), plus literals so the lazy dictionary's decode
# path sees every term kind.
_iris = st.sampled_from([EX[f"n{index}"] for index in range(6)])
_literals = st.sampled_from(
    [Literal("v0"), Literal("v1", language="en"), Literal(7)]
)
_objects = st.one_of(_iris, _literals)
_variables = st.sampled_from([Variable(name) for name in "abc"])
_subject_terms = st.one_of(_variables, _iris)
_object_terms = st.one_of(_variables, _iris)
_patterns = st.builds(
    TriplePatternNode, _subject_terms, _subject_terms, _object_terms
)
_triples = st.lists(st.builds(Triple, _iris, _iris, _objects), max_size=40)
_values_nodes = st.lists(
    st.tuples(st.one_of(st.none(), _iris), st.one_of(st.none(), _iris)),
    min_size=1,
    max_size=3,
).map(
    lambda rows: ValuesNode(variables=(Variable("a"), Variable("b")), rows=tuple(rows))
)


def _multiset(result) -> Counter:
    return Counter(frozenset(row.items()) for row in result)


def _reopened_evaluators(triples):
    """(reference, [evaluator per representation]) over one dataset.

    Every reopened store lives in a fresh temporary directory; the mmap
    stays valid for the evaluators' lifetime because the store retains
    the mapped buffer.
    """
    warm = TripleStore(triples=triples)
    evaluators = [("warm", QueryEvaluator(warm))]
    tmp = Path(tempfile.mkdtemp(prefix="diffpersist-"))
    warm.save(tmp / "single.snap")
    evaluators.append(
        ("cold-mmap", QueryEvaluator(TripleStore.open(tmp / "single.snap")))
    )
    for count in SHARD_COUNTS:
        sharded = ShardedTripleStore(num_shards=count, triples=triples)
        directory = tmp / f"shards{count}"
        sharded.save(directory)
        evaluators.append(
            (
                f"cold-shards{count}",
                ShardedQueryEvaluator(ShardedTripleStore.open(directory)),
            )
        )
    # The same dataset arriving as base + mutation burst must replay
    # (delta chain) and fold (compact) to identical answers.
    half = len(triples) // 2
    chained = TripleStore(triples=triples[:half])
    chained.save(tmp / "chain.snap")
    for triple in triples[half:]:
        chained.add(triple)
    chained.save_delta(tmp / "chain.snap")
    evaluators.append(
        ("delta-replay", QueryEvaluator(TripleStore.open(tmp / "chain.snap")))
    )
    chained.compact(tmp / "chain.snap")
    evaluators.append(
        ("compacted", QueryEvaluator(TripleStore.open(tmp / "chain.snap")))
    )
    sharded_chain = ShardedTripleStore(num_shards=2, triples=iter(triples[:half]))
    chain_dir = tmp / "chain-shards2"
    sharded_chain.save(chain_dir)
    for triple in triples[half:]:
        sharded_chain.add(triple)
    sharded_chain.save_delta(chain_dir)
    evaluators.append(
        (
            "delta-shards2",
            ShardedQueryEvaluator(ShardedTripleStore.open(chain_dir)),
        )
    )
    sharded_chain.compact(chain_dir)
    evaluators.append(
        (
            "compacted-shards2",
            ShardedQueryEvaluator(ShardedTripleStore.open(chain_dir)),
        )
    )
    return evaluators


def _assert_identical(query, triples):
    evaluators = _reopened_evaluators(triples)
    _, reference = evaluators[0]
    expected = _multiset(reference.evaluate(query))
    for label, evaluator in evaluators[1:]:
        assert _multiset(evaluator.evaluate(query)) == expected, label


class TestDifferentialSelect:
    @given(_triples, st.lists(_patterns, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_bgp_join(self, triples, patterns):
        query = SelectQuery(
            projection=(),
            where=GroupGraphPattern(tuple(patterns)),
            select_all=True,
        )
        _assert_identical(query, triples)

    @given(_triples, _patterns, st.lists(_patterns, min_size=1, max_size=2))
    @settings(max_examples=20, deadline=None)
    def test_optional(self, triples, required, optionals):
        query = SelectQuery(
            projection=(),
            where=GroupGraphPattern(
                (required, OptionalNode(GroupGraphPattern(tuple(optionals))))
            ),
            select_all=True,
        )
        _assert_identical(query, triples)

    @given(
        _triples,
        st.lists(_patterns, min_size=1, max_size=2),
        st.lists(_patterns, min_size=1, max_size=2),
    )
    @settings(max_examples=20, deadline=None)
    def test_union(self, triples, left, right):
        query = SelectQuery(
            projection=(),
            where=GroupGraphPattern(
                (
                    UnionNode(
                        branches=(
                            GroupGraphPattern(tuple(left)),
                            GroupGraphPattern(tuple(right)),
                        )
                    ),
                )
            ),
            select_all=True,
        )
        _assert_identical(query, triples)

    @given(_triples, _values_nodes, st.lists(_patterns, min_size=1, max_size=2))
    @settings(max_examples=20, deadline=None)
    def test_values_with_undef(self, triples, values, patterns):
        query = SelectQuery(
            projection=(),
            where=GroupGraphPattern((values,) + tuple(patterns)),
            select_all=True,
        )
        _assert_identical(query, triples)


class TestDifferentialAskLimitCount:
    @given(_triples, st.lists(_patterns, min_size=1, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_ask(self, triples, patterns):
        query = AskQuery(where=GroupGraphPattern(tuple(patterns)))
        evaluators = _reopened_evaluators(triples)
        _, reference = evaluators[0]
        expected = bool(reference.evaluate(query))
        for label, evaluator in evaluators[1:]:
            assert bool(evaluator.evaluate(query)) == expected, label

    @given(
        _triples,
        st.lists(_patterns, min_size=1, max_size=3),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=20, deadline=None)
    def test_limit_pages_are_valid_subsets(self, triples, patterns, limit):
        where = GroupGraphPattern(tuple(patterns))
        full = SelectQuery(projection=(), where=where, select_all=True)
        paged = SelectQuery(
            projection=(), where=where, select_all=True, limit=limit
        )
        evaluators = _reopened_evaluators(triples)
        _, reference = evaluators[0]
        universe = _multiset(reference.evaluate(full))
        expected_size = min(limit, sum(universe.values()))
        for label, evaluator in evaluators[1:]:
            page = _multiset(evaluator.evaluate(paged))
            assert sum(page.values()) == expected_size, label
            for row, count in page.items():
                assert universe[row] >= count, label

    @given(_triples, st.lists(_patterns, min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_count_and_count_distinct(self, triples, patterns):
        projection = (
            ProjectionItem(expression=CountExpression(), alias=Variable("c")),
            ProjectionItem(
                expression=CountExpression(variable=Variable("a"), distinct=True),
                alias=Variable("d"),
            ),
        )
        query = SelectQuery(
            projection=projection,
            where=GroupGraphPattern(tuple(patterns)),
        )
        _assert_identical(query, triples)

class TestDifferentialHandover:
    """Mid-wave handover: a query racing a live refresh must answer with
    exactly the pre-mutation or the post-mutation dataset — never a
    blend — at every shard count and on both scatter backends."""

    def _dataset(self, count=90):
        return [
            Triple(EX[f"h{i:03d}"], EX.p, EX[f"o{i % 5}"]) for i in range(count)
        ]

    def _extras(self, count=30):
        return [Triple(EX[f"hx{i}"], EX.p, EX[f"o{i % 3}"]) for i in range(count)]

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_wave_across_refresh_sees_one_generation(
        self, tmp_path, num_shards, backend
    ):
        base, extras = self._dataset(), self._extras()
        select = "SELECT ?s ?o WHERE { ?s <http://diffpersist.test/p> ?o }"
        expected_before = _multiset(
            QueryEvaluator(TripleStore(triples=base)).evaluate(
                parse_query(select)
            )
        )
        expected_after = _multiset(
            QueryEvaluator(TripleStore(triples=base + extras)).evaluate(
                parse_query(select)
            )
        )
        store = ShardedTripleStore(num_shards=num_shards)
        store.bulk_load(base)
        with SimulatedSparqlEndpoint(
            store,
            policy=AccessPolicy(max_queries=None, max_result_rows=None),
            backend=backend if backend == "process" else None,
            snapshot_dir=(tmp_path / "snap") if backend == "process" else None,
            pool_size=2 if backend == "process" else None,
        ) as endpoint:
            answers = []
            errors = []
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    try:
                        answers.append(_multiset(endpoint.query(select)))
                    except Exception as error:  # noqa: BLE001 - asserted
                        errors.append(error)

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                endpoint.refresh(
                    mutate=lambda s: [s.add(t) for t in extras],
                    rebalance=num_shards > 1,
                )
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            assert errors == []
            for answer in answers:
                assert answer in (expected_before, expected_after)
            assert (
                _multiset(endpoint.query(select)) == expected_after
            )
