"""Unit tests for namespaces and the namespace manager."""

import pytest

from repro.errors import RDFError
from repro.rdf.namespace import (
    DBO,
    Namespace,
    NamespaceManager,
    OWL,
    RDF,
    SAME_AS,
    XSD,
    YAGO,
)
from repro.rdf.terms import IRI


class TestNamespace:
    def test_attribute_access_mints_iri(self):
        assert YAGO.wasBornIn == IRI("http://yago-knowledge.org/resource/wasBornIn")

    def test_item_access_mints_iri(self):
        assert YAGO["Frank_Sinatra"].value.endswith("Frank_Sinatra")

    def test_term_method(self):
        ns = Namespace("http://example.org/")
        assert ns.term("x") == IRI("http://example.org/x")

    def test_contains(self):
        assert YAGO.wasBornIn in YAGO
        assert YAGO.wasBornIn not in DBO

    def test_local(self):
        assert YAGO.local(YAGO.wasBornIn) == "wasBornIn"
        assert YAGO.local(DBO.birthPlace) is None

    def test_equality(self):
        assert Namespace("http://x.org/") == Namespace("http://x.org/")
        assert Namespace("http://x.org/") != Namespace("http://y.org/")

    def test_empty_base_rejected(self):
        with pytest.raises(RDFError):
            Namespace("")

    def test_underscore_attributes_not_minted(self):
        ns = Namespace("http://example.org/")
        with pytest.raises(AttributeError):
            ns._internal  # noqa: B018

    def test_same_as_constant(self):
        assert SAME_AS == OWL.sameAs


class TestNamespaceManager:
    def test_defaults_include_standard_prefixes(self):
        manager = NamespaceManager.with_defaults()
        assert "rdf" in manager
        assert manager.namespace("owl") == OWL
        assert len(manager) >= 8

    def test_expand(self):
        manager = NamespaceManager.with_defaults()
        assert manager.expand("yago:wasBornIn") == YAGO.wasBornIn

    def test_expand_unknown_prefix(self):
        manager = NamespaceManager.with_defaults()
        with pytest.raises(RDFError):
            manager.expand("nope:thing")

    def test_expand_requires_colon(self):
        manager = NamespaceManager.with_defaults()
        with pytest.raises(RDFError):
            manager.expand("wasBornIn")

    def test_compact(self):
        manager = NamespaceManager.with_defaults()
        assert manager.compact(YAGO.wasBornIn) == "yago:wasBornIn"

    def test_compact_unknown_namespace(self):
        manager = NamespaceManager.with_defaults()
        assert manager.compact(IRI("http://unknown.example/x")) is None

    def test_compact_prefers_longest_base(self):
        manager = NamespaceManager()
        manager.bind("short", "http://example.org/")
        manager.bind("long", "http://example.org/deep/")
        assert manager.compact(IRI("http://example.org/deep/x")) == "long:x"

    def test_compact_rejects_unsafe_local_names(self):
        # Parentheses are legal in IRIs but not in Turtle prefixed names, so
        # the manager must refuse to abbreviate them.
        manager = NamespaceManager.with_defaults()
        assert manager.compact(XSD["foo(bar)"]) is None

    def test_bind_with_string(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://example.org/")
        assert manager.expand("ex:a") == IRI("http://example.org/a")

    def test_bind_rejects_non_namespace(self):
        manager = NamespaceManager()
        with pytest.raises(RDFError):
            manager.bind("x", 42)  # type: ignore[arg-type]

    def test_bindings_iteration(self):
        manager = NamespaceManager()
        manager.bind("a", "http://a.org/")
        manager.bind("b", "http://b.org/")
        assert [prefix for prefix, _ in manager.bindings()] == ["a", "b"]
