"""Generation-swap handover: live refresh with zero failed queries.

``SimulatedSparqlEndpoint.refresh`` quiesces briefly, mutates, persists
a snapshot delta, resumes through an in-process bridge, then boots the
next worker-process generation in the background and swaps atomically.
These tests pin the contract: no query ever errors across a refresh,
every answer is consistent with exactly one generation, the retired
pool's protocol ledger balances, and the query budget refunds cleanly
even when a worker of the outgoing generation is SIGKILLed mid-handover.
"""

import os
import signal
import threading

import pytest

from repro.endpoint import AccessPolicy, SimulatedSparqlEndpoint
from repro.errors import EndpointError
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore
from repro.store.triplestore import TripleStore

EX = Namespace("http://refresh.test/")

SELECT = "SELECT ?s ?o WHERE { ?s <http://refresh.test/p> ?o }"


def _base_triples(count=120):
    return [Triple(EX[f"s{i:03d}"], EX.p, EX[f"o{i % 9}"]) for i in range(count)]


def _extra_triples(count, start=0):
    return [Triple(EX[f"zz{start + i}"], EX.p, EX[f"o{i % 5}"]) for i in range(count)]


def _add_extras(count, start=0):
    def mutate(store):
        for triple in _extra_triples(count, start=start):
            store.add(triple)

    return mutate


def _sharded(num_shards=2, count=120):
    store = ShardedTripleStore(num_shards=num_shards)
    store.bulk_load(_base_triples(count))
    return store


def _ledger_balanced(stats):
    return stats["dispatched"] == (
        stats["completed"] + stats["cancelled"] + stats["failed"] + stats["crashed"]
    )


class TestThreadBackendRefresh:
    def test_refresh_swaps_generation_and_serves_new_data(self):
        endpoint = SimulatedSparqlEndpoint(TripleStore(triples=_base_triples()))
        assert endpoint.generation == 0
        assert len(endpoint.query(SELECT)) == 120
        report = endpoint.refresh(mutate=_add_extras(30))
        assert report["generation"] == endpoint.generation == 1
        assert report["persisted"] is None  # no snapshot to append to
        assert report["paused_seconds"] >= 0.0
        assert len(endpoint.query(SELECT)) == 150

    def test_refresh_without_mutation_still_swaps(self):
        endpoint = SimulatedSparqlEndpoint(TripleStore(triples=_base_triples()))
        report = endpoint.refresh()
        assert report["generation"] == 1
        assert len(endpoint.query(SELECT)) == 120

    def test_sharded_thread_refresh_appends_delta(self, tmp_path):
        store = _sharded()
        directory = tmp_path / "snap"
        store.save(directory)
        endpoint = SimulatedSparqlEndpoint(store)
        report = endpoint.refresh(mutate=_add_extras(25))
        assert report["persisted"] == "delta"
        assert set(ShardedTripleStore.open(directory)) == set(store)
        assert len(endpoint.query(SELECT)) == 145

    def test_refresh_with_rebalance_reports_moves(self, tmp_path):
        store = _sharded()
        store.save(tmp_path / "snap")
        endpoint = SimulatedSparqlEndpoint(store)
        report = endpoint.refresh(mutate=_add_extras(80), rebalance=True)
        assert report["rebalance"]["moved"] > 0
        sizes = report["rebalance"]["shard_sizes"]
        assert sum(sizes) == 200
        assert min(sizes) > 0
        assert len(endpoint.query(SELECT)) == 200

    def test_rebalance_requires_sharded_store(self):
        endpoint = SimulatedSparqlEndpoint(TripleStore(triples=_base_triples()))
        with pytest.raises(EndpointError):
            endpoint.refresh(rebalance=True)

    def test_live_wave_sees_exactly_one_generation(self):
        endpoint = SimulatedSparqlEndpoint(
            _sharded(), policy=AccessPolicy(max_queries=None, max_result_rows=None)
        )
        errors = []
        counts = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    counts.append(len(endpoint.query(SELECT)))
                except Exception as error:  # noqa: BLE001 - the assertion
                    errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            endpoint.refresh(mutate=_add_extras(40))
            endpoint.refresh(mutate=_add_extras(40, start=1000), rebalance=True)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
        assert len(counts) > 0
        # Every answer matches exactly one generation's dataset — never a
        # blend of two.
        assert set(counts) <= {120, 160, 200}
        assert len(endpoint.query(SELECT)) == 200


class TestProcessBackendRefresh:
    def test_refresh_boots_new_pool_and_retires_old(self, tmp_path):
        store = _sharded()
        with SimulatedSparqlEndpoint(
            store, backend="process", snapshot_dir=tmp_path / "snap"
        ) as endpoint:
            assert len(endpoint.query(SELECT)) == 120
            old_executor = endpoint.executor
            report = endpoint.refresh(mutate=_add_extras(30))
            # Bridge swap then process swap: two generations forward.
            assert report["generation"] == endpoint.generation == 2
            assert report["persisted"] in ("delta", "full")
            assert report["drained"] is True
            assert endpoint.executor is not old_executor
            assert _ledger_balanced(old_executor.protocol_stats())
            assert len(endpoint.query(SELECT)) == 150
            assert _ledger_balanced(endpoint.executor.protocol_stats())

    def test_boot_failure_keeps_bridge_serving(self, tmp_path):
        store = _sharded()
        with SimulatedSparqlEndpoint(
            store, backend="process", snapshot_dir=tmp_path / "snap"
        ) as endpoint:
            def broken_serve(*args, **kwargs):
                raise OSError("no file descriptors left for worker pipes")

            store.serve = broken_serve
            try:
                with pytest.raises(OSError):
                    endpoint.refresh(mutate=_add_extras(30))
            finally:
                del store.serve
            # Degraded to the in-process bridge, but serving and correct.
            assert endpoint.generation == 1
            assert len(endpoint.query(SELECT)) == 150
            # The endpoint never stays paused after a failed refresh.
            assert len(endpoint.query(SELECT)) == 150

    def test_sigkill_mid_handover_leaves_ledger_balanced(self, tmp_path):
        store = _sharded()
        with SimulatedSparqlEndpoint(
            store,
            backend="process",
            snapshot_dir=tmp_path / "snap",
            policy=AccessPolicy(max_queries=10_000, max_result_rows=None),
        ) as endpoint:
            old_executor = endpoint.executor
            errors = []
            counts = []
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    try:
                        counts.append(len(endpoint.query(SELECT)))
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                # Kill a worker of the generation being retired while the
                # wave is live, then refresh across the corpse.
                os.kill(old_executor.worker_pids()[0], signal.SIGKILL)
                report = endpoint.refresh(mutate=_add_extras(30))
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            assert report["generation"] == endpoint.generation
            # Either generation answered every query fully or refunded it;
            # nothing was dropped or double-counted.
            crashed = [e for e in errors if "Worker" in type(e).__name__]
            assert errors == crashed  # only worker-crash refunds, if any
            assert set(counts) <= {120, 150}
            # Failed queries were refunded: only successes consumed budget.
            assert endpoint.queries_remaining == 10_000 - len(counts)
            assert _ledger_balanced(old_executor.protocol_stats())
            assert _ledger_balanced(endpoint.executor.protocol_stats())
            assert len(endpoint.query(SELECT)) == 150

    def test_back_to_back_refreshes(self, tmp_path):
        store = _sharded()
        with SimulatedSparqlEndpoint(
            store, backend="process", snapshot_dir=tmp_path / "snap"
        ) as endpoint:
            for round_number in range(2):
                endpoint.refresh(
                    mutate=_add_extras(20, start=round_number * 100),
                    rebalance=(round_number == 1),
                )
            assert endpoint.generation == 4
            assert len(endpoint.query(SELECT)) == 160
            # The snapshot on disk tracks the live store across rounds.
            assert set(ShardedTripleStore.open(tmp_path / "snap")) == set(store)
