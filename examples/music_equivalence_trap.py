"""The paper's §2.2 music example: subsumption mistaken for equivalence.

``composerOf ⇒ creatorOf`` holds, but the reverse does not: ``creatorOf``
also covers writers.  A random sample of composers who only composed makes
the two relations look equivalent; sampling composers who are *also*
writers (the unbiased strategy) exposes the difference.

Run with::

    python examples/music_equivalence_trap.py
"""

import dataclasses

from repro.align import AlignmentConfig, RemoteDataset, SofyaAligner
from repro.evaluation import TextTable
from repro.synthetic import generate_world, music_world_spec


def main() -> None:
    world = generate_world(music_world_spec(artists=220, works=420))
    print(world.describe())
    print()

    source = RemoteDataset.from_kb(world.kb("worksdb"))        # K  (query KB)
    target = RemoteDataset.from_kb(world.kb("musicbrainz"))    # K' (foreign KB)
    creator_of = world.kb("worksdb").namespace.term("creatorOf")

    #: Equivalence demands high confidence in both directions.
    equivalence_threshold = 0.8

    table = TextTable(
        ["method", "rule", "forward conf", "reverse conf", f"equivalent? (τ>{equivalence_threshold})"],
        title="Double subsumption test for worksdb:creatorOf",
    )

    for method_name, use_ubs in (("SSE + pca (baseline)", False), ("UBS + pca (SOFYA)", True)):
        config = dataclasses.replace(
            AlignmentConfig.paper_ubs(sample_size=12),
            use_unbiased_sampling=use_ubs,
            test_equivalence=True,
        )
        aligner = SofyaAligner(source=source, target=target, links=world.links, config=config)
        alignment = aligner.align_relation(creator_of)
        for candidate in alignment.sorted_candidates():
            if candidate.reverse_rule is None:
                continue
            equivalence = candidate.equivalence()
            accepted = equivalence.accepted(equivalence_threshold) if equivalence else False
            table.add_row(
                method_name,
                f"musicbrainz:{candidate.relation.local_name} <=> worksdb:creatorOf",
                candidate.rule.confidence,
                candidate.reverse_rule.confidence,
                "claimed" if accepted else "rejected",
            )
        table.add_separator()

    print(table.render())
    print(
        "\ncomposerOf and writerOf are both *subsumed* by creatorOf (correct),\n"
        "but neither is equivalent to it. The unbiased sample (composers that\n"
        "also write) drives the reverse confidence down, weakening the bogus\n"
        "equivalence claim that the plain random sample supports."
    )


if __name__ == "__main__":
    main()
