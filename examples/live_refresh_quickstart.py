"""Quickstart: zero-downtime refresh of a live sharded endpoint.

Demonstrates the PR 10 live-mutation lifecycle end to end:

1. build a sharded store, snapshot it, and serve it from a
   process-backed simulated endpoint;
2. hammer the endpoint with a live query wave from worker threads;
3. ``refresh()`` mid-wave — the endpoint quiesces intake for the
   mutation+persist instant only (queries queue, never fail), appends
   the burst as per-shard snapshot deltas, optionally rebalances the
   subject-ID boundaries from live shard counts, then boots the next
   worker-process generation over the refreshed snapshot while an
   in-process bridge keeps answering;
4. inspect the refresh report and the retired pool's protocol ledger:
   every query the wave issued either completed or was refunded —
   nothing 5xx'd, nothing blended two generations.

Run with::

    PYTHONPATH=src python examples/live_refresh_quickstart.py
"""

import tempfile
import threading
from pathlib import Path

from repro.endpoint.policy import AccessPolicy
from repro.endpoint.simulation import SimulatedSparqlEndpoint
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore

EX = Namespace("http://example.org/live/")

SELECT = (
    "SELECT ?s ?city WHERE { ?s <http://example.org/live/bornIn> ?city }"
)


def build_store() -> ShardedTripleStore:
    triples = [
        Triple(EX[f"person{i}"], EX[p], EX[f"{p}_{i % 23}"])
        for i in range(4000)
        for p in ("worksAt", "bornIn", "knows")
    ]
    store = ShardedTripleStore(num_shards=4, name="live")
    store.bulk_load(triples)
    return store


def arrival_burst(start: int, count: int = 500):
    """New facts whose subjects intern *after* the snapshot was cut."""

    def mutate(store) -> None:
        for i in range(count):
            store.add(
                Triple(EX[f"arrival{start + i}"], EX.bornIn, EX[f"city{i % 11}"])
            )

    return mutate


def main() -> None:
    store = build_store()
    snapshot_dir = Path(tempfile.mkdtemp(prefix="live-refresh-")) / "snap"
    policy = AccessPolicy(max_result_rows=None, allow_full_scan=True)

    with SimulatedSparqlEndpoint(
        store, policy=policy, backend="process", snapshot_dir=snapshot_dir
    ) as endpoint:
        print(
            f"generation {endpoint.generation}: "
            f"{len(endpoint.query(SELECT))} bornIn facts"
        )

        # A live wave keeps querying throughout both refreshes below.
        counts: list = []
        errors: list = []
        stop = threading.Event()

        def hammer() -> None:
            while not stop.is_set():
                try:
                    counts.append(len(endpoint.query(SELECT)))
                except Exception as error:  # noqa: BLE001 - reported below
                    errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            old_executor = endpoint.executor
            report = endpoint.refresh(mutate=arrival_burst(0))
            print(
                f"refresh #1: generation {report['generation']}, "
                f"persisted={report['persisted']}, "
                f"paused {report['paused_seconds'] * 1000:.1f}ms, "
                f"old pool drained={report['drained']}"
            )

            # Late arrivals pile into the last shard's open ID range;
            # rebalance re-splits the boundaries from live counts and
            # rewrites only the moved shards on the next persist.
            report = endpoint.refresh(
                mutate=arrival_burst(1000), rebalance=True
            )
            moved = report["rebalance"]["moved"]
            sizes = report["rebalance"]["shard_sizes"]
            print(
                f"refresh #2: generation {report['generation']}, "
                f"rebalanced {moved} triples -> shard sizes {sizes}"
            )
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        # The contract the tests pin: zero failures, and every answer
        # consistent with exactly one generation's dataset.
        print(
            f"live wave: {len(counts)} queries, {len(errors)} errors, "
            f"answer sizes seen: {sorted(set(counts))}"
        )
        stats = old_executor.protocol_stats()
        print(
            f"retired pool ledger: dispatched={stats['dispatched']} = "
            f"completed={stats['completed']} + cancelled={stats['cancelled']}"
            f" + failed={stats['failed']} + crashed={stats['crashed']}"
        )
        print(f"final answer: {len(endpoint.query(SELECT))} bornIn facts")

    # The deltas are durable: a cold open replays the chain to the same
    # state the endpoint was serving.
    reopened = ShardedTripleStore.open(snapshot_dir)
    print(f"cold reopen from {snapshot_dir}: {len(reopened)} triples")


if __name__ == "__main__":
    main()
