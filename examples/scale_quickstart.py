"""Scale quickstart: stream a 1M-triple world, cache it, query it.

The script walks the full large-world loop this repo's benchmarks use:

* **generate** — :func:`generate_scale_world` streams dictionary ID
  columns straight into the columnar bulk loader; no per-fact ``Triple``
  objects exist at any point, so a million facts build in a second or
  two and the store arrives frozen (snapshot-grade indexes).
* **cache** — :func:`load_or_generate` keys an on-disk snapshot on the
  spec hash; the second lookup reopens it via mmap instead of
  regenerating (relocate or disable with ``REPRO_WORLD_CACHE``).
* **query** — a 3-pattern chain join evaluated twice: once with the
  vectorized block kernels (the default) and once with the scalar
  per-row operators (``use_vectorized=False``), printing the speedup.

Run with::

    PYTHONPATH=src python examples/scale_quickstart.py
"""

import tempfile
import time
from pathlib import Path

from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.synthetic.cache import load_or_generate
from repro.synthetic.stream import scale_world_spec


def main() -> None:
    cache = Path(tempfile.mkdtemp(prefix="scale-quickstart-"))
    spec = scale_world_spec("1m")
    print(f"spec: {spec.name} — {spec.triples:,} draws over "
          f"{spec.entities:,} entities / {spec.predicates} predicates")

    # ---------------------------------------------------------------- #
    # Generate (cache miss): streamed ID columns, no Triple objects.
    # ---------------------------------------------------------------- #
    first = load_or_generate(spec, root=cache)
    world = first.world
    print(f"generated: {world.describe()}")
    print(f"cache entry: {first.path.name} (hit={first.cache_hit})")

    # ---------------------------------------------------------------- #
    # Reload (cache hit): snapshot reopened via mmap, nothing rebuilt.
    # ---------------------------------------------------------------- #
    start = time.perf_counter()
    second = load_or_generate(spec, root=cache)
    reopen_ms = (time.perf_counter() - start) * 1000
    print(f"second lookup: hit={second.cache_hit} in {reopen_ms:.1f} ms "
          f"(vs {world.build_seconds:.2f} s to generate)")

    # ---------------------------------------------------------------- #
    # Query: vectorized kernels vs the scalar reference.
    # ---------------------------------------------------------------- #
    namespace = spec.namespace
    p4, p5, p6 = (namespace.term(name).value for name in ("p4", "p5", "p6"))
    query = parse_query(
        f"SELECT ?a ?b ?c ?d WHERE {{ ?a <{p4}> ?b . "
        f"?b <{p5}> ?c . ?c <{p6}> ?d }}"
    )
    store = second.store

    start = time.perf_counter()
    rows = len(QueryEvaluator(store).evaluate(query))
    vectorized_ms = (time.perf_counter() - start) * 1000

    start = time.perf_counter()
    scalar_rows = len(QueryEvaluator(store, use_vectorized=False).evaluate(query))
    scalar_ms = (time.perf_counter() - start) * 1000

    assert rows == scalar_rows
    print(f"3-pattern chain join: {rows} rows — "
          f"vectorized {vectorized_ms:.1f} ms vs scalar {scalar_ms:.1f} ms "
          f"({scalar_ms / vectorized_ms:.1f}x)")


if __name__ == "__main__":
    main()
