"""The HTTP service tier in five minutes.

Serves a sharded synthetic world over a real socket speaking the SPARQL
1.1 protocol, then queries it three ways: with the blocking
:class:`HttpSparqlClient`, with the typed
:class:`~repro.endpoint.client.EndpointClient` running unchanged over
HTTP, and with a raw protocol exchange showing the wire format.  Along
the way it demonstrates per-client budgets (429), the
``data_version``-keyed page cache, and the structured access log.

Run with::

    python examples/http_quickstart.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.endpoint import AccessPolicy, EndpointClient
from repro.errors import QueryBudgetExceeded
from repro.http import HttpSparqlClient, serve_http
from repro.synthetic.stream import generate_scale_world, scale_world_spec


def main() -> None:
    world = generate_scale_world(scale_world_spec("13k"), shard_count=2)
    namespace = world.spec.namespace
    prefix = f"PREFIX s: <{namespace.base}> "

    # Every client gets its own 20-query budget over one shared evaluator.
    with serve_http(
        store=world.store,
        name="quickstart",
        client_policy=AccessPolicy(max_queries=20),
    ) as server:
        print(f"Serving {len(world.store):,} triples on {server.url}\n")

        # 1. The blocking client: query/select/ask mirror SparqlEndpoint.
        alice = HttpSparqlClient(server.url, client_id="alice")
        result = alice.select(prefix + "SELECT ?o WHERE { s:e1 s:p0 ?o } LIMIT 5")
        print(f"alice got {len(result)} rows over POST:")
        print(result.to_text())

        # 2. The typed client runs unchanged over the socket.
        typed = EndpointClient(HttpSparqlClient(server.url, client_id="bob"))
        predicate = namespace.term("p0")
        print(f"\nbob counts {typed.count_facts(predicate):,} s:p0 facts "
              "through the typed EndpointClient")

        # 3. Content negotiation: same query, TSV bytes.
        content_type, tsv = alice.query_text(
            prefix + "SELECT ?o WHERE { s:e1 s:p0 ?o } LIMIT 2",
            accept="text/tab-separated-values",
        )
        print(f"\nTSV ({content_type}):\n{tsv}")

        # 4. Repeats hit the page cache but still consume alice's budget.
        for _ in range(30):
            try:
                alice.ask(prefix + "ASK { s:e1 s:p0 ?o }")
            except QueryBudgetExceeded as error:
                print(f"budget enforced over HTTP: {error}")
                break
        health = alice.health()
        metrics = alice.metrics()
        print(f"\n/health: in_flight={health['in_flight']}, "
              f"clients={health['clients']}, shards={health['shards']}")
        print(f"/metrics: cache hits="
              f"{metrics['counters'].get('http.cache.hits', 0)}, "
              f"misses={metrics['counters'].get('http.cache.misses', 0)}")

        # 5. The structured access log spans every client.
        log_path = Path(tempfile.mkdtemp()) / "access.jsonl"
        count = server.server.export_access_log(log_path)
        print(f"\nwrote {count} access-log records to {log_path}")
        print(log_path.read_text().splitlines()[0][:120], "...")

        alice.close()
    print("\nserver drained and stopped")


if __name__ == "__main__":
    main()
