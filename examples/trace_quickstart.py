"""Quickstart: end-to-end query tracing and wave-level telemetry.

Demonstrates the observability layer (``repro.obs``) on a sharded,
process-backed endpoint:

1. ``endpoint.profile(query)`` — one span tree per query, with the
   engine stages (``parse`` / ``evaluate`` / ``scatter`` / ``fold`` /
   ``ship:broadcast-build``) and the **worker-measured** ``worker:exec``
   spans re-parented into the caller's tree, queue wait included;
2. ``WaveScheduler.wave_report()`` — p50/p95/p99 latency percentiles per
   execution mode plus error/crash counts and the worker-protocol
   ledger;
3. the always-on metrics registry — plan-cache, kernel-engagement and
   scatter-mode counters every layer increments;
4. the structured access log (``export_access_log``) with per-query
   measured latency and execution mode.

Setting ``REPRO_TRACE=/path/to/trace.jsonl`` additionally appends every
completed query trace to that file as JSON lines — no code changes
needed; ``profile()`` is for interactive use, the env var for soaking.

Run with::

    PYTHONPATH=src python examples/trace_quickstart.py
"""

import json
import tempfile
from pathlib import Path

from repro.endpoint.simulation import WaveScheduler, sharded_endpoint
from repro.obs.metrics import registry
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple
from repro.shard.sharded_store import ShardedTripleStore

EX = Namespace("http://trace.example/")

STAR_QUERY = (
    "SELECT ?s ?a ?b WHERE { ?s <http://trace.example/p0> ?a . "
    "?s <http://trace.example/p1> ?b }"
)
COUNT_QUERY = (
    "SELECT (COUNT(*) AS ?c) (COUNT(DISTINCT ?a) AS ?d) WHERE "
    "{ ?s <http://trace.example/p0> ?a . ?s <http://trace.example/p1> ?b }"
)
CHAIN_QUERY = (
    "SELECT ?s ?a ?z WHERE { ?s <http://trace.example/p0> ?a . "
    "?a <http://trace.example/link> ?z }"
)


def build_store() -> ShardedTripleStore:
    triples = []
    for i in range(400):
        triples.append(Triple(EX[f"s{i}"], EX.p0, EX[f"a{i % 23}"]))
        triples.append(Triple(EX[f"s{i}"], EX.p1, EX[f"b{i % 11}"]))
    for i in range(23):
        triples.append(Triple(EX[f"a{i}"], EX.link, EX[f"z{i % 5}"]))
    return ShardedTripleStore(num_shards=4, triples=triples)


def main() -> None:
    store = build_store()
    with tempfile.TemporaryDirectory(prefix="trace-quickstart-") as tmp:
        with sharded_endpoint(
            store, backend="process", snapshot_dir=Path(tmp) / "snap"
        ) as endpoint:
            # 1. One profiled query = one span tree.  worker:exec spans
            #    are measured inside the worker processes and re-parented
            #    here; queue_wait_ms is the dispatch-to-pickup latency.
            print("== scatter join, profiled ==")
            profile = endpoint.profile(STAR_QUERY)
            print(profile.describe())

            print("\n== pushed-down COUNT (fold mode) ==")
            print(endpoint.profile(COUNT_QUERY).describe())

            print("\n== s-o chain (broadcast join shipping) ==")
            print(endpoint.profile(CHAIN_QUERY).describe())

            # 2. Wave-level telemetry: latency percentiles per mode.
            with WaveScheduler(endpoint, max_workers=4) as scheduler:
                scheduler.run_wave(
                    [STAR_QUERY] * 6 + [COUNT_QUERY] * 4 + [CHAIN_QUERY] * 2
                )
                print("\n== wave_report ==")
                print(json.dumps(scheduler.wave_report(), indent=2))

            # 3. The always-on registry: what did the engine actually do?
            counters = registry().snapshot()["counters"]
            engine = {
                name: value
                for name, value in counters.items()
                if name.split(".")[0] in ("plan", "kernel", "scatter", "ship")
            }
            print("\n== engine counters ==")
            print(json.dumps(engine, indent=2))

            # 4. The structured access log (mode + measured latency).
            log_path = Path(tmp) / "access.jsonl"
            endpoint.export_access_log(log_path)
            print(f"\n== access log (first 3 of {endpoint.log.query_count}) ==")
            for line in log_path.read_text().splitlines()[:3]:
                print(line)


if __name__ == "__main__":
    main()
