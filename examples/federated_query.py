"""The motivating scenario of the paper's introduction: query-time alignment.

A user queries the YAGO-like KB for people and their ``y_equivalent00``
facts, and wants to *complete* the answer with facts the DBpedia-like KB
knows under a different relation name.  Without relation alignment the two
result sets cannot be joined; SOFYA discovers the correspondence at query
time with a few endpoint queries, and the answers are merged through the
``sameAs`` links.

Run with::

    python examples/federated_query.py
"""

from repro.align import AlignmentConfig, RemoteDataset, SofyaAligner
from repro.endpoint import AccessPolicy, EndpointClient
from repro.synthetic import generate_world, yago_dbpedia_spec


def main() -> None:
    spec = yago_dbpedia_spec(
        families=10,
        yago_relation_count=30,
        dbpedia_relation_count=80,
        people=220,
        works=160,
        places=80,
        orgs=60,
        seed=41,
    )
    world = generate_world(spec)
    yago, dbpedia = world.kb_pair()
    print(world.describe())

    policy = AccessPolicy.public_endpoint()
    yago_remote = RemoteDataset.from_kb(yago, policy=policy)
    dbpedia_remote = RemoteDataset.from_kb(dbpedia, policy=policy)

    # The user's query relation, known only in the YAGO-like vocabulary.
    query_relation = yago.namespace.term("y_equivalent00")
    yago_client = EndpointClient(yago_remote.client.endpoint)

    local_answers = yago_client.facts(query_relation, limit=1000)
    print(f"\nLocal answers from yago ({query_relation.local_name}): {len(local_answers)} facts")

    # 1. Align the query relation against the DBpedia-like KB on the fly.
    aligner = SofyaAligner(
        source=yago_remote, target=dbpedia_remote, links=world.links,
        config=AlignmentConfig.paper_ubs(),
    )
    alignment = aligner.align_relation(query_relation)
    accepted = alignment.accepted(threshold=0.3)
    if not accepted:
        print("No corresponding DBpedia relation found; nothing to federate.")
        return
    best = accepted[0]
    print(f"Discovered alignment: {best}")

    # 2. Fetch the aligned relation's facts from the remote KB and translate
    #    them back into the local vocabulary through the sameAs set.
    dbpedia_client = EndpointClient(dbpedia_remote.client.endpoint)
    remote_facts = dbpedia_client.facts(best.premise.relation, limit=1000)
    translated = set()
    for subject, obj in remote_facts:
        local_subject = world.links.translate(subject, yago.namespace)
        local_object = world.links.translate(obj, yago.namespace)
        if local_subject is not None and local_object is not None:
            translated.add((local_subject, local_object))

    known = set(local_answers)
    new_facts = translated - known
    print(f"Remote facts fetched from dbpedia: {len(remote_facts)}")
    print(f"Of those, translatable through sameAs: {len(translated)}")
    print(f"New answers the federated query gains: {len(new_facts)}")

    statistics = aligner.query_statistics()
    print("\nEndpoint accounting (alignment phase only):")
    for name, stats in statistics.items():
        print(f"  {name:>8}: {stats['queries']:.0f} queries, {stats['rows']:.0f} rows")


if __name__ == "__main__":
    main()
