"""Persist quickstart: save a KB to disk and reopen it cold via mmap.

The script builds a synthetic world, saves one KB as a columnar snapshot,
reopens it *cold* — no re-interning, no re-sorting — and shows that

* opening is orders of magnitude faster than rebuilding the store,
* the very first planned query works on the cold store (the planner and
  join operators read the same index bookkeeping off the mmap'd columns),
* the first mutation transparently promotes the store back to the
  writable in-memory form,

then does the same for a sharded store (one shared dictionary file, one
columns file per shard).

Run with::

    PYTHONPATH=src python examples/persist_quickstart.py
"""

import tempfile
import time
from pathlib import Path

from repro.kb import KnowledgeBase
from repro.rdf import Literal, Triple
from repro.shard import ShardedTripleStore
from repro.store import TripleStore
from repro.synthetic.generator import generate_world
from repro.synthetic.presets import music_world_spec


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="persist-quickstart-"))
    world = generate_world(music_world_spec())
    kb = world.kb("musicbrainz")
    triples = list(kb.store)
    print(f"built KB {kb.name!r}: {len(triples)} triples, "
          f"{len(kb.store.dictionary)} terms")

    # ---------------------------------------------------------------- #
    # Save once, reopen cold.
    # ---------------------------------------------------------------- #
    snapshot = workdir / "musicbrainz.snap"
    start = time.perf_counter()
    kb.store.save(snapshot)
    print(f"saved snapshot: {snapshot.stat().st_size} bytes "
          f"in {(time.perf_counter() - start) * 1000:.1f} ms")

    start = time.perf_counter()
    rebuilt = TripleStore(name="rebuilt")
    rebuilt.bulk_load(triples)
    rebuild_ms = (time.perf_counter() - start) * 1000

    start = time.perf_counter()
    cold = TripleStore.open(snapshot)  # mmap=True, checksums verified
    open_ms = (time.perf_counter() - start) * 1000
    print(f"columnar rebuild: {rebuild_ms:.1f} ms | cold open: {open_ms:.2f} ms "
          f"({rebuild_ms / open_ms:.0f}x faster)")

    # The cold store answers planned queries immediately: frozen columns
    # satisfy the same count/run bookkeeping the planner reads.
    relation = max(kb.relations(), key=lambda info: info.fact_count).iri
    count = cold.count(predicate=relation)
    print(f"cold store: COUNT({relation.local_name}) = {count} "
          f"(frozen={cold.is_frozen})")

    # First mutation promotes transparently (copy-on-write, the file is
    # never touched).
    subject = next(iter(cold.subjects()))
    cold.add(Triple(subject, relation, Literal("new fact")))
    print(f"after one add: frozen={cold.is_frozen}, size={len(cold)}")

    # ---------------------------------------------------------------- #
    # A whole KB (store + namespace + name) round-trips through a
    # directory, and serves its endpoint straight off the mmap.
    # ---------------------------------------------------------------- #
    kb_dir = workdir / "kb"
    kb.save(kb_dir)
    reopened = KnowledgeBase.open(kb_dir)
    ask = reopened.endpoint().ask(
        f"ASK {{ ?s <{relation.value}> ?o }}"
    )
    print(f"reopened KB {reopened.name!r}: {len(reopened)} triples, "
          f"endpoint ASK over {relation.local_name} -> {ask}")

    # ---------------------------------------------------------------- #
    # Sharded snapshot: manifest + shared dictionary + per-shard columns.
    # ---------------------------------------------------------------- #
    sharded = ShardedTripleStore(num_shards=4, name="musicbrainz", triples=triples)
    shard_dir = workdir / "sharded"
    sharded.save(shard_dir)
    cold_sharded = ShardedTripleStore.open(shard_dir)
    print(f"sharded snapshot files: "
          f"{sorted(p.name for p in shard_dir.iterdir())}")
    print(f"reopened sharded store: shards={cold_sharded.num_shards}, "
          f"sizes={cold_sharded.shard_sizes()}, "
          f"boundaries={cold_sharded.boundaries}")


if __name__ == "__main__":
    main()
