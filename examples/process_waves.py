"""Quickstart: process-parallel shard workers serving query waves.

Demonstrates the PR 5 deployment shape end to end:

1. build a sharded store (8 subject-range shards, shared dictionary);
2. ``serve()`` — snapshot the store to a directory (skipped when an
   up-to-date snapshot is already there) and boot one worker process
   per shard, each mmap-opening its shard's columns plus the shared
   lazy dictionary: nothing is pickled, nothing re-interned;
3. run thread-pool query waves against a process-backed simulated
   endpoint and compare against the in-process thread backend;
4. peek at the worker diagnostics the fault-injection tests rely on.

The worker protocol is snapshot-first by design: workers only ever see
the on-disk columns, so the store must be snapshotted (``serve()`` does
it on demand) and must not be mutated while being served — the evaluator
rejects a stale executor instead of answering from two versions.

Run with::

    PYTHONPATH=src python examples/process_waves.py
"""

import tempfile
from pathlib import Path

from repro.endpoint.policy import AccessPolicy
from repro.endpoint.simulation import WaveScheduler, sharded_endpoint
from repro.rdf.namespace import Namespace
from repro.rdf.triple import Triple

from repro.shard.sharded_store import ShardedTripleStore

EX = Namespace("http://example.org/proc/")


def build_store() -> ShardedTripleStore:
    triples = [
        Triple(EX[f"person{i}"], EX[p], EX[f"{p}_{i % 23}"])
        for i in range(4000)
        for p in ("worksAt", "bornIn", "knows")
    ]
    return ShardedTripleStore(num_shards=8, name="people", triples=triples)


def main() -> None:
    store = build_store()
    snapshot_dir = Path(tempfile.mkdtemp(prefix="process-waves-")) / "snap"

    # An alignment-style co-partitioned wave: every pattern shares the
    # subject variable, so each query scatters cleanly over the shards.
    wave = [
        "SELECT ?s ?a ?b WHERE { ?s <http://example.org/proc/worksAt> ?a . "
        "?s <http://example.org/proc/bornIn> ?b }",
        "SELECT ?s ?o WHERE { ?s <http://example.org/proc/knows> ?o . "
        "?s ?p ?x }",
        "ASK { ?s <http://example.org/proc/worksAt> "
        "<http://example.org/proc/worksAt_3> }",
    ] * 8
    policy = AccessPolicy(max_result_rows=None, allow_full_scan=True)

    # Thread backend: in-process scatter, waves overlap on the GIL.
    with WaveScheduler(
        sharded_endpoint(store, policy=policy), max_workers=8
    ) as scheduler:
        thread_wave = scheduler.run_wave(wave)
    print(
        f"thread backend : {thread_wave.succeeded} queries, "
        f"{thread_wave.throughput:.0f} q/s"
    )

    # Process backend: serve() snapshots (store is dirty the first time)
    # and boots one worker per shard; the endpoint owns the pool.
    with sharded_endpoint(
        store, policy=policy, backend="process", snapshot_dir=snapshot_dir
    ) as endpoint:
        with WaveScheduler(endpoint, max_workers=8) as scheduler:
            process_wave = scheduler.run_wave(wave)
        print(
            f"process backend: {process_wave.succeeded} queries, "
            f"{process_wave.throughput:.0f} q/s "
            "(scales with cores; see BENCH_proc.json)"
        )

        # Worker diagnostics: one process per shard, nothing promoted,
        # every shard index still frozen — queries crossed the process
        # boundary as serialized ID-binding batches, not as objects.
        for info in endpoint.executor.ping_all():
            print(
                f"  worker {info['worker']} pid={info['pid']} "
                f"shards={info['shards']} "
                f"promoted={info['promoted']} "
                f"tasks={info['tasks_served']}"
            )

    # The snapshot is reusable: a second serve() boots instantly without
    # rewriting (the store tracks its last-saved mutation stamp).
    with store.serve(snapshot_dir) as executor:
        print(f"re-served {executor.num_shards} shards from {snapshot_dir}")


if __name__ == "__main__":
    main()
