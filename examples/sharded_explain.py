"""Sharded query plans: shards probed vs pruned, scatter vs global gather.

Builds the YAGO-like KB over a 4-shard :class:`ShardedTripleStore` and
prints ``ShardedQueryEvaluator.explain`` output for the query shapes the
aligner issues:

* a star query (all patterns share one subject variable) — *scattered*:
  the planned operator pipeline runs per shard and the streams chain;
* the same star with a ``VALUES`` clause — routing narrows to the shards
  owning the listed subjects, the rest are pruned before any scan;
* a cross-subject chain join — evaluated on the *global* merged view,
  where sorted per-shard runs concatenate into the merge-join input;
* a pattern over a predicate only one shard contains — count pruning
  eliminates the empty shards per pattern.

Run with::

    PYTHONPATH=src python examples/sharded_explain.py
"""

from repro.rdf.ntriples import term_to_ntriples
from repro.shard import ShardedTripleStore
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.synthetic import generate_world, yago_dbpedia_spec


def show(evaluator: ShardedQueryEvaluator, title: str, query: str) -> None:
    print(f"--- {title}")
    print(query.strip())
    print()
    print(evaluator.explain(query).describe())
    result = evaluator.evaluate(query)
    try:
        size = len(result)  # type: ignore[arg-type]
    except TypeError:
        size = int(bool(result))
    print(f"=> {size} rows\n")


def main() -> None:
    spec = yago_dbpedia_spec(
        families=10,
        yago_relation_count=30,
        dbpedia_relation_count=80,
        people=220,
        works=160,
        places=80,
        orgs=60,
        seed=41,
    )
    world = generate_world(spec, shard_count=4)
    yago = world.kb("yago")
    store = yago.store
    assert isinstance(store, ShardedTripleStore)
    print(f"{store!r}  shard sizes: {store.shard_sizes()}")
    print(f"boundaries (subject-ID cut points): {store.boundaries}\n")

    evaluator = ShardedQueryEvaluator(store)
    relation = yago.namespace.term("y_equivalent00")
    shadow = yago.namespace.term("y_equivalent00_shadow")
    subjects = list(store.subjects(relation))[:3]
    values = " ".join(term_to_ntriples(subject) for subject in subjects)

    show(
        evaluator,
        "star query: scattered, full pipeline per shard",
        f"SELECT ?s ?o ?o2 WHERE {{ ?s <{relation.value}> ?o . "
        f"?s <{shadow.value}> ?o2 }}",
    )
    show(
        evaluator,
        "VALUES-routed star: only the owning shards evaluate",
        f"SELECT ?s ?p ?o WHERE {{ VALUES ?s {{ {values} }} ?s ?p ?o }}",
    )
    show(
        evaluator,
        "chain join: global gather over the merged shard view",
        f"SELECT ?s ?x ?p WHERE {{ ?s <{relation.value}> ?x . "
        f"?x ?p ?s }}",
    )
    # A fact present in exactly one shard: count pruning removes the rest.
    sample = next(iter(store.match(predicate=relation)))
    show(
        evaluator,
        "subject-routed probe: one shard probed, the rest pruned",
        f"SELECT ?o WHERE {{ {term_to_ntriples(sample.subject)} <{relation.value}> ?o }}",
    )


if __name__ == "__main__":
    main()
