"""Quickstart: align the relations of two small knowledge bases on the fly.

The script builds two tiny KBs describing the same people with different
vocabularies, links a few entities with ``owl:sameAs``, exposes both KBs as
SPARQL endpoints, and asks SOFYA which relation of KB ``B`` corresponds to
``A:bornIn`` — using only a handful of endpoint queries.

Run with::

    python examples/quickstart.py
"""

from repro.align import AlignmentConfig, RemoteDataset, SofyaAligner
from repro.kb import KnowledgeBase, SameAsIndex
from repro.rdf import Literal, Namespace

A_NS = Namespace("http://example.org/kb-a/")
B_NS = Namespace("http://example.org/kb-b/")


def build_kbs() -> tuple[KnowledgeBase, KnowledgeBase, SameAsIndex]:
    """Two KBs about the same people, plus the sameAs link set between them."""
    kb_a = KnowledgeBase("kb-a", A_NS)
    kb_b = KnowledgeBase("kb-b", B_NS)
    links = SameAsIndex()

    people = [
        ("Frank_Sinatra", "USA", 1915),
        ("Marie_Curie", "Poland", 1867),
        ("Albert_Einstein", "Germany", 1879),
        ("Ada_Lovelace", "England", 1815),
        ("Alan_Turing", "England", 1912),
        ("Grace_Hopper", "USA", 1906),
        ("Nikola_Tesla", "Croatia", 1856),
        ("Leonhard_Euler", "Switzerland", 1707),
        ("Emmy_Noether", "Germany", 1882),
        ("Srinivasa_Ramanujan", "India", 1887),
        ("Rosalind_Franklin", "England", 1920),
        ("Katherine_Johnson", "USA", 1918),
    ]
    for name, country, year in people:
        person_a, person_b = A_NS[name], B_NS[name.lower()]
        country_a, country_b = A_NS[country], B_NS[country.lower()]

        # KB A uses "bornIn" / "name"; KB B uses "birthCountry" / "label".
        kb_a.add_fact(person_a, A_NS.bornIn, country_a)
        kb_a.add_fact(person_a, A_NS.name, Literal(name.replace("_", " ")))
        kb_a.add_fact(person_a, A_NS.bornInYear, Literal(year))
        kb_b.add_fact(person_b, B_NS.birthCountry, country_b)
        kb_b.add_fact(person_b, B_NS.label, Literal(name.replace("_", " ").upper()))
        # KB B also stores where people *worked* - correlated with birth
        # country but by no means the same relation.
        kb_b.add_fact(person_b, B_NS.workedIn, country_b if year % 3 else B_NS.usa)

        links.add_link(person_a, person_b)
        links.add_link(country_a, country_b)

    return kb_a, kb_b, links


def main() -> None:
    kb_a, kb_b, links = build_kbs()

    # The aligner only ever sees the two KBs through SPARQL endpoints.
    source = RemoteDataset.from_kb(kb_a)   # K  : the KB we are querying
    target = RemoteDataset.from_kb(kb_b)   # K' : the KB whose relations we align

    config = AlignmentConfig.paper_ubs(sample_size=8)
    aligner = SofyaAligner(source=source, target=target, links=links, config=config)

    for relation_name in ("bornIn", "name"):
        relation = A_NS[relation_name]
        alignment = aligner.align_relation(relation)
        print(f"\nCandidates for kb-a:{relation_name}")
        for candidate in alignment.sorted_candidates():
            flag = " (pruned by UBS)" if candidate.rule.pruned_by_ubs else ""
            print(
                f"  kb-b:{candidate.relation.local_name:<14} "
                f"pca={candidate.confidence:.2f} support={candidate.rule.support}{flag}"
            )
        accepted = alignment.accepted(threshold=0.3)
        print("  accepted:", ", ".join(str(rule) for rule in accepted) or "none")

    stats = aligner.query_statistics()
    total_queries = sum(s["queries"] for s in stats.values())
    print(f"\nTotal endpoint queries issued: {total_queries:.0f}")
    print("(the two KBs together hold", len(kb_a.store) + len(kb_b.store), "triples)")


if __name__ == "__main__":
    main()
