"""The paper's §2.2 movie example: overlap mistaken for subsumption.

``hasProducer ⇒ directedBy`` looks true on a random sample because the same
person often directs *and* produces a movie.  The Unbiased Sample
Extraction strategy specifically samples movies whose producer and director
differ, finds the contradiction, and prunes the wrong alignment.

Run with::

    python examples/movie_overlap_trap.py
"""

from repro.align import AlignmentConfig, RemoteDataset, SofyaAligner
from repro.evaluation import TextTable
from repro.synthetic import generate_world, movie_world_spec


def align(world, config: AlignmentConfig):
    """Align filmdb:directedBy against the imdb relations with one config."""
    source = RemoteDataset.from_kb(world.kb("filmdb"))
    target = RemoteDataset.from_kb(world.kb("imdb"))
    aligner = SofyaAligner(source=source, target=target, links=world.links, config=config)
    relation = world.kb("filmdb").namespace.term("directedBy")
    return aligner.align_relation(relation), aligner.query_statistics()


def main() -> None:
    world = generate_world(movie_world_spec(films=200, people=240))
    print(world.describe())
    print()

    table = TextTable(
        ["method", "candidate", "confidence", "contradictions", "accepted?"],
        title="Aligning filmdb:directedBy against the imdb vocabulary",
    )

    for method_name, config in (
        ("SSE + pca (baseline)", AlignmentConfig.paper_pca_baseline()),
        ("UBS + pca (SOFYA)", AlignmentConfig.paper_ubs()),
    ):
        alignment, _ = align(world, config)
        for candidate in alignment.sorted_candidates():
            accepted = candidate.rule.accepted(config.confidence_threshold)
            table.add_row(
                method_name,
                f"imdb:{candidate.relation.local_name}",
                candidate.confidence,
                candidate.ubs_contradictions,
                "yes" if accepted else "no",
            )
        table.add_separator()

    print(table.render())
    print(
        "\nThe gold standard: only imdb:hasDirector is subsumed by filmdb:directedBy.\n"
        "The baseline accepts imdb:hasProducer as well (the overlap trap);\n"
        "UBS finds movies whose producer did not direct and prunes it."
    )


if __name__ == "__main__":
    main()
