"""SOFYA: Semantic on-the-fly Relation Alignment — full reproduction.

This package reproduces the system described in

    Koutraki, Preda, Vodislav.
    "SOFYA: Semantic on-the-fly Relation Alignment." EDBT 2016.

It is organised in layers, bottom-up:

``repro.rdf``
    A small, self-contained RDF data model (IRIs, literals, blank nodes,
    triples, namespaces) with N-Triples and Turtle serialisation.
``repro.store``
    An in-memory, fully indexed triple store with pattern matching and
    per-relation statistics.
``repro.sparql``
    A SPARQL subset engine (lexer, parser, algebra, evaluator) sufficient
    for the queries SOFYA issues against remote endpoints.
``repro.endpoint``
    A SPARQL endpoint simulator: a query-only facade over a store with an
    access policy (query quotas, row caps, latency model) and accounting.
``repro.kb``
    Knowledge-base level abstractions: relation metadata, inverse
    relations, ``owl:sameAs`` equivalence index, multi-KB catalog.
``repro.similarity``
    String similarity functions used to align entity-literal relations.
``repro.align``
    The paper's contribution: subsumption/equivalence rules, CWA and PCA
    confidence measures, Simple Sample Extraction, Unbiased Sample
    Extraction, and the on-the-fly :class:`~repro.align.SofyaAligner`.
``repro.baselines``
    Full-snapshot miners and a PARIS-like probabilistic aligner used as
    comparison points.
``repro.synthetic``
    Deterministic synthetic KB-pair generators with planted ground truth,
    including YAGO-like / DBpedia-like presets.
``repro.evaluation``
    Precision/recall/F1, threshold selection, experiment runner and table
    rendering used by the benchmark harness.
"""

from repro.align import (
    AlignmentConfig,
    AlignmentResult,
    SofyaAligner,
    cwa_confidence,
    pca_confidence,
)
from repro.kb import KnowledgeBase, SameAsIndex
from repro.rdf import IRI, BlankNode, Literal, Triple
from repro.store import TripleStore
from repro.endpoint import AccessPolicy, SparqlEndpoint

__version__ = "1.0.0"

__all__ = [
    "IRI",
    "Literal",
    "BlankNode",
    "Triple",
    "TripleStore",
    "SparqlEndpoint",
    "AccessPolicy",
    "KnowledgeBase",
    "SameAsIndex",
    "SofyaAligner",
    "AlignmentConfig",
    "AlignmentResult",
    "cwa_confidence",
    "pca_confidence",
    "__version__",
]
