"""The blocking HTTP client for the SPARQL service tier.

:class:`HttpSparqlClient` speaks the SPARQL 1.1 protocol over a plain
stdlib :class:`http.client.HTTPConnection` and mirrors the
:class:`~repro.endpoint.endpoint.SparqlEndpoint` query surface —
``query`` / ``select`` / ``ask`` plus a ``name`` — so the typed
:class:`~repro.endpoint.client.EndpointClient` runs unchanged against a
server across a real socket.  Server-side policy failures come back as
the same exception types in-process callers see: the server puts the
exception class name in its JSON error body and the client re-raises it
(429 → :class:`QueryBudgetExceeded`, 403 with ``ResultTruncated`` →
:class:`ResultTruncated`, 400 → :class:`ParseError` / ...).

One client instance owns one keep-alive connection and is **not**
thread-safe — concurrent callers each create their own, as the
benchmark harness does.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Dict, Optional, Tuple, Union
from urllib.parse import urlencode, urlsplit

from repro.errors import (
    EndpointError,
    ParseError,
    QueryBudgetExceeded,
    ResultTruncated,
    SparqlError,
    WorkerCrashError,
)
from repro.sparql.results import AskResult, ResultSet
from repro.sparql.serialize import (
    SPARQL_JSON_MIME,
    SPARQL_TSV_MIME,
    from_sparql_json,
)

#: Exception classes the server names in its error bodies, by name.
_ERROR_TYPES = {
    "QueryBudgetExceeded": QueryBudgetExceeded,
    "ResultTruncated": ResultTruncated,
    "WorkerCrashError": WorkerCrashError,
    "EndpointError": EndpointError,
    "ParseError": ParseError,
    "SparqlError": SparqlError,
}


class HttpSparqlClient:
    """A SPARQL 1.1 protocol client over a persistent HTTP connection.

    Parameters
    ----------
    url:
        The server's base URL (``http://host:port``); the SPARQL
        resource lives at ``/sparql``.
    method:
        How ``query()`` ships queries: ``"post"`` (form-encoded, the
        default — query text never hits a URL) or ``"get"``.
    client_id:
        Sent as the ``X-Client`` header; the server admits each distinct
        client through its own policy budget when configured to.
    timeout:
        Socket timeout in seconds for connect and each response.
    """

    def __init__(
        self,
        url: str,
        *,
        method: str = "post",
        client_id: Optional[str] = None,
        timeout: float = 30.0,
    ):
        if method not in ("get", "post"):
            raise EndpointError(f"method must be 'get' or 'post', got {method!r}")
        split = urlsplit(url)
        if split.scheme != "http" or not split.hostname:
            raise EndpointError(f"expected an http://host:port URL, got {url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.method = method
        self.client_id = client_id
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # Connection plumbing
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Endpoint-style name (lets EndpointClient label its queries)."""
        suffix = f"/{self.client_id}" if self.client_id else ""
        return f"http://{self.host}:{self.port}{suffix}"

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Close the underlying connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "HttpSparqlClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request_raw(
        self,
        method: str,
        target: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One HTTP exchange: ``(status, lowercase headers, body)``.

        The conformance tests drive the server through this — it adds
        nothing beyond the ``X-Client`` identity header, so malformed
        and unusual requests reach the server as written.  Retries once
        on a stale keep-alive connection the server has since closed.
        """
        send_headers = dict(headers or {})
        if self.client_id and "X-Client" not in send_headers:
            send_headers["X-Client"] = self.client_id
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, target, body=body, headers=send_headers)
                response = conn.getresponse()
                payload = response.read()
            except (http.client.HTTPException, ConnectionError, socket.timeout, OSError):
                self.close()
                if attempt:
                    raise
                continue
            response_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            if response_headers.get("connection", "").lower() == "close":
                self.close()
            return response.status, response_headers, payload
        raise EndpointError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # The SPARQL protocol
    # ------------------------------------------------------------------ #
    def query(
        self, query_text: str, *, accept: str = SPARQL_JSON_MIME
    ) -> Union[ResultSet, AskResult]:
        """Execute a query and parse the JSON response into result objects.

        Raises the same exception types the in-process endpoint raises;
        non-SPARQL responses (negotiation failures, overload) surface as
        :class:`EndpointError` with the server's message.
        """
        status, headers, body = self._send_query(query_text, accept=accept)
        if status == 200:
            return from_sparql_json(body)
        raise self._error_from(status, headers, body)

    def query_text(
        self, query_text: str, *, accept: str
    ) -> Tuple[str, str]:
        """Execute a query and return ``(content_type, body text)`` raw.

        For callers that want the wire bytes — the differential suite
        compares these against in-process serialisation, and TSV output
        is only reachable this way (the typed API always negotiates
        JSON).
        """
        status, headers, body = self._send_query(query_text, accept=accept)
        if status != 200:
            raise self._error_from(status, headers, body)
        return headers.get("content-type", ""), body.decode("utf-8")

    def select(self, query_text: str) -> ResultSet:
        """Like :meth:`query` but asserts a SELECT result."""
        result = self.query(query_text)
        if not isinstance(result, ResultSet):
            raise EndpointError("Expected a SELECT query")
        return result

    def ask(self, query_text: str) -> bool:
        """Like :meth:`query` but asserts an ASK result and returns a bool."""
        result = self.query(query_text)
        if not isinstance(result, AskResult):
            raise EndpointError("Expected an ASK query")
        return bool(result)

    def _send_query(
        self, query_text: str, *, accept: str
    ) -> Tuple[int, Dict[str, str], bytes]:
        headers = {"Accept": accept}
        if self.method == "get":
            target = "/sparql?" + urlencode({"query": query_text})
            return self.request_raw("GET", target, headers=headers)
        headers["Content-Type"] = "application/x-www-form-urlencoded"
        body = urlencode({"query": query_text}).encode("utf-8")
        return self.request_raw("POST", "/sparql", body=body, headers=headers)

    @staticmethod
    def _error_from(
        status: int, headers: Dict[str, str], body: bytes
    ) -> Exception:
        """Rebuild the server's exception from its JSON error body."""
        try:
            document = json.loads(body.decode("utf-8"))
            error_name = document.get("error", "")
            message = document.get("message", "")
        except (ValueError, UnicodeDecodeError):
            error_name, message = "", body.decode("utf-8", "replace")
        error_type = _ERROR_TYPES.get(error_name)
        if error_type is not None:
            return error_type(message)
        return EndpointError(
            f"HTTP {status}: {error_name or 'error'}: {message}"
        )

    # ------------------------------------------------------------------ #
    # Service endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> Dict:
        """The server's ``/health`` document."""
        return self._get_json("/health")

    def metrics(self) -> Dict:
        """The server's ``/metrics`` snapshot."""
        return self._get_json("/metrics")

    def _get_json(self, target: str) -> Dict:
        status, headers, body = self.request_raw("GET", target)
        if status != 200:
            raise self._error_from(status, headers, body)
        return json.loads(body.decode("utf-8"))
