"""The asyncio HTTP SPARQL server.

:class:`SparqlHttpServer` puts a real network edge in front of the
endpoint layer: it speaks the SPARQL 1.1 protocol on ``/sparql`` (GET
``?query=`` plus POST as either ``application/x-www-form-urlencoded`` or
``application/sparql-query``), negotiates JSON vs TSV results, and
exposes ``/health`` and ``/metrics``.  Everything below the socket is
the existing stack, reused end to end:

* **Admission** is the endpoint layer's :class:`~repro.endpoint.policy.AccessPolicy`.
  Each client (the ``X-Client`` header, falling back to the peer
  address) gets its own :class:`~repro.endpoint.endpoint.SparqlEndpoint`
  sharing the base endpoint's evaluator, so budgets, row caps and
  full-scan rejection apply per client and surface as HTTP status codes:
  exhausted quota → 429, forbidden query → 403, parse error → 400.
* **Backpressure** is a bounded in-flight semaphore sized from the
  worker pool (process-backed endpoints) or shard count; requests beyond
  the bounded wait queue are refused with 503 + ``Retry-After`` instead
  of piling onto the evaluator.
* **Caching** is a ``data_version``-keyed LRU of serialised result
  pages.  A cache hit skips evaluation but still charges the client's
  budget and lands in the access log
  (:meth:`~repro.endpoint.endpoint.SparqlEndpoint.charge_cached`), so
  accounting cannot diverge from what clients observed.
* **Access logs** are the per-client :class:`~repro.endpoint.log.QueryLog`
  records (exported with :meth:`export_access_log`), and queries
  auto-trace to ``REPRO_TRACE`` exactly like in-process callers.
* **Shutdown** drains: :meth:`stop` refuses new work, waits for every
  in-flight request to answer, closes idle keep-alive connections, and
  only then closes an owned process-backed endpoint (worker pool
  included).

The server is asyncio-native (``await server.start()`` /
``await server.stop()``); :func:`serve_http` wraps it in a background
thread with its own event loop for blocking callers — tests, benchmarks
and the quickstart example drive it that way.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.endpoint.endpoint import SparqlEndpoint
from repro.endpoint.policy import AccessPolicy
from repro.endpoint.simulation import SimulatedSparqlEndpoint
from repro.errors import (
    EndpointError,
    ParseError,
    QueryBudgetExceeded,
    ResultTruncated,
    SparqlError,
    WorkerCrashError,
)
from repro.http.protocol import (
    HttpProtocolError,
    HttpRequest,
    read_request,
    render_response,
)
from repro.obs import metrics as obs_metrics
from repro.sparql.results import AskResult, ResultSet
from repro.sparql.serialize import (
    SPARQL_JSON_MIME,
    SPARQL_TSV_MIME,
    to_sparql_json,
    to_sparql_tsv,
)

#: Media types (and wildcards) the negotiator maps to each format.
_JSON_ACCEPTS = (SPARQL_JSON_MIME, "application/json", "application/*", "*/*")
_TSV_ACCEPTS = (SPARQL_TSV_MIME, "text/*")


def _status_for(error: BaseException) -> int:
    """The HTTP status an endpoint-layer failure maps to."""
    if isinstance(error, QueryBudgetExceeded):
        return 429
    if isinstance(error, (ParseError, SparqlError)):
        return 400
    if isinstance(error, WorkerCrashError):
        return 500
    if isinstance(error, EndpointError):
        # Policy rejections: forbidden full scans, hard truncation.
        return 403
    return 500


def _negotiate(accept: str) -> Optional[str]:
    """``json`` / ``tsv`` for an Accept header, ``None`` when unservable.

    Media ranges are weighted per RFC 9110: the servable range with the
    highest ``q`` wins, ties break in client order, and ``q=0`` marks a
    range explicitly unacceptable (``Accept: */*;q=0`` is a 406, and
    ``application/json;q=0, text/tab-separated-values`` serves TSV).  A
    malformed q-value falls back to 1.0; an absent or empty header means
    JSON.
    """
    if not accept.strip():
        return "json"
    best: Optional[Tuple[float, str]] = None
    for part in accept.split(","):
        pieces = part.split(";")
        media = pieces[0].strip().lower()
        if media in _JSON_ACCEPTS:
            fmt = "json"
        elif media in _TSV_ACCEPTS:
            fmt = "tsv"
        else:
            continue
        quality = 1.0
        for parameter in pieces[1:]:
            name, _, value = parameter.partition("=")
            if name.strip().lower() == "q":
                try:
                    quality = float(value.strip())
                except ValueError:
                    quality = 1.0
                break
        if quality <= 0:
            continue
        if best is None or quality > best[0]:
            best = (quality, fmt)
    return best[1] if best is not None else None


class _DelegatingEvaluator:
    """Routes a per-client endpoint's evaluation through the base endpoint.

    Per-client endpoints own *admission* (budget, query log) but never
    execution.  Delegating through the base endpoint's ``_evaluate``
    hook — instead of capturing its evaluator object at client creation
    — keeps every client on the current worker generation across live
    :meth:`SparqlHttpServer.refresh` swaps.
    """

    def __init__(self, base: SparqlEndpoint):
        self._base = base

    def evaluate(self, parsed):
        return self._base._evaluate(parsed)

    def last_mode(self) -> str:
        return self._base.last_query_mode()


class _PageCache:
    """An LRU of serialised result pages keyed by data version.

    Entries carry the accounting facts (form, row count, truncation) the
    server must re-charge on a hit, and the whole cache is keyed on the
    store's ``data_version`` plus the admitting policy — a mutation or a
    different row cap can never serve a stale page.
    """

    def __init__(self, max_entries: int):
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    def get(self, key: tuple) -> Optional[tuple]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: tuple, entry: tuple) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class SparqlHttpServer:
    """An asyncio HTTP server speaking the SPARQL 1.1 protocol.

    Parameters
    ----------
    endpoint:
        The served :class:`SparqlEndpoint` (any kind — a process-backed
        :class:`~repro.endpoint.simulation.SimulatedSparqlEndpoint`
        included).  The server closes it on :meth:`stop` only when
        ``own_endpoint=True`` (implied when the server built it from
        ``store``).
    store:
        Alternative to ``endpoint``: the server builds a
        :class:`SimulatedSparqlEndpoint` over it (``backend`` /
        ``snapshot_dir`` / ``start_method`` forwarded, so
        ``backend="process"`` serves a sharded store through worker
        processes) and owns its lifecycle.
    policy:
        The base endpoint's policy when built from ``store``.
    client_policy:
        When set, each distinct client (``X-Client`` header, else peer
        address) is admitted through its own endpoint with this policy —
        per-client budgets/quotas over one shared evaluator.  Without
        it, all clients share the base endpoint's policy and log.
    max_in_flight:
        Queries evaluating concurrently; defaults to twice the worker
        pool (process backends) or shard count, minimum 4.
    max_queue:
        Requests allowed to wait for an in-flight slot before the server
        answers 503; defaults to ``4 * max_in_flight``.
    page_cache_size:
        Entries in the serialised-result LRU (0 disables caching).
    metrics:
        Registry for ``http.*`` telemetry and the ``/metrics`` dump;
        defaults to the process-wide registry, which also carries the
        endpoint and engine counters.
    """

    def __init__(
        self,
        endpoint: Optional[SparqlEndpoint] = None,
        *,
        store=None,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "http",
        policy: Optional[AccessPolicy] = None,
        client_policy: Optional[AccessPolicy] = None,
        backend: Optional[str] = None,
        snapshot_dir=None,
        start_method: Optional[str] = None,
        max_in_flight: Optional[int] = None,
        max_queue: Optional[int] = None,
        page_cache_size: int = 256,
        metrics: Optional[obs_metrics.MetricsRegistry] = None,
        own_endpoint: Optional[bool] = None,
    ):
        if (endpoint is None) == (store is None):
            raise EndpointError("pass exactly one of endpoint= or store=")
        if endpoint is None:
            endpoint = SimulatedSparqlEndpoint(
                store,
                name=name,
                policy=policy,
                backend=backend,
                snapshot_dir=snapshot_dir,
                start_method=start_method,
            )
            own_endpoint = True if own_endpoint is None else own_endpoint
        elif policy is not None or backend is not None:
            raise EndpointError(
                "policy=/backend= configure a server-built endpoint; "
                "pass them with store=, not endpoint="
            )
        self._endpoint = endpoint
        self._own_endpoint = bool(own_endpoint)
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.name = name
        self.metrics = metrics if metrics is not None else obs_metrics.registry()
        if max_in_flight is None:
            executor = getattr(endpoint, "executor", None)
            width = (
                executor.num_workers if executor is not None
                else endpoint.shard_count
            )
            max_in_flight = max(4, 2 * width)
        if max_in_flight < 1:
            raise EndpointError("max_in_flight must be >= 1")
        self.max_in_flight = max_in_flight
        self.max_queue = 4 * max_in_flight if max_queue is None else max_queue
        self._client_policy = client_policy
        self._client_endpoints: Dict[str, SparqlEndpoint] = {}
        self._clients_lock = threading.Lock()
        self._cache = _PageCache(page_cache_size) if page_cache_size else None

        self._server: Optional[asyncio.base_events.Server] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._waiting = 0
        self._active_requests = 0
        self._drained: Optional[asyncio.Event] = None
        self._closing = False
        self._connections: set = set()
        self._conn_tasks: set = set()
        self._started_monotonic: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def endpoint(self) -> SparqlEndpoint:
        """The base endpoint behind the socket."""
        return self._endpoint

    @property
    def url(self) -> str:
        """The server's base URL (available after :meth:`start`)."""
        if self.port is None:
            raise EndpointError("server not started")
        return f"http://{self.host}:{self.port}"

    async def start(self) -> "SparqlHttpServer":
        """Bind the socket and start accepting connections."""
        if self._server is not None:
            raise EndpointError("server already started")
        self._semaphore = asyncio.Semaphore(self.max_in_flight)
        self._drained = asyncio.Event()
        self._drained.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        return self

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight queries, then release workers.

        New connections are refused immediately and requests arriving on
        open keep-alive connections answer 503; requests already past
        admission run to completion and their responses are written
        before the transport closes.  An owned endpoint (built from
        ``store=``) is closed last, so a process-backed worker pool never
        dies under an in-flight query.
        """
        if self._server is None:
            self._close_endpoint()
            return
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        # Wait for every admitted request to finish writing its response.
        await self._drained.wait()
        # Idle keep-alive connections are parked in read_request(); close
        # their transports so the handler tasks see EOF and exit.
        for writer in list(self._connections):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._server = None
        self._close_endpoint()

    def _close_endpoint(self) -> None:
        if self._own_endpoint:
            close = getattr(self._endpoint, "close", None)
            if close is not None:
                close()

    async def __aenter__(self) -> "SparqlHttpServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def refresh(self, mutate=None, rebalance: bool = False, **kwargs) -> dict:
        """Refresh the served dataset live, with zero dropped requests.

        Delegates to
        :meth:`~repro.endpoint.simulation.SimulatedSparqlEndpoint.refresh`
        on the served endpoint: requests in flight finish on the old
        generation, requests arriving during the brief mutation window
        queue (they never 5xx), and the ``data_version``-keyed page
        cache invalidates implicitly because every cache key carries the
        version the page was rendered at.  Per-client endpoints follow
        the swap automatically — they delegate execution to the base
        endpoint instead of pinning an evaluator.

        Thread-safe: callable from any thread while the server is
        serving (the asyncio side evaluates on executor threads, which
        the refresh quiesce coordinates with).
        """
        refresh = getattr(self._endpoint, "refresh", None)
        if refresh is None:
            raise EndpointError(
                "the served endpoint does not support refresh(); serve a "
                "SimulatedSparqlEndpoint (or build the server from store=)"
            )
        return refresh(mutate=mutate, rebalance=rebalance, **kwargs)

    # ------------------------------------------------------------------ #
    # Per-client admission
    # ------------------------------------------------------------------ #
    def _client_endpoint(self, client_id: str) -> SparqlEndpoint:
        """The endpoint admitting ``client_id`` (the base one by default).

        With ``client_policy`` set, each client gets a lazily created
        :class:`SparqlEndpoint` that shares the base endpoint's execution
        path (one plan cache, one worker pool, one parse cache) but owns
        its policy budget and its query log.
        """
        if self._client_policy is None:
            return self._endpoint
        with self._clients_lock:
            endpoint = self._client_endpoints.get(client_id)
            if endpoint is None:
                # Delegating execution is deliberate: admission is per
                # client, evaluation capacity is one pool — and the
                # delegation follows generation swaps on refresh().  The
                # parse cache is the base endpoint's, so N clients warm
                # one cache instead of N.
                endpoint = SparqlEndpoint(
                    self._endpoint._store,
                    name=f"{self._endpoint.name}/{client_id}",
                    policy=self._client_policy,
                    evaluator_factory=lambda _store: _DelegatingEvaluator(
                        self._endpoint
                    ),
                    parse_cache=self._endpoint.parse_cache,
                )
                self._client_endpoints[client_id] = endpoint
            return endpoint

    def client_ids(self) -> List[str]:
        """Clients that have been admitted through their own endpoint."""
        with self._clients_lock:
            return sorted(self._client_endpoints)

    def access_log_records(self) -> List[Tuple[str, object]]:
        """``(client_id, QueryRecord)`` pairs across every admission log."""
        records = [("*", record) for record in self._endpoint.log]
        with self._clients_lock:
            clients = list(self._client_endpoints.items())
        for client_id, endpoint in clients:
            records.extend((client_id, record) for record in endpoint.log)
        return records

    def export_access_log(self, path) -> int:
        """Write every admission log to ``path`` as JSON lines.

        The per-client twin of
        :meth:`SparqlEndpoint.export_access_log`: each line additionally
        carries the client id the record was admitted under.
        """
        records = self.access_log_records()
        with open(path, "w", encoding="utf-8") as sink:
            for client_id, record in records:
                sink.write(
                    json.dumps(
                        {
                            "client": client_id,
                            "query": record.query,
                            "form": record.form,
                            "mode": record.mode,
                            "rows": record.row_count,
                            "truncated": record.truncated,
                            "virtual_seconds": round(record.virtual_seconds, 6),
                            "duration_ms": round(
                                record.duration_seconds * 1000, 3
                            ),
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        return len(records)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        self._conn_tasks.add(asyncio.current_task())
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpProtocolError as error:
                    self.metrics.increment("http.protocol_errors")
                    writer.write(
                        self._error_response(
                            error.status, "HttpProtocolError", error.message,
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                ):
                    break
                if request is None:
                    break
                response = await self._respond(request)
                keep_alive = request.keep_alive and not self._closing
                try:
                    writer.write(response)
                    await writer.drain()
                except ConnectionError:
                    break
                if not keep_alive:
                    break
        finally:
            self._connections.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            writer.close()

    async def _respond(self, request: HttpRequest) -> bytes:
        """Route one request and render its response bytes."""
        started = time.perf_counter()
        self.metrics.increment("http.requests")
        keep_alive = request.keep_alive and not self._closing
        try:
            if self._closing:
                response = self._error_response(
                    503, "ServiceUnavailable", "server is shutting down",
                    keep_alive=False,
                )
            elif request.path == "/sparql":
                response = await self._respond_sparql(request, keep_alive)
            elif request.path == "/health":
                response = self._respond_health(request, keep_alive)
            elif request.path == "/metrics":
                response = self._respond_metrics(request, keep_alive)
            else:
                response = self._error_response(
                    404, "NotFound", f"no such resource: {request.path}",
                    keep_alive=keep_alive,
                )
        except Exception as error:  # defensive: a handler bug is a 500
            self.metrics.increment("http.internal_errors")
            response = self._error_response(
                500, type(error).__name__, str(error), keep_alive=False
            )
        self.metrics.observe("http.latency", time.perf_counter() - started)
        status = response.split(b" ", 2)[1].decode("latin-1")
        self.metrics.increment(f"http.responses.{status}")
        return response

    # ------------------------------------------------------------------ #
    # /sparql
    # ------------------------------------------------------------------ #
    @staticmethod
    def _extract_query(request: HttpRequest) -> str:
        """The SPARQL text of a protocol request (raises HttpProtocolError)."""
        if request.method == "GET":
            query = request.params.get("query")
            if query is None:
                raise HttpProtocolError(
                    400, "missing 'query' parameter on GET /sparql"
                )
            return query
        if request.method == "POST":
            content_type = request.content_type
            if content_type == "application/x-www-form-urlencoded":
                form = parse_qs(
                    request.body.decode("utf-8", "replace"),
                    keep_blank_values=True,
                )
                values = form.get("query")
                if not values:
                    raise HttpProtocolError(
                        400, "missing 'query' form field on POST /sparql"
                    )
                return values[0]
            if content_type == "application/sparql-query":
                return request.body.decode("utf-8", "replace")
            raise HttpProtocolError(
                415,
                "POST /sparql accepts application/x-www-form-urlencoded "
                f"or application/sparql-query, not {content_type or '<none>'!r}",
            )
        raise HttpProtocolError(
            405, f"{request.method} not allowed on /sparql"
        )

    def _client_id(self, request: HttpRequest) -> str:
        return request.header("x-client") or "anonymous"

    async def _respond_sparql(
        self, request: HttpRequest, keep_alive: bool
    ) -> bytes:
        try:
            query_text = self._extract_query(request)
        except HttpProtocolError as error:
            extra = (
                [("Allow", "GET, POST")] if error.status == 405 else None
            )
            return self._error_response(
                error.status, "ProtocolError", error.message,
                keep_alive=keep_alive, extra_headers=extra,
            )
        fmt = _negotiate(request.header("accept"))
        if fmt is None:
            return self._error_response(
                406,
                "NotAcceptable",
                f"cannot serve {request.header('accept')!r}; offer "
                f"{SPARQL_JSON_MIME} or {SPARQL_TSV_MIME}",
                keep_alive=keep_alive,
            )
        endpoint = self._client_endpoint(self._client_id(request))

        cache_key = None
        if self._cache is not None:
            cache_key = (
                query_text,
                fmt,
                self._endpoint.data_version,
                endpoint.policy,
            )
            entry = self._cache.get(cache_key)
            if entry is not None:
                body, content_type, form, row_count, truncated = entry
                try:
                    # A cache hit is still an admitted request: it must
                    # consume the client's quota and hit the access log.
                    endpoint.charge_cached(
                        query_text, form, row_count, truncated
                    )
                except QueryBudgetExceeded as error:
                    return self._endpoint_error(error, keep_alive)
                self.metrics.increment("http.cache.hits")
                return render_response(
                    200, body, content_type=content_type, keep_alive=keep_alive
                )
            self.metrics.increment("http.cache.misses")

        admitted = await self._admit()
        if not admitted:
            self.metrics.increment("http.rejected.overload")
            return self._error_response(
                503,
                "Overloaded",
                f"{self.max_in_flight} queries in flight and "
                f"{self.max_queue} queued; retry later",
                keep_alive=keep_alive,
                extra_headers=[("Retry-After", "1")],
            )
        try:
            loop = asyncio.get_running_loop()
            try:
                result = await loop.run_in_executor(
                    None, endpoint.query, query_text
                )
            except (EndpointError, ParseError, SparqlError) as error:
                return self._endpoint_error(error, keep_alive)
        finally:
            self._release()

        if isinstance(result, AskResult) or fmt == "json":
            body = to_sparql_json(result).encode("utf-8")
            content_type = SPARQL_JSON_MIME
        else:
            body = to_sparql_tsv(result).encode("utf-8")
            content_type = SPARQL_TSV_MIME
        if cache_key is not None:
            if isinstance(result, ResultSet):
                form = "SELECT"
                row_count = len(result)
                truncated = bool(result.truncated)
            else:
                form, row_count, truncated = "ASK", 0, False
            self._cache.put(
                cache_key, (body, content_type, form, row_count, truncated)
            )
        return render_response(
            200, body, content_type=content_type, keep_alive=keep_alive
        )

    # ------------------------------------------------------------------ #
    # Backpressure
    # ------------------------------------------------------------------ #
    async def _admit(self) -> bool:
        """Take an in-flight slot, waiting in the bounded queue.

        Returns ``False`` (caller answers 503) when ``max_queue``
        requests are already waiting — the socket edge's equivalent of
        the worker protocol's credit window: memory stays bounded and
        excess load is refused where it is cheapest.
        """
        assert self._semaphore is not None
        if self._semaphore.locked() and self._waiting >= self.max_queue:
            return False
        self._waiting += 1
        try:
            await self._semaphore.acquire()
        finally:
            self._waiting -= 1
        self._active_requests += 1
        self._drained.clear()
        self.metrics.set_gauge("http.in_flight", self._active_requests)
        return True

    def _release(self) -> None:
        self._semaphore.release()
        self._active_requests -= 1
        self.metrics.set_gauge("http.in_flight", self._active_requests)
        if self._active_requests == 0:
            self._drained.set()

    # ------------------------------------------------------------------ #
    # /health and /metrics
    # ------------------------------------------------------------------ #
    def _respond_health(self, request: HttpRequest, keep_alive: bool) -> bytes:
        if request.method != "GET":
            return self._error_response(
                405, "ProtocolError", f"{request.method} not allowed on /health",
                keep_alive=keep_alive, extra_headers=[("Allow", "GET")],
            )
        payload = {
            "status": "ok",
            "endpoint": self._endpoint.name,
            "dataset_size": self._endpoint.dataset_size(),
            "shards": self._endpoint.shard_count,
            "data_version": self._endpoint.data_version,
            "generation": getattr(self._endpoint, "generation", 0),
            "in_flight": self._active_requests,
            "max_in_flight": self.max_in_flight,
            "clients": len(self._client_endpoints),
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
        }
        return render_response(
            200,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            keep_alive=keep_alive,
        )

    def _respond_metrics(self, request: HttpRequest, keep_alive: bool) -> bytes:
        if request.method != "GET":
            return self._error_response(
                405, "ProtocolError", f"{request.method} not allowed on /metrics",
                keep_alive=keep_alive, extra_headers=[("Allow", "GET")],
            )
        snapshot = self.metrics.snapshot()
        executor = getattr(self._endpoint, "executor", None)
        if executor is not None:
            snapshot["worker_protocol"] = executor.protocol_stats()
        return render_response(
            200,
            json.dumps(snapshot, sort_keys=True).encode("utf-8"),
            keep_alive=keep_alive,
        )

    # ------------------------------------------------------------------ #
    # Error rendering
    # ------------------------------------------------------------------ #
    def _endpoint_error(self, error: BaseException, keep_alive: bool) -> bytes:
        status = _status_for(error)
        extra = [("Retry-After", "1")] if status == 429 else None
        return self._error_response(
            status, type(error).__name__, str(error),
            keep_alive=keep_alive, extra_headers=extra,
        )

    @staticmethod
    def _error_response(
        status: int,
        error: str,
        message: str,
        keep_alive: bool = True,
        extra_headers: Optional[List[Tuple[str, str]]] = None,
    ) -> bytes:
        body = json.dumps(
            {"error": error, "message": message}, sort_keys=True
        ).encode("utf-8")
        return render_response(
            status,
            body,
            extra_headers=extra_headers,
            keep_alive=keep_alive,
        )


class ThreadedHttpServer:
    """A :class:`SparqlHttpServer` running on a background event loop.

    The bridge for blocking callers: construction starts the loop
    thread, awaits :meth:`SparqlHttpServer.start` and returns once the
    socket is bound (construction errors re-raise here).  :meth:`stop`
    performs the graceful drain on the loop thread and joins it.  Use as
    a context manager.
    """

    def __init__(self, server: SparqlHttpServer):
        self.server = server
        self._started = threading.Event()
        self._stop_requested: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name=f"sparql-http-{server.name}",
            daemon=True,
        )
        self._thread.start()
        self._started.wait()
        if self._error is not None:
            self._thread.join()
            raise self._error

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as error:
            self._error = error
            self._started.set()
            return
        self._started.set()
        await self._stop_requested.wait()
        await self.server.stop()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return self.server.url

    def refresh(self, mutate=None, rebalance: bool = False, **kwargs) -> dict:
        """Blocking façade for :meth:`SparqlHttpServer.refresh`."""
        return self.server.refresh(mutate=mutate, rebalance=rebalance, **kwargs)

    def stop(self) -> None:
        """Gracefully stop the server and join the loop thread (idempotent)."""
        if self._thread.is_alive() and self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop_requested.set)
        self._thread.join()

    def __enter__(self) -> "ThreadedHttpServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_http(
    endpoint: Optional[SparqlEndpoint] = None, **kwargs
) -> ThreadedHttpServer:
    """Start a :class:`SparqlHttpServer` on a background thread.

    Accepts the same arguments as :class:`SparqlHttpServer`; returns a
    running :class:`ThreadedHttpServer` whose ``url`` is ready to curl.
    """
    return ThreadedHttpServer(SparqlHttpServer(endpoint, **kwargs))
