"""A minimal HTTP/1.1 message layer over asyncio streams.

Just enough protocol for the SPARQL service tier: request parsing
(request line, headers, ``Content-Length`` bodies) and response
rendering, with hard limits on header and body sizes so a misbehaving
client cannot balloon server memory.  Connection semantics follow
HTTP/1.1 — keep-alive by default, ``Connection: close`` honoured both
ways — and every malformed input maps to an :class:`HttpProtocolError`
carrying the status code the server should answer with before closing.

Chunked request bodies, trailers, continuation lines and HTTP/1.0
keep-alive are deliberately out of scope; clients that need them get a
clean 4xx instead of silent misparsing.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

#: Upper bound on the request line + headers block, in bytes.
MAX_HEADER_BYTES = 16 * 1024

#: Upper bound on request bodies (SPARQL queries are small; VALUES-heavy
#: alignment batches stay well under this).
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    406: "Not Acceptable",
    408: "Request Timeout",
    413: "Payload Too Large",
    414: "URI Too Long",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpProtocolError(Exception):
    """A request the parser rejected, with the status to answer with."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request.

    ``headers`` keys are lower-cased; ``params`` holds the decoded query
    string (first value per key, the SPARQL protocol defines no repeated
    parameters we care about).
    """

    method: str
    target: str
    path: str
    params: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    keep_alive: bool = True

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def content_type(self) -> str:
        """The media type of the body, lower-cased, without parameters."""
        return self.header("content-type").split(";", 1)[0].strip().lower()


async def read_request(
    reader: asyncio.StreamReader,
    max_header_bytes: int = MAX_HEADER_BYTES,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Read one request from the stream.

    Returns ``None`` on a clean end-of-stream before any byte of a
    request (the client closed a keep-alive connection); raises
    :class:`HttpProtocolError` on malformed or over-limit input and
    ``asyncio.IncompleteReadError`` when the peer vanishes mid-message.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError:
        raise HttpProtocolError(431, "request headers too large") from None
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise
    if len(head) > max_header_bytes:
        raise HttpProtocolError(431, "request headers too large")

    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise HttpProtocolError(400, "undecodable request head") from None
    lines = text.split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HttpProtocolError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpProtocolError(400, f"unsupported HTTP version {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HttpProtocolError(400, f"malformed header line: {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HttpProtocolError(501, "chunked request bodies are not supported")

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpProtocolError(
                400, f"malformed Content-Length: {raw_length!r}"
            ) from None
        if length < 0:
            raise HttpProtocolError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise HttpProtocolError(
                413, f"request body of {length} bytes exceeds {max_body_bytes}"
            )
        if length:
            body = await reader.readexactly(length)

    split = urlsplit(target)
    params: Dict[str, str] = {
        key: values[0]
        for key, values in parse_qs(
            split.query, keep_blank_values=True
        ).items()
    }

    connection = headers.get("connection", "").lower()
    keep_alive = version == "HTTP/1.1" and connection != "close"

    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        params=params,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[List[Tuple[str, str]]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Render one complete HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers or ():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
