"""The HTTP SPARQL service tier.

A stdlib-only asyncio network edge in front of the endpoint layer:
:class:`~repro.http.server.SparqlHttpServer` speaks the SPARQL 1.1
protocol (GET/POST ``/sparql`` returning JSON or TSV results, plus
``/health`` and ``/metrics``) over a real socket, and
:class:`~repro.http.client.HttpSparqlClient` is the blocking client that
lets :class:`~repro.endpoint.client.EndpointClient` run unchanged
against it.
"""

from repro.http.client import HttpSparqlClient
from repro.http.server import SparqlHttpServer, ThreadedHttpServer, serve_http

__all__ = [
    "HttpSparqlClient",
    "SparqlHttpServer",
    "ThreadedHttpServer",
    "serve_http",
]
