"""Triples and triple patterns."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import RDFError
from repro.rdf.terms import IRI, BlankNode, Literal, Term, is_entity_term


class Triple:
    """An RDF triple ``(subject, predicate, object)``.

    Subjects must be IRIs or blank nodes, predicates must be IRIs, and
    objects can be any term.  Triples are immutable and hashable.
    """

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: Term, predicate: IRI, object: Term):
        if not is_entity_term(subject):
            raise RDFError(f"Triple subject must be an IRI or blank node, got {subject!r}")
        if not isinstance(predicate, IRI):
            raise RDFError(f"Triple predicate must be an IRI, got {predicate!r}")
        if not isinstance(object, (IRI, Literal, BlankNode)):
            raise RDFError(f"Triple object must be an RDF term, got {object!r}")
        obj_setattr = super().__setattr__
        obj_setattr("subject", subject)
        obj_setattr("predicate", predicate)
        obj_setattr("object", object)
        obj_setattr("_hash", hash((subject, predicate, object)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Triple instances are immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Triple)
            and other.subject == self.subject
            and other.predicate == self.predicate
            and other.object == self.object
        )

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def as_tuple(self) -> tuple[Term, IRI, Term]:
        """Return the triple as a plain ``(s, p, o)`` tuple."""
        return (self.subject, self.predicate, self.object)


class TriplePattern:
    """A triple pattern where any position may be ``None`` (wildcard).

    Used by the store's :meth:`~repro.store.TripleStore.match` API.  Unlike
    SPARQL variables, wildcards are anonymous; joins are handled by the
    SPARQL layer.
    """

    __slots__ = ("subject", "predicate", "object")

    def __init__(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Term] = None,
    ):
        super().__setattr__("subject", subject)
        super().__setattr__("predicate", predicate)
        super().__setattr__("object", object)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("TriplePattern instances are immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TriplePattern)
            and other.subject == self.subject
            and other.predicate == self.predicate
            and other.object == self.object
        )

    def __hash__(self) -> int:
        return hash((self.subject, self.predicate, self.object))

    def __repr__(self) -> str:
        return f"TriplePattern({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def matches(self, triple: Triple) -> bool:
        """Whether ``triple`` is matched by this pattern."""
        if self.subject is not None and triple.subject != self.subject:
            return False
        if self.predicate is not None and triple.predicate != self.predicate:
            return False
        if self.object is not None and triple.object != self.object:
            return False
        return True

    @property
    def bound_positions(self) -> tuple[str, ...]:
        """Names of the positions that are bound (non-wildcard)."""
        positions = []
        if self.subject is not None:
            positions.append("subject")
        if self.predicate is not None:
            positions.append("predicate")
        if self.object is not None:
            positions.append("object")
        return tuple(positions)
