"""Pragmatic Turtle reader and writer.

Turtle is used only for human-facing output (examples, debugging dumps) and
for reading small hand-written fixture files in tests.  The writer groups
triples by subject and abbreviates IRIs with the bound prefixes; the reader
supports the common subset: ``@prefix`` directives, prefixed names, IRIs,
literals (plain, language-tagged, datatyped, integer/decimal shorthands),
``a`` for ``rdf:type``, and the ``;`` / ``,`` separators.  Blank node
property lists and collections are not supported (they never occur in our
fixtures) and raise :class:`~repro.errors.ParseError`.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.errors import ParseError
from repro.rdf.namespace import NamespaceManager, RDF
from repro.rdf.ntriples import term_to_ntriples, _unescape_string
from repro.rdf.terms import IRI, BlankNode, Literal, Term, XSD_DECIMAL, XSD_INTEGER
from repro.rdf.triple import Triple


def serialize_turtle(
    triples: Iterable[Triple],
    namespaces: NamespaceManager | None = None,
) -> str:
    """Serialise ``triples`` as Turtle, grouping by subject.

    Parameters
    ----------
    triples:
        The triples to serialise (order of subjects follows first occurrence).
    namespaces:
        Prefix bindings used for abbreviation.  Defaults to the library's
        standard bindings.
    """
    manager = namespaces or NamespaceManager.with_defaults()

    def render(term: Term) -> str:
        if isinstance(term, IRI):
            compact = manager.compact(term)
            if compact is not None:
                return compact
        return term_to_ntriples(term)

    by_subject: Dict[Term, List[Tuple[IRI, Term]]] = defaultdict(list)
    subject_order: List[Term] = []
    used_prefixes: set[str] = set()

    def note_prefix(term: Term) -> None:
        if isinstance(term, IRI):
            compact = manager.compact(term)
            if compact is not None:
                used_prefixes.add(compact.split(":", 1)[0])

    for triple in triples:
        if triple.subject not in by_subject:
            subject_order.append(triple.subject)
        by_subject[triple.subject].append((triple.predicate, triple.object))
        note_prefix(triple.subject)
        note_prefix(triple.predicate)
        note_prefix(triple.object)

    lines: List[str] = []
    for prefix, namespace in manager.bindings():
        if prefix in used_prefixes:
            lines.append(f"@prefix {prefix}: <{namespace.base}> .")
    if lines:
        lines.append("")

    for subject in subject_order:
        pairs = by_subject[subject]
        rendered_pairs = [f"    {render(p)} {render(o)}" for p, o in pairs]
        body = " ;\n".join(rendered_pairs)
        lines.append(f"{render(subject)}\n{body} .")
        lines.append("")

    return "\n".join(lines).rstrip("\n") + ("\n" if lines else "")


_TOKEN_RE = re.compile(
    r"""
    (?P<iri><[^>]*>)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<keyword>@prefix|@base)
  | (?P<langtag>@[a-zA-Z][a-zA-Z0-9-]*)
  | (?P<dtype>\^\^)
  | (?P<bnode>_:[\w-]+)
  | (?P<prefixed>[A-Za-z_][\w.-]*:[\w.%-]*|:[\w.%-]+)
  | (?P<kw_a>\ba\b)
  | (?P<number>[+-]?\d+(?:\.\d+)?)
  | (?P<punct>[.;,\[\]()])
    """,
    re.VERBOSE,
)


def _tokenize_turtle(text: str) -> Iterator[Tuple[str, str, int]]:
    """Yield ``(kind, value, line_number)`` tokens, skipping comments."""
    for line_number, line in enumerate(text.splitlines(), start=1):
        # Strip comments that are neither inside a string literal nor inside
        # an IRI (IRIs routinely contain '#', e.g. the OWL namespace).
        cleaned = []
        in_string = False
        in_iri = False
        i = 0
        while i < len(line):
            ch = line[i]
            if ch == '"' and not in_iri and (i == 0 or line[i - 1] != "\\"):
                in_string = not in_string
            elif ch == "<" and not in_string:
                in_iri = True
            elif ch == ">" and not in_string:
                in_iri = False
            if ch == "#" and not in_string and not in_iri:
                break
            cleaned.append(ch)
            i += 1
        remaining = "".join(cleaned)
        pos = 0
        while pos < len(remaining):
            if remaining[pos].isspace():
                pos += 1
                continue
            match = _TOKEN_RE.match(remaining, pos)
            if match is None:
                raise ParseError(
                    f"Unexpected character {remaining[pos]!r}", line=line_number, column=pos + 1
                )
            kind = match.lastgroup or "unknown"
            if kind == "kw_a":
                kind = "keyword"
            yield kind, match.group(0), line_number
            pos = match.end()


class _TurtleParser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.tokens = list(_tokenize_turtle(text))
        self.pos = 0
        self.namespaces = NamespaceManager()
        self.base: str | None = None

    def error(self, message: str) -> ParseError:
        line = self.tokens[self.pos][2] if self.pos < len(self.tokens) else None
        return ParseError(message, line=line)

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def peek(self) -> Tuple[str, str, int]:
        if self.at_end():
            raise ParseError("Unexpected end of Turtle document")
        return self.tokens[self.pos]

    def advance(self) -> Tuple[str, str, int]:
        token = self.peek()
        self.pos += 1
        return token

    def expect_punct(self, value: str) -> None:
        kind, text, _ = self.advance()
        if kind != "punct" or text != value:
            raise self.error(f"Expected {value!r}, found {text!r}")

    def parse(self) -> Iterator[Triple]:
        while not self.at_end():
            kind, text, _ = self.peek()
            if kind == "keyword" and text == "@prefix":
                self._parse_prefix()
            elif kind == "keyword" and text == "@base":
                self._parse_base()
            else:
                yield from self._parse_statement()

    def _parse_prefix(self) -> None:
        self.advance()  # @prefix
        kind, text, _ = self.advance()
        if kind != "prefixed" or not text.endswith(":"):
            # prefixed names include the colon; a bare prefix looks like "ex:"
            raise self.error(f"Expected prefix declaration, found {text!r}")
        prefix = text[:-1]
        kind, iri_text, _ = self.advance()
        if kind != "iri":
            raise self.error(f"Expected IRI in @prefix, found {iri_text!r}")
        self.namespaces.bind(prefix, iri_text[1:-1])
        self.expect_punct(".")

    def _parse_base(self) -> None:
        self.advance()  # @base
        kind, iri_text, _ = self.advance()
        if kind != "iri":
            raise self.error(f"Expected IRI in @base, found {iri_text!r}")
        self.base = iri_text[1:-1]
        self.expect_punct(".")

    def _parse_statement(self) -> Iterator[Triple]:
        subject = self._parse_term(allow_literal=False)
        while True:
            predicate = self._parse_predicate()
            while True:
                obj = self._parse_term(allow_literal=True)
                yield Triple(subject, predicate, obj)  # type: ignore[arg-type]
                kind, text, _ = self.peek()
                if kind == "punct" and text == ",":
                    self.advance()
                    continue
                break
            kind, text, _ = self.peek()
            if kind == "punct" and text == ";":
                self.advance()
                # Allow trailing ';' before '.'
                kind, text, _ = self.peek()
                if kind == "punct" and text == ".":
                    self.advance()
                    return
                continue
            if kind == "punct" and text == ".":
                self.advance()
                return
            raise self.error(f"Expected ';', ',' or '.', found {text!r}")

    def _parse_predicate(self) -> IRI:
        kind, text, _ = self.peek()
        if kind == "keyword" and text == "a":
            self.advance()
            return RDF.type
        term = self._parse_term(allow_literal=False)
        if not isinstance(term, IRI):
            raise self.error("Predicate must be an IRI")
        return term

    def _parse_term(self, allow_literal: bool) -> Term:
        kind, text, _ = self.advance()
        if kind == "iri":
            value = text[1:-1]
            if self.base and not re.match(r"^[a-z][a-z0-9+.-]*:", value, re.IGNORECASE):
                value = self.base + value
            return IRI(_unescape_string(value))
        if kind == "prefixed":
            prefix, local = text.split(":", 1)
            try:
                return self.namespaces.namespace(prefix).term(local)
            except Exception as exc:
                raise self.error(str(exc)) from exc
        if kind == "bnode":
            return BlankNode(text[2:])
        if kind == "punct" and text == "[":
            raise self.error("Blank node property lists are not supported")
        if kind == "punct" and text == "(":
            raise self.error("RDF collections are not supported")
        if not allow_literal:
            raise self.error(f"Unexpected token {text!r} in subject/predicate position")
        if kind == "string":
            lexical = _unescape_string(text[1:-1])
            if not self.at_end():
                nkind, ntext, _ = self.peek()
                if nkind == "langtag":
                    self.advance()
                    return Literal(lexical, language=ntext[1:])
                if nkind == "dtype":
                    self.advance()
                    datatype = self._parse_term(allow_literal=False)
                    if not isinstance(datatype, IRI):
                        raise self.error("Datatype must be an IRI")
                    return Literal(lexical, datatype=datatype)
            return Literal(lexical)
        if kind == "number":
            datatype = XSD_DECIMAL if "." in text else XSD_INTEGER
            return Literal(text, datatype=datatype)
        raise self.error(f"Unexpected token {text!r}")


def parse_turtle(text: str) -> Iterator[Triple]:
    """Parse a Turtle document and yield its triples.

    Supports the subset described in the module docstring.
    """
    parser = _TurtleParser(text)
    yield from parser.parse()
