"""N-Triples parsing and serialisation.

N-Triples is the line-based RDF exchange syntax.  It is used by the
synthetic dataset generator to persist KBs to disk and by the test suite
for round-trip checks.  The parser is strict about term syntax but tolerant
of surrounding whitespace and comment lines.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, TextIO, Union

from repro.errors import ParseError
from repro.rdf.terms import IRI, BlankNode, Literal, Term, XSD_STRING
from repro.rdf.triple import Triple

_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}

_UNESCAPES = {
    "\\\\": "\\",
    '\\"': '"',
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
}


def _escape_string(value: str) -> str:
    out = []
    for ch in value:
        if ch in _ESCAPES:
            out.append(_ESCAPES[ch])
        elif ord(ch) < 0x20 or ch in ("\x85", "\u2028", "\u2029"):
            # Control characters and the extra Unicode line separators must
            # be escaped: the N-Triples reader is line-based and
            # ``str.splitlines`` would otherwise break literals apart.
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    return "".join(out)


def _unescape_string(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        if value[i] == "\\" and i + 1 < len(value):
            pair = value[i : i + 2]
            if pair in _UNESCAPES:
                out.append(_UNESCAPES[pair])
                i += 2
                continue
            if pair == "\\u" and i + 6 <= len(value):
                out.append(chr(int(value[i + 2 : i + 6], 16)))
                i += 6
                continue
            if pair == "\\U" and i + 10 <= len(value):
                out.append(chr(int(value[i + 2 : i + 10], 16)))
                i += 10
                continue
        out.append(value[i])
        i += 1
    return "".join(out)


def term_to_ntriples(term: Term) -> str:
    """Serialise a single RDF term in N-Triples syntax."""
    if isinstance(term, IRI):
        return f"<{term.value}>"
    if isinstance(term, BlankNode):
        return f"_:{term.label}"
    if isinstance(term, Literal):
        lexical = _escape_string(term.lexical)
        if term.language:
            return f'"{lexical}"@{term.language}'
        if term.datatype and term.datatype != XSD_STRING:
            return f'"{lexical}"^^<{term.datatype}>'
        return f'"{lexical}"'
    raise ParseError(f"Cannot serialise term: {term!r}")


def serialize_ntriples(triples: Iterable[Triple], out: TextIO | None = None) -> str:
    """Serialise ``triples`` to an N-Triples string (and optionally a stream).

    Parameters
    ----------
    triples:
        Any iterable of :class:`~repro.rdf.triple.Triple`.
    out:
        Optional text stream; when given, lines are also written to it.

    Returns
    -------
    str
        The full N-Triples document.
    """
    lines: List[str] = []
    for triple in triples:
        line = (
            f"{term_to_ntriples(triple.subject)} "
            f"{term_to_ntriples(triple.predicate)} "
            f"{term_to_ntriples(triple.object)} ."
        )
        lines.append(line)
        if out is not None:
            out.write(line + "\n")
    return "\n".join(lines) + ("\n" if lines else "")


class _LineScanner:
    """Tokenizer for a single N-Triples line."""

    def __init__(self, line: str, line_number: int):
        self.line = line
        self.pos = 0
        self.line_number = line_number

    def error(self, message: str) -> ParseError:
        return ParseError(message, line=self.line_number, column=self.pos + 1)

    def skip_whitespace(self) -> None:
        while self.pos < len(self.line) and self.line[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.line)

    def peek(self) -> str:
        return self.line[self.pos] if self.pos < len(self.line) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"Expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def read_iri(self) -> IRI:
        self.expect("<")
        end = self.line.find(">", self.pos)
        if end == -1:
            raise self.error("Unterminated IRI")
        value = self.line[self.pos : end]
        self.pos = end + 1
        try:
            return IRI(_unescape_string(value))
        except Exception as exc:
            raise self.error(f"Invalid IRI: {exc}") from exc

    def read_bnode(self) -> BlankNode:
        if not self.line.startswith("_:", self.pos):
            raise self.error("Expected blank node")
        self.pos += 2
        start = self.pos
        while self.pos < len(self.line) and (
            self.line[self.pos].isalnum() or self.line[self.pos] in "_-"
        ):
            self.pos += 1
        label = self.line[start : self.pos]
        if not label:
            raise self.error("Empty blank node label")
        return BlankNode(label)

    def read_literal(self) -> Literal:
        self.expect('"')
        out = []
        while True:
            if self.at_end():
                raise self.error("Unterminated literal")
            ch = self.line[self.pos]
            if ch == "\\":
                nxt = self.line[self.pos + 1] if self.pos + 1 < len(self.line) else ""
                if nxt == "u":
                    out.append(chr(int(self.line[self.pos + 2 : self.pos + 6], 16)))
                    self.pos += 6
                elif nxt == "U":
                    out.append(chr(int(self.line[self.pos + 2 : self.pos + 10], 16)))
                    self.pos += 10
                else:
                    out.append(_UNESCAPES.get(ch + nxt, nxt))
                    self.pos += 2
                continue
            if ch == '"':
                self.pos += 1
                break
            out.append(ch)
            self.pos += 1
        lexical = "".join(out)
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.line) and (
                self.line[self.pos].isalnum() or self.line[self.pos] == "-"
            ):
                self.pos += 1
            return Literal(lexical, language=self.line[start : self.pos])
        if self.line.startswith("^^", self.pos):
            self.pos += 2
            datatype = self.read_iri()
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def read_term(self, allow_literal: bool) -> Term:
        self.skip_whitespace()
        ch = self.peek()
        if ch == "<":
            return self.read_iri()
        if ch == "_":
            return self.read_bnode()
        if ch == '"':
            if not allow_literal:
                raise self.error("Literal not allowed in this position")
            return self.read_literal()
        raise self.error(f"Unexpected character {ch!r}")


def parse_ntriples_line(line: str, line_number: int = 1) -> Union[Triple, None]:
    """Parse one N-Triples line.

    Returns ``None`` for blank lines and comment lines (starting with ``#``).
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    scanner = _LineScanner(stripped, line_number)
    subject = scanner.read_term(allow_literal=False)
    predicate = scanner.read_term(allow_literal=False)
    if not isinstance(predicate, IRI):
        raise scanner.error("Predicate must be an IRI")
    obj = scanner.read_term(allow_literal=True)
    scanner.skip_whitespace()
    scanner.expect(".")
    scanner.skip_whitespace()
    if not scanner.at_end():
        raise scanner.error("Trailing content after terminating '.'")
    return Triple(subject, predicate, obj)


def parse_ntriples(source: Union[str, TextIO, Iterable[str]]) -> Iterator[Triple]:
    """Parse an N-Triples document.

    Parameters
    ----------
    source:
        A string containing the whole document, an open text stream, or any
        iterable of lines.

    Yields
    ------
    Triple
        One triple per non-blank, non-comment line.
    """
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    else:
        lines = source
    for number, line in enumerate(lines, start=1):
        triple = parse_ntriples_line(line, number)
        if triple is not None:
            yield triple
