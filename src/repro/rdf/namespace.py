"""Namespaces and common RDF vocabularies.

A :class:`Namespace` builds :class:`~repro.rdf.terms.IRI` objects from local
names, either by attribute access (``YAGO.wasBornIn``) or by indexing
(``YAGO["wasBornIn"]``).  The :class:`NamespaceManager` maps prefixes to
namespaces and is used by the Turtle serialiser and the SPARQL parser to
expand prefixed names.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import RDFError
from repro.rdf.terms import IRI


class Namespace:
    """A namespace prefix that mints IRIs for local names."""

    __slots__ = ("base",)

    def __init__(self, base: str):
        if not base:
            raise RDFError("Namespace base must be non-empty")
        object.__setattr__(self, "base", base)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Namespace instances are immutable")

    def __getattr__(self, local_name: str) -> IRI:
        if local_name.startswith("_"):
            raise AttributeError(local_name)
        return IRI(self.base + local_name)

    def __getitem__(self, local_name: str) -> IRI:
        return IRI(self.base + local_name)

    def __contains__(self, iri: object) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self.base)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and other.base == self.base

    def __hash__(self) -> int:
        return hash(("Namespace", self.base))

    def __repr__(self) -> str:
        return f"Namespace({self.base!r})"

    def term(self, local_name: str) -> IRI:
        """Mint the IRI ``base + local_name``."""
        return IRI(self.base + local_name)

    def local(self, iri: IRI) -> Optional[str]:
        """Return the local name of ``iri`` within this namespace, else ``None``."""
        if iri in self:
            return iri.value[len(self.base):]
        return None


#: Standard vocabularies.
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")

#: Dataset namespaces used by the reproduction's synthetic KBs.
YAGO = Namespace("http://yago-knowledge.org/resource/")
DBO = Namespace("http://dbpedia.org/ontology/")
DBP = Namespace("http://dbpedia.org/resource/")
SOFYA = Namespace("http://sofya.repro/vocab#")

#: The owl:sameAs predicate, used pervasively by the alignment layer.
SAME_AS = OWL.sameAs


class NamespaceManager:
    """Bidirectional registry of prefix ↔ namespace bindings."""

    #: Default bindings installed by :meth:`with_defaults`.
    DEFAULT_BINDINGS: Tuple[Tuple[str, Namespace], ...] = (
        ("rdf", RDF),
        ("rdfs", RDFS),
        ("owl", OWL),
        ("xsd", XSD),
        ("foaf", FOAF),
        ("yago", YAGO),
        ("dbo", DBO),
        ("dbp", DBP),
        ("sofya", SOFYA),
    )

    def __init__(self) -> None:
        self._by_prefix: Dict[str, Namespace] = {}

    @classmethod
    def with_defaults(cls) -> "NamespaceManager":
        """Create a manager pre-populated with the standard bindings."""
        manager = cls()
        for prefix, namespace in cls.DEFAULT_BINDINGS:
            manager.bind(prefix, namespace)
        return manager

    def bind(self, prefix: str, namespace: Namespace | str) -> None:
        """Bind ``prefix`` to ``namespace`` (replacing any previous binding)."""
        if isinstance(namespace, str):
            namespace = Namespace(namespace)
        if not isinstance(namespace, Namespace):
            raise RDFError(f"Expected a Namespace, got {type(namespace).__name__}")
        self._by_prefix[prefix] = namespace

    def namespace(self, prefix: str) -> Namespace:
        """Return the namespace bound to ``prefix``.

        Raises
        ------
        RDFError
            If the prefix is unknown.
        """
        try:
            return self._by_prefix[prefix]
        except KeyError:
            raise RDFError(f"Unknown namespace prefix: {prefix!r}") from None

    def expand(self, qname: str) -> IRI:
        """Expand a prefixed name such as ``"yago:wasBornIn"`` to an IRI."""
        if ":" not in qname:
            raise RDFError(f"Not a prefixed name: {qname!r}")
        prefix, local = qname.split(":", 1)
        return self.namespace(prefix).term(local)

    def compact(self, iri: IRI) -> Optional[str]:
        """Return the shortest prefixed form of ``iri``, or ``None``.

        The longest matching namespace base wins so that more specific
        namespaces take precedence.
        """
        best: Optional[Tuple[str, Namespace]] = None
        for prefix, namespace in self._by_prefix.items():
            if iri in namespace:
                if best is None or len(namespace.base) > len(best[1].base):
                    best = (prefix, namespace)
        if best is None:
            return None
        prefix, namespace = best
        local = namespace.local(iri)
        if local is None or not _is_safe_local_name(local):
            return None
        return f"{prefix}:{local}"

    def bindings(self) -> Iterator[Tuple[str, Namespace]]:
        """Iterate over ``(prefix, namespace)`` pairs in insertion order."""
        return iter(self._by_prefix.items())

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._by_prefix

    def __len__(self) -> int:
        return len(self._by_prefix)


def _is_safe_local_name(local: str) -> bool:
    """Whether a local name can be written as a Turtle prefixed name."""
    if not local:
        return False
    return all(ch.isalnum() or ch in "_-." for ch in local) and not local.startswith(".")
