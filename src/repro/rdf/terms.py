"""RDF terms: IRIs, literals and blank nodes.

The classes here follow the RDF 1.1 abstract syntax.  They are immutable
value objects: equality and hashing are defined structurally, so two
:class:`IRI` objects with the same string are interchangeable everywhere in
the library (store indexes, sameAs union-find, sampling sets, ...).
"""

from __future__ import annotations

from typing import Union

from repro.errors import RDFError

#: IRI of the XSD string datatype, the implicit datatype of plain literals.
XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XSD_DECIMAL = "http://www.w3.org/2001/XMLSchema#decimal"
XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"
XSD_BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean"
XSD_DATE = "http://www.w3.org/2001/XMLSchema#date"
XSD_DATETIME = "http://www.w3.org/2001/XMLSchema#dateTime"
XSD_GYEAR = "http://www.w3.org/2001/XMLSchema#gYear"

_NUMERIC_DATATYPES = frozenset(
    {
        XSD_INTEGER,
        XSD_DECIMAL,
        XSD_DOUBLE,
        "http://www.w3.org/2001/XMLSchema#float",
        "http://www.w3.org/2001/XMLSchema#long",
        "http://www.w3.org/2001/XMLSchema#int",
        "http://www.w3.org/2001/XMLSchema#short",
        "http://www.w3.org/2001/XMLSchema#nonNegativeInteger",
        "http://www.w3.org/2001/XMLSchema#positiveInteger",
    }
)


class IRI:
    """An IRI reference (RDF resource identifier).

    Parameters
    ----------
    value:
        The full IRI string, e.g. ``"http://yago-knowledge.org/resource/wasBornIn"``.

    Raises
    ------
    RDFError
        If ``value`` is empty or contains characters forbidden in IRIs
        (angle brackets, whitespace inside the IRI).
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise RDFError(f"IRI value must be a string, got {type(value).__name__}")
        if not value:
            raise RDFError("IRI value must not be empty")
        if any(ch in value for ch in ("<", ">", '"', " ", "\n", "\t")):
            raise RDFError(f"IRI contains forbidden characters: {value!r}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("IRI", value)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("IRI instances are immutable")

    def __reduce__(self):
        # The default slots pickling applies state via setattr, which the
        # immutability guard rejects; rebuild through the constructor so
        # terms can cross process boundaries (shard worker protocol).
        return (IRI, (self.value,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "IRI") -> bool:
        if not isinstance(other, IRI):
            return NotImplemented
        return self.value < other.value

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def __str__(self) -> str:
        return self.value

    @property
    def local_name(self) -> str:
        """The part of the IRI after the last ``#`` or ``/``.

        Useful for human-readable relation names, e.g.
        ``IRI("http://dbpedia.org/ontology/birthPlace").local_name == "birthPlace"``.
        """
        value = self.value
        for sep in ("#", "/"):
            if sep in value:
                candidate = value.rsplit(sep, 1)[1]
                if candidate:
                    return candidate
        return value

    @property
    def namespace(self) -> str:
        """The IRI prefix up to and including the last ``#`` or ``/``."""
        local = self.local_name
        if local and self.value.endswith(local):
            return self.value[: -len(local)]
        return self.value


class BlankNode:
    """An RDF blank node with a local label.

    Blank node labels are only meaningful within a single document/store.
    """

    __slots__ = ("label", "_hash")

    _counter = 0

    def __init__(self, label: str | None = None):
        if label is None:
            BlankNode._counter += 1
            label = f"b{BlankNode._counter}"
        if not isinstance(label, str) or not label:
            raise RDFError("Blank node label must be a non-empty string")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash(("BlankNode", label)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("BlankNode instances are immutable")

    def __reduce__(self):
        return (BlankNode, (self.label,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlankNode) and other.label == self.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BlankNode({self.label!r})"

    def __str__(self) -> str:
        return f"_:{self.label}"


class Literal:
    """An RDF literal: lexical form plus optional language tag or datatype.

    A literal has exactly one of the following shapes:

    * plain string literal (datatype defaults to ``xsd:string``),
    * language-tagged string (``language`` set, datatype implied),
    * datatyped literal (``datatype`` set explicitly).

    Parameters
    ----------
    lexical:
        The lexical form. Non-string values (int, float, bool) are accepted
        and converted, with the datatype inferred when not given.
    language:
        Optional BCP-47 language tag, e.g. ``"en"``.
    datatype:
        Optional datatype IRI (as :class:`IRI` or string).
    """

    __slots__ = ("lexical", "language", "datatype", "_hash")

    def __init__(
        self,
        lexical: Union[str, int, float, bool],
        language: str | None = None,
        datatype: Union[IRI, str, None] = None,
    ):
        if language is not None and datatype is not None:
            raise RDFError("A literal cannot have both a language tag and a datatype")

        inferred_datatype: str | None = None
        if isinstance(lexical, bool):
            lexical = "true" if lexical else "false"
            inferred_datatype = XSD_BOOLEAN
        elif isinstance(lexical, int):
            lexical = str(lexical)
            inferred_datatype = XSD_INTEGER
        elif isinstance(lexical, float):
            lexical = repr(lexical)
            inferred_datatype = XSD_DOUBLE
        elif not isinstance(lexical, str):
            raise RDFError(f"Unsupported literal value type: {type(lexical).__name__}")

        if isinstance(datatype, IRI):
            datatype = datatype.value
        if datatype is None:
            datatype = inferred_datatype
        if language is not None:
            language = language.lower()
            if not language.replace("-", "").isalnum():
                raise RDFError(f"Invalid language tag: {language!r}")
            datatype = None

        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "language", language)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "_hash", hash(("Literal", lexical, language, datatype)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Literal instances are immutable")

    def __reduce__(self):
        # lexical is already normalised to a string, language excludes a
        # datatype and vice versa, so positional reconstruction is exact.
        return (Literal, (self.lexical, self.language, self.datatype))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.language == self.language
            and other.datatype == self.datatype
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        """A total ordering key: numeric literals sort by value, others lexically."""
        if self.is_numeric():
            try:
                return (0, float(self.lexical), self.lexical)
            except ValueError:
                pass
        return (1, 0.0, self.lexical)

    def __repr__(self) -> str:
        if self.language:
            return f"Literal({self.lexical!r}, language={self.language!r})"
        if self.datatype and self.datatype != XSD_STRING:
            return f"Literal({self.lexical!r}, datatype={self.datatype!r})"
        return f"Literal({self.lexical!r})"

    def __str__(self) -> str:
        return self.lexical

    def is_numeric(self) -> bool:
        """Whether the literal's datatype is one of the XSD numeric types."""
        return self.datatype in _NUMERIC_DATATYPES

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert to the closest native Python value.

        Falls back to the lexical form when the datatype is unknown or the
        lexical form does not parse.
        """
        if self.datatype == XSD_BOOLEAN:
            return self.lexical.strip().lower() in ("true", "1")
        if self.datatype == XSD_INTEGER or self.datatype in (
            "http://www.w3.org/2001/XMLSchema#long",
            "http://www.w3.org/2001/XMLSchema#int",
            "http://www.w3.org/2001/XMLSchema#short",
            "http://www.w3.org/2001/XMLSchema#nonNegativeInteger",
            "http://www.w3.org/2001/XMLSchema#positiveInteger",
        ):
            try:
                return int(self.lexical)
            except ValueError:
                return self.lexical
        if self.is_numeric():
            try:
                return float(self.lexical)
            except ValueError:
                return self.lexical
        return self.lexical


#: Union type of all RDF terms.
Term = Union[IRI, Literal, BlankNode]


def is_entity_term(term: object) -> bool:
    """True if ``term`` can denote an entity (IRI or blank node)."""
    return isinstance(term, (IRI, BlankNode))


def is_literal_term(term: object) -> bool:
    """True if ``term`` is a literal."""
    return isinstance(term, Literal)
