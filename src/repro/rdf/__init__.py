"""Minimal, self-contained RDF data model.

This subpackage implements the subset of the RDF 1.1 abstract syntax that
the SOFYA reproduction needs: IRIs, literals (plain, language-tagged and
datatyped), blank nodes, triples, namespace helpers and the standard
vocabularies (``rdf:``, ``rdfs:``, ``owl:``, ``xsd:``), plus N-Triples and
a pragmatic Turtle reader/writer.

Everything is immutable and hashable so terms and triples can be used as
dictionary keys and set members throughout the higher layers.
"""

from repro.rdf.terms import (
    IRI,
    BlankNode,
    Literal,
    Term,
    is_entity_term,
    is_literal_term,
)
from repro.rdf.triple import Triple, TriplePattern
from repro.rdf.namespace import (
    DBO,
    DBP,
    FOAF,
    Namespace,
    NamespaceManager,
    OWL,
    RDF,
    RDFS,
    SOFYA,
    XSD,
    YAGO,
)
from repro.rdf.ntriples import (
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
    term_to_ntriples,
)
from repro.rdf.turtle import parse_turtle, serialize_turtle

__all__ = [
    "Term",
    "IRI",
    "Literal",
    "BlankNode",
    "Triple",
    "TriplePattern",
    "is_entity_term",
    "is_literal_term",
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "FOAF",
    "YAGO",
    "DBO",
    "DBP",
    "SOFYA",
    "parse_ntriples",
    "parse_ntriples_line",
    "serialize_ntriples",
    "term_to_ntriples",
    "parse_turtle",
    "serialize_turtle",
]
