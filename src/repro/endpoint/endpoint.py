"""The SPARQL endpoint facade.

A :class:`SparqlEndpoint` is the only handle the alignment layer gets on a
remote dataset.  It accepts SPARQL text (or pre-parsed queries), enforces
its :class:`~repro.endpoint.policy.AccessPolicy`, records accounting in a
:class:`~repro.endpoint.log.QueryLog`, and returns result sets.  The
underlying store is deliberately not reachable through the public API so
that "no full dump access" is enforced by construction.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, namedtuple
from typing import Callable, Optional, Union

from repro.errors import EndpointError, QueryBudgetExceeded, ResultTruncated
from repro.obs import config as obs_config
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import QueryProfile
from repro.sparql.ast import (
    AskQuery,
    GroupGraphPattern,
    OptionalNode,
    Query,
    SelectQuery,
    TriplePatternNode,
    UnionNode,
    ValuesNode,
)
from repro.sparql.bindings import Variable
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.results import AskResult, ResultSet
from repro.store.triplestore import TripleStore
from repro.endpoint.log import QueryLog, QueryRecord
from repro.endpoint.policy import AccessPolicy


#: Shape-compatible with :func:`functools.lru_cache`'s ``cache_info()``.
CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "maxsize", "currsize"])


class ParseCache:
    """A thread-safe LRU cache of parsed SPARQL queries, shareable by
    reference.

    The typed :class:`~repro.endpoint.client.EndpointClient` calls
    re-issue the same query shapes thousands of times per alignment run;
    the AST is a tree of frozen dataclasses, so sharing one parse across
    evaluations — and across *endpoints* — is safe.  Endpoints default to
    one process-wide instance; the HTTP service tier passes its base
    endpoint's cache into every lazily-created per-client endpoint so a
    hot query parses once per server, not once per client.
    """

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, Query]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def parse(self, query_text: str) -> Query:
        """The parsed form of ``query_text`` (cached, LRU-evicted)."""
        with self._lock:
            parsed = self._entries.get(query_text)
            if parsed is not None:
                self._entries.move_to_end(query_text)
                self._hits += 1
                return parsed
            self._misses += 1
        # Parse outside the lock: a slow parse must not serialise every
        # other client's cache hits.  Racing parses of the same text are
        # idempotent; last writer wins.
        parsed = parse_query(query_text)
        with self._lock:
            self._entries[query_text] = parsed
            self._entries.move_to_end(query_text)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return parsed

    def cache_info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                self._hits, self._misses, self.maxsize, len(self._entries)
            )

    def cache_clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


#: The process-wide default cache (every endpoint without an explicit
#: ``parse_cache`` shares it).
_shared_parse_cache = ParseCache(maxsize=4096)


def parse_cache_info() -> CacheInfo:
    """Hit/miss statistics of the shared parsed-query cache."""
    return _shared_parse_cache.cache_info()


def clear_parse_cache() -> None:
    """Drop all cached parsed queries (mainly for tests and benchmarks)."""
    _shared_parse_cache.cache_clear()


class SparqlEndpoint:
    """A query-only SPARQL access point over a triple store.

    Parameters
    ----------
    store:
        The dataset served by this endpoint.
    name:
        Endpoint name used in logs and error messages.
    policy:
        Access limits; defaults to :meth:`AccessPolicy.unlimited`.
    evaluator_factory:
        Callable building the query evaluator from the store; defaults to
        :class:`QueryEvaluator`.  The endpoint-simulation layer passes the
        scatter/gather evaluator here for sharded stores.
    parse_cache:
        The :class:`ParseCache` this endpoint parses through; defaults to
        the process-wide shared instance.  Pass an existing endpoint's
        :attr:`parse_cache` to share parsed queries across endpoints
        explicitly (the HTTP tier does, for its per-client endpoints).

    Budget accounting is thread-safe: concurrent query waves reserve a
    slot under a lock before evaluating, so a quota of *n* admits exactly
    *n* queries no matter how many threads race for them.
    """

    def __init__(
        self,
        store: TripleStore,
        name: str = "endpoint",
        policy: AccessPolicy | None = None,
        evaluator_factory: Optional[Callable[[TripleStore], QueryEvaluator]] = None,
        parse_cache: Optional[ParseCache] = None,
    ):
        self._store = store
        self.name = name
        self.policy = policy or AccessPolicy.unlimited()
        self.log = QueryLog()
        self.parse_cache = parse_cache if parse_cache is not None else _shared_parse_cache
        self._evaluator = (evaluator_factory or QueryEvaluator)(store)
        self._queries_issued = 0
        self._budget_lock = threading.Lock()

    def __repr__(self) -> str:
        return f"SparqlEndpoint(name={self.name!r}, queries={self.log.query_count})"

    # ------------------------------------------------------------------ #
    @property
    def queries_remaining(self) -> Union[int, None]:
        """How many queries the policy still allows (``None`` = unlimited)."""
        if self.policy.max_queries is None:
            return None
        return max(0, self.policy.max_queries - self._queries_issued)

    def query(self, query: Union[str, Query]) -> Union[ResultSet, AskResult]:
        """Execute a SPARQL query subject to the access policy.

        Raises
        ------
        QueryBudgetExceeded
            When the policy's query quota is exhausted.
        EndpointError
            When the query is a forbidden full scan under the policy.
        ResultTruncated
            When truncation occurs and the policy is configured to fail.
        """
        started = time.perf_counter()
        tracer = obs_trace.recorder()
        # Auto-trace every query to the REPRO_TRACE JSON-lines file when
        # configured — unless a caller (profile()) already opened a root.
        root = None
        if not tracer.active and obs_config.trace_path():
            root = tracer.begin("query", endpoint=self.name)
        try:
            # Reserve a budget slot atomically (check + increment under
            # the lock), so N racing threads can never admit more than
            # the quota.  The slot is refunded if the query fails before
            # producing a result — rejected full scans and evaluation
            # errors never consumed budget on the sequential path either.
            with self._budget_lock:
                if (
                    self.policy.max_queries is not None
                    and self._queries_issued >= self.policy.max_queries
                ):
                    raise QueryBudgetExceeded(
                        f"Endpoint {self.name!r}: query budget of {self.policy.max_queries} exhausted"
                    )
                self._queries_issued += 1

            try:
                query_text = (
                    query if isinstance(query, str) else f"<parsed:{type(query).__name__}>"
                )
                with tracer.span("parse"):
                    parsed = (
                        self.parse_cache.parse(query)
                        if isinstance(query, str)
                        else query
                    )

                if not self.policy.allow_full_scan and self._is_full_scan(parsed):
                    raise EndpointError(
                        f"Endpoint {self.name!r}: dump-style full scans are not allowed by policy"
                    )

                # The result set materialises inside this span, so every
                # downstream stage span (kernel / scatter / worker:exec)
                # nests and finishes under it.
                with tracer.span("evaluate"):
                    result = self._evaluate(parsed)
            except BaseException:
                with self._budget_lock:
                    self._queries_issued -= 1
                raise

            truncated = False
            row_count = 0
            form = "ASK"
            if isinstance(result, ResultSet):
                form = "SELECT"
                if isinstance(parsed, SelectQuery) and parsed.is_aggregate:
                    form = "COUNT"
                row_count = len(result)
                cap = self.policy.max_result_rows
                if cap is not None and row_count > cap:
                    if self.policy.fail_on_truncation:
                        # The query *did* run and its budget slot stays
                        # consumed, so the log must agree with the quota:
                        # record the truncated query (at the capped row
                        # count, like the silent-truncation path) before
                        # failing, keeping queries_issued == query_count.
                        self._record(
                            query_text, form, cap, True, started
                        )
                        raise ResultTruncated(
                            f"Endpoint {self.name!r}: result of {row_count} rows exceeds cap {cap}"
                        )
                    result.rows = result.rows[:cap]
                    result.truncated = True
                    truncated = True
                    row_count = cap
        except BaseException as error:
            obs_metrics.registry().increment("endpoint.errors")
            if root is not None:
                tracer.end(root, status="error", error=error)
            raise

        mode = self._record(query_text, form, row_count, truncated, started)
        open_root = tracer.current()
        if open_root is not None:
            open_root.annotate(
                form=form, rows=row_count, mode=mode, query=query_text[:200]
            )
        if root is not None:
            tracer.end(root)
        return result

    def _evaluate(self, parsed: Query) -> Union[ResultSet, AskResult]:
        """Evaluate one admitted, policy-checked query.

        The single dispatch point subclasses override to swap evaluators
        safely — :class:`~repro.endpoint.simulation.SimulatedSparqlEndpoint`
        routes through its current worker generation here, so budget
        accounting, policy checks and logging above it never notice a
        live snapshot refresh.
        """
        return self._evaluator.evaluate(parsed)

    def _record(
        self,
        query_text: str,
        form: str,
        row_count: int,
        truncated: bool,
        started: float,
        mode: Optional[str] = None,
    ) -> str:
        """Append one executed query to the log and count it; returns mode.

        Shared by the success path, the ``fail_on_truncation`` failure path
        (where the budget slot stays consumed, so the log must record the
        query too — a truncation failure therefore bumps both
        ``endpoint.queries`` and ``endpoint.errors``) and cache-served
        queries (:meth:`charge_cached`).
        """
        if mode is None:
            mode = self.last_query_mode()
        obs_metrics.registry().increment("endpoint.queries")
        self.log.record(
            QueryRecord(
                query=query_text,
                form=form,
                row_count=row_count,
                truncated=truncated,
                virtual_seconds=self.policy.estimated_cost(row_count),
                duration_seconds=time.perf_counter() - started,
                mode=mode,
            )
        )
        return mode

    def charge_cached(
        self,
        query_text: str,
        form: str,
        row_count: int,
        truncated: bool = False,
    ) -> None:
        """Charge one budget slot for a query answered from a result cache.

        The HTTP service tier serves repeated queries from its
        ``data_version``-keyed page cache without re-evaluating them, but a
        cache hit is still a request the client made: it must consume quota
        and appear in the access log exactly like an evaluated query, or
        ``queries_remaining`` and ``log.query_count`` diverge.  Records the
        query with ``mode="cached"`` (and zero measured duration).

        Raises
        ------
        QueryBudgetExceeded
            When the policy's query quota is exhausted (nothing is logged:
            rejected requests never consumed budget on the evaluated path
            either).
        """
        with self._budget_lock:
            if (
                self.policy.max_queries is not None
                and self._queries_issued >= self.policy.max_queries
            ):
                raise QueryBudgetExceeded(
                    f"Endpoint {self.name!r}: query budget of {self.policy.max_queries} exhausted"
                )
            self._queries_issued += 1
        self._record(
            query_text, form, row_count, truncated, time.perf_counter(),
            mode="cached",
        )

    def last_query_mode(self) -> str:
        """The execution mode the evaluator noted for its latest query.

        ``single`` for evaluators without mode tracking (plain
        :class:`QueryEvaluator` on an unsharded store reports it too).
        """
        last_mode = getattr(self._evaluator, "last_mode", None)
        if callable(last_mode):
            return last_mode()
        return "single"

    def profile(self, query: Union[str, Query]) -> QueryProfile:
        """Run a query under tracing and return its span tree.

        Endpoint-family failures (budget, policy, truncation, worker
        crash) are captured in the returned
        :class:`~repro.obs.trace.QueryProfile` — the trace then shows
        where the failure happened — while unrelated errors propagate.
        """
        tracer = obs_trace.recorder()
        span = tracer.begin("query", endpoint=self.name, profiled=True)
        result = None
        captured: Optional[EndpointError] = None
        try:
            result = self.query(query)
        except EndpointError as error:
            captured = error
            tracer.end(span, status="error", error=error)
        except BaseException as error:
            tracer.end(span, status="error", error=error)
            raise
        else:
            tracer.end(span)
        return QueryProfile(result, captured, span)

    def export_access_log(self, path) -> int:
        """Write the query log to ``path`` as JSON lines; returns count."""
        return self.log.to_jsonl(path)

    def select(self, query: Union[str, Query]) -> ResultSet:
        """Like :meth:`query` but asserts a SELECT result."""
        result = self.query(query)
        if not isinstance(result, ResultSet):
            raise EndpointError("Expected a SELECT query")
        return result

    def ask(self, query: Union[str, Query]) -> bool:
        """Like :meth:`query` but asserts an ASK result and returns a bool."""
        result = self.query(query)
        if not isinstance(result, AskResult):
            raise EndpointError("Expected an ASK query")
        return bool(result)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_full_scan(query: Query) -> bool:
        """Whether every triple pattern in the query is fully unbound."""

        def group_has_constant(group: GroupGraphPattern) -> bool:
            for element in group.elements:
                if isinstance(element, TriplePatternNode):
                    if any(
                        not isinstance(term, Variable)
                        for term in (element.subject, element.predicate, element.object)
                    ):
                        return True
                elif isinstance(element, ValuesNode):
                    # Inline data binds variables to constants, so the joined
                    # patterns are selective even if syntactically unbound.
                    if any(term is not None for row in element.rows for term in row):
                        return True
                elif isinstance(element, OptionalNode):
                    if group_has_constant(element.group):
                        return True
                elif isinstance(element, UnionNode):
                    if any(group_has_constant(branch) for branch in element.branches):
                        return True
                elif isinstance(element, GroupGraphPattern):
                    if group_has_constant(element):
                        return True
            return False

        where = query.where if isinstance(query, (SelectQuery, AskQuery)) else None
        if where is None:  # pragma: no cover - defensive
            return False
        has_patterns = bool(where.variables())
        return has_patterns and not group_has_constant(where)

    # ------------------------------------------------------------------ #
    # Controlled introspection (not dump access)
    # ------------------------------------------------------------------ #
    def dataset_size(self) -> int:
        """Number of triples served — public endpoints expose this as metadata."""
        return len(self._store)

    @property
    def data_version(self) -> int:
        """Mutation stamp of the served store.

        Metadata like :meth:`dataset_size`: result caches key their
        entries on it so a mutation invalidates every cached page without
        the cache ever touching the store itself.
        """
        return self._store.data_version

    @property
    def shard_count(self) -> int:
        """Partitions of the served store (1 for unsharded stores).

        Metadata, like :meth:`dataset_size` — the store itself stays
        unreachable.  The wave scheduler sizes its default concurrency
        from this.
        """
        return getattr(self._store, "num_shards", 1)

    def reset_accounting(self) -> None:
        """Clear the query log (does not restore an exhausted quota)."""
        self.log.reset()
