"""Typed convenience client for the query shapes SOFYA issues.

The alignment layer never builds SPARQL strings itself; it goes through
:class:`EndpointClient`, which turns typed calls (``facts_of_subject``,
``relations_between`` ...) into SPARQL text, runs them through the
endpoint (so policies and accounting apply) and converts results back to
RDF terms.  Keeping this in one place also makes the query-count
benchmarks easy to interpret.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.rdf.ntriples import term_to_ntriples
from repro.rdf.namespace import SAME_AS
from repro.rdf.terms import IRI, Literal, Term
from repro.sparql.bindings import Variable
from repro.sparql.results import ResultSet
from repro.endpoint.endpoint import SparqlEndpoint


def _nt(term: Term) -> str:
    """Render a term for embedding into SPARQL text."""
    return term_to_ntriples(term)


def _nt_values(terms: Sequence[Term]) -> str:
    """Render a VALUES item list, serialising each distinct term once.

    Batched helpers are called with samples that repeat terms (the same
    subject appears in several pairs, sampling with replacement, ...);
    memoising per batch keeps the query-text cost proportional to the
    number of *distinct* terms.
    """
    memo: dict = {}
    parts = []
    for term in terms:
        rendered = memo.get(term)
        if rendered is None:
            rendered = memo[term] = term_to_ntriples(term)
        parts.append(rendered)
    return " ".join(parts)


def _nt_value_pairs(pairs: Sequence[Tuple[Term, Term]]) -> str:
    """Render ``(s o)`` VALUES rows, serialising each distinct term once."""
    memo: dict = {}
    parts = []
    for subject, obj in pairs:
        left = memo.get(subject)
        if left is None:
            left = memo[subject] = term_to_ntriples(subject)
        right = memo.get(obj)
        if right is None:
            right = memo[obj] = term_to_ntriples(obj)
        parts.append(f"({left} {right})")
    return " ".join(parts)


#: ``owl:sameAs`` rendered once at import time — it appears in every
#: sameAs-shaped query the aligner issues.
_SAME_AS_NT = term_to_ntriples(SAME_AS)


def _paging_clause(limit: Optional[int], offset: int) -> str:
    """Render LIMIT/OFFSET in the SPARQL grammar's canonical order.

    The LimitOffsetClauses production puts ``LIMIT`` before ``OFFSET``;
    semantics are order-independent (the offset is always applied first),
    but emitting the canonical order keeps the generated text valid for
    strict remote endpoints.
    """
    clause = ""
    if limit is not None:
        clause += f" LIMIT {int(limit)}"
    if offset:
        clause += f" OFFSET {int(offset)}"
    return clause


class EndpointClient:
    """High-level query helpers over one :class:`SparqlEndpoint`."""

    def __init__(self, endpoint: SparqlEndpoint):
        self.endpoint = endpoint

    def __repr__(self) -> str:
        return f"EndpointClient({self.endpoint.name!r})"

    @property
    def name(self) -> str:
        """The wrapped endpoint's name."""
        return self.endpoint.name

    # ------------------------------------------------------------------ #
    # Relation-level queries
    # ------------------------------------------------------------------ #
    def relations(self, limit: Optional[int] = None) -> List[IRI]:
        """Distinct predicates of the dataset (optionally capped).

        Public endpoints expose this cheaply; under a no-full-scan policy
        the caller should rely on dataset metadata instead.
        """
        query = "SELECT DISTINCT ?p WHERE { ?s ?p ?o }"
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        result = self.endpoint.select(query)
        return [term for term in result.distinct_column("p") if isinstance(term, IRI)]

    def count_facts(self, relation: IRI) -> int:
        """Number of facts of ``relation``."""
        query = f"SELECT (COUNT(*) AS ?c) WHERE {{ ?s {_nt(relation)} ?o }}"
        return self.endpoint.select(query).scalar_int()

    def count_subjects(self, relation: IRI) -> int:
        """Number of distinct subjects of ``relation``."""
        query = f"SELECT (COUNT(DISTINCT ?s) AS ?c) WHERE {{ ?s {_nt(relation)} ?o }}"
        return self.endpoint.select(query).scalar_int()

    def facts(
        self, relation: IRI, limit: Optional[int] = None, offset: int = 0
    ) -> List[Tuple[Term, Term]]:
        """``(subject, object)`` pairs of ``relation`` with LIMIT/OFFSET paging."""
        query = f"SELECT ?s ?o WHERE {{ ?s {_nt(relation)} ?o }}"
        query += _paging_clause(limit, offset)
        result = self.endpoint.select(query)
        pairs: List[Tuple[Term, Term]] = []
        for row in result:
            subject = row.get_term(Variable("s"))
            obj = row.get_term(Variable("o"))
            if subject is not None and obj is not None:
                pairs.append((subject, obj))
        return pairs

    def subjects(
        self, relation: IRI, limit: Optional[int] = None, offset: int = 0
    ) -> List[Term]:
        """Distinct subjects of ``relation`` with LIMIT/OFFSET paging."""
        query = f"SELECT DISTINCT ?s WHERE {{ ?s {_nt(relation)} ?o }}"
        query += _paging_clause(limit, offset)
        return [t for t in self.endpoint.select(query).distinct_column("s") if t is not None]

    # ------------------------------------------------------------------ #
    # Entity-level queries
    # ------------------------------------------------------------------ #
    def objects_of(self, subject: Term, relation: IRI) -> List[Term]:
        """All objects ``o`` with ``relation(subject, o)``."""
        query = f"SELECT ?o WHERE {{ {_nt(subject)} {_nt(relation)} ?o }}"
        return [t for t in self.endpoint.select(query).column("o") if t is not None]

    def has_fact(self, subject: Term, relation: IRI, obj: Term) -> bool:
        """ASK whether the fact ``relation(subject, obj)`` holds."""
        query = f"ASK {{ {_nt(subject)} {_nt(relation)} {_nt(obj)} }}"
        return self.endpoint.ask(query)

    def subject_has_relation(self, subject: Term, relation: IRI) -> bool:
        """ASK whether ``subject`` has *any* ``relation`` fact."""
        query = f"ASK {{ {_nt(subject)} {_nt(relation)} ?o }}"
        return self.endpoint.ask(query)

    def relations_of_subject(self, subject: Term) -> List[IRI]:
        """Distinct relations for which ``subject`` has at least one fact."""
        query = f"SELECT DISTINCT ?p WHERE {{ {_nt(subject)} ?p ?o }}"
        return [t for t in self.endpoint.select(query).distinct_column("p") if isinstance(t, IRI)]

    def relations_between(self, subject: Term, obj: Term) -> List[IRI]:
        """Distinct relations ``p`` such that ``p(subject, obj)`` holds."""
        query = f"SELECT DISTINCT ?p WHERE {{ {_nt(subject)} ?p {_nt(obj)} }}"
        return [t for t in self.endpoint.select(query).distinct_column("p") if isinstance(t, IRI)]

    def relations_between_batch(
        self, pairs: Sequence[Tuple[Term, Term]]
    ) -> List[Tuple[Term, IRI, Term]]:
        """Relations holding between each of several ``(subject, object)`` pairs.

        One VALUES query covers the whole batch, so probing k translated
        sample facts for candidate relations costs a single endpoint query.
        """
        if not pairs:
            return []
        values = _nt_value_pairs(pairs)
        query = f"SELECT ?s ?p ?o WHERE {{ VALUES (?s ?o) {{ {values} }} ?s ?p ?o }}"
        result = self.endpoint.select(query)
        matches: List[Tuple[Term, IRI, Term]] = []
        for row in result:
            subject = row.get_term(Variable("s"))
            predicate = row.get_term(Variable("p"))
            obj = row.get_term(Variable("o"))
            if subject is not None and isinstance(predicate, IRI) and obj is not None:
                matches.append((subject, predicate, obj))
        return matches

    def describe_subjects(
        self, subjects: Sequence[Term]
    ) -> List[Tuple[Term, IRI, Term]]:
        """All ``(subject, predicate, object)`` facts of the given subjects.

        A single VALUES query returning the full "entity description" of
        each sampled subject — the workhorse of candidate discovery for
        entity-literal relations where objects cannot be joined via sameAs.
        """
        if not subjects:
            return []
        values = _nt_values(subjects)
        query = f"SELECT ?s ?p ?o WHERE {{ VALUES ?s {{ {values} }} ?s ?p ?o }}"
        result = self.endpoint.select(query)
        facts: List[Tuple[Term, IRI, Term]] = []
        for row in result:
            subject = row.get_term(Variable("s"))
            predicate = row.get_term(Variable("p"))
            obj = row.get_term(Variable("o"))
            if subject is not None and isinstance(predicate, IRI) and obj is not None:
                facts.append((subject, predicate, obj))
        return facts

    def disagreement_samples(
        self,
        primary: IRI,
        sibling: IRI,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> List[Tuple[Term, Term, Term]]:
        """Subjects where ``primary`` and ``sibling`` have different objects.

        Returns ``(x, y1, y2)`` with ``primary(x, y1)``, ``sibling(x, y2)``,
        ``y1 != y2`` and ``not primary(x, y2)`` — exactly the unbiased
        sample shape of the paper's UBS strategy (§2.2).
        """
        query = (
            "SELECT ?x ?y1 ?y2 WHERE { "
            f"?x {_nt(primary)} ?y1 . ?x {_nt(sibling)} ?y2 . "
            "FILTER(?y1 != ?y2) "
            f"FILTER NOT EXISTS {{ ?x {_nt(primary)} ?y2 }} }}"
        )
        query += _paging_clause(limit, offset)
        result = self.endpoint.select(query)
        samples: List[Tuple[Term, Term, Term]] = []
        for row in result:
            x = row.get_term(Variable("x"))
            y1 = row.get_term(Variable("y1"))
            y2 = row.get_term(Variable("y2"))
            if x is not None and y1 is not None and y2 is not None:
                samples.append((x, y1, y2))
        return samples

    def facts_of_subjects(
        self, subjects: Sequence[Term], relation: IRI
    ) -> List[Tuple[Term, Term]]:
        """All ``relation`` facts whose subject is in ``subjects``.

        Issued as a single VALUES query so that a sample of k subjects
        costs one endpoint query, matching the paper's "the same query
        extracts the actual facts where the sample entities occur".
        """
        if not subjects:
            return []
        values = _nt_values(subjects)
        query = (
            f"SELECT ?s ?o WHERE {{ VALUES ?s {{ {values} }} ?s {_nt(relation)} ?o }}"
        )
        result = self.endpoint.select(query)
        pairs: List[Tuple[Term, Term]] = []
        for row in result:
            subject = row.get_term(Variable("s"))
            obj = row.get_term(Variable("o"))
            if subject is not None and obj is not None:
                pairs.append((subject, obj))
        return pairs

    # ------------------------------------------------------------------ #
    # sameAs queries
    # ------------------------------------------------------------------ #
    def same_as(self, entity: Term) -> List[Term]:
        """Entities linked to ``entity`` by ``owl:sameAs`` (either direction)."""
        entity_nt = _nt(entity)
        query = (
            "SELECT DISTINCT ?x WHERE { "
            f"{{ {entity_nt} {_SAME_AS_NT} ?x }} UNION {{ ?x {_SAME_AS_NT} {entity_nt} }}"
            " }"
        )
        return [t for t in self.endpoint.select(query).distinct_column("x") if t is not None]

    def same_as_for_subjects(self, subjects: Sequence[Term]) -> List[Tuple[Term, Term]]:
        """Batched sameAs lookup for several entities in one query."""
        if not subjects:
            return []
        values = _nt_values(subjects)
        query = (
            f"SELECT ?s ?x WHERE {{ VALUES ?s {{ {values} }} "
            f"{{ ?s {_SAME_AS_NT} ?x }} UNION {{ ?x {_SAME_AS_NT} ?s }} }}"
        )
        result = self.endpoint.select(query)
        pairs: List[Tuple[Term, Term]] = []
        for row in result:
            subject = row.get_term(Variable("s"))
            other = row.get_term(Variable("x"))
            if subject is not None and other is not None:
                pairs.append((subject, other))
        return pairs

    # ------------------------------------------------------------------ #
    # Sampling support
    # ------------------------------------------------------------------ #
    def sample_subjects(
        self, relation: IRI, sample_size: int, offset: int = 0
    ) -> List[Term]:
        """A page of distinct subjects of ``relation`` used as a sample.

        The caller (the sampler) chooses the offset pseudo-randomly; the
        endpoint sees a plain paged query, the way a live endpoint would.
        """
        return self.subjects(relation, limit=sample_size, offset=offset)

    def literal_objects(self, subject: Term, relation: IRI) -> List[Literal]:
        """Literal-valued objects of ``relation`` for ``subject``."""
        query = (
            f"SELECT ?o WHERE {{ {_nt(subject)} {_nt(relation)} ?o FILTER(ISLITERAL(?o)) }}"
        )
        return [
            t
            for t in self.endpoint.select(query).column("o")
            if isinstance(t, Literal)
        ]
