"""Asynchronous endpoint simulation: batched query waves over shards.

The paper's experiments are bounded by endpoint *throughput*: a live
SPARQL endpoint charges real latency per request, so the number of KB
pairs and relation candidates an experiment can cover under its query
budget depends on how many requests can be in flight at once.  This
module models exactly that:

* :class:`SimulatedSparqlEndpoint` — a :class:`SparqlEndpoint` that
  optionally *sleeps* its policy's virtual per-query cost (scaled), so
  wall-clock behaviour matches a remote endpoint instead of an in-memory
  store, and that accepts an evaluator factory so a
  :class:`~repro.shard.ShardedTripleStore` is served through the
  scatter/gather evaluator.
* :class:`WaveScheduler` — issues *waves* (batches) of queries
  concurrently on a thread pool, in order, collecting per-query results
  and errors.  Latency sleeps release the GIL, so a wave of w workers
  overlaps w request latencies the way an async client overlaps network
  round-trips.  An :meth:`asyncio front-end <WaveScheduler.run_wave_async>`
  lets event-loop code await a wave without blocking.

Budget consistency: the endpoint reserves budget slots atomically (see
:class:`SparqlEndpoint`), so a wave racing an almost-exhausted quota
admits exactly the remaining queries — the rest fail with
:class:`~repro.errors.QueryBudgetExceeded` and are reported per query in
the :class:`WaveResult`, never silently dropped, and the shared
:class:`~repro.endpoint.log.QueryLog` records exactly the admitted ones.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.endpoint.endpoint import SparqlEndpoint
from repro.endpoint.policy import AccessPolicy
from repro.errors import (
    EndpointError,
    QueryBudgetExceeded,
    ResultTruncated,
    StoreError,
    WorkerCrashError,
)
from repro.obs.metrics import MetricsRegistry
from repro.shard.sharded_store import ShardedTripleStore
from repro.sparql.ast import Query
from repro.sparql.evaluate import QueryEvaluator
from repro.sparql.results import AskResult, ResultSet
from repro.sparql.scatter import ShardedQueryEvaluator
from repro.store.triplestore import TripleStore

#: Exception types reported per query instead of aborting a whole wave.
_QUERY_ERRORS = (QueryBudgetExceeded, EndpointError, ResultTruncated)


@dataclass
class _Generation:
    """One serving configuration: an evaluator plus its worker pool.

    ``active`` counts queries currently inside :meth:`evaluate` on this
    generation; it is guarded by the endpoint's generation condition.  A
    retiring generation's worker pool is only closed once its count
    reaches zero, so in-flight queries always finish against the
    snapshot they started on.
    """

    evaluator: object
    executor: object = None
    number: int = 0
    active: int = 0


class SimulatedSparqlEndpoint(SparqlEndpoint):
    """An endpoint that charges wall-clock latency for each query.

    Parameters
    ----------
    store:
        The served dataset; a :class:`ShardedTripleStore` is evaluated
        through the scatter/gather evaluator unless an explicit
        ``evaluator_factory`` overrides it.
    latency_scale:
        Multiplier from the policy's *virtual* per-query cost to real
        seconds slept after each successful query.  ``0`` (default)
        disables sleeping — accounting still records virtual seconds.
        The sleep happens outside any lock and releases the GIL, which is
        what makes concurrent waves overlap like real network requests.
    backend:
        Scatter execution backend for sharded stores: ``"thread"``
        (default, in-process per-shard evaluation — waves overlap on the
        scheduler's thread pool) or ``"process"`` — the store is served
        by one worker process per shard
        (:class:`~repro.shard.workers.ProcessShardExecutor` over a
        snapshot directory), lifting CPU-bound waves past the GIL.  A
        worker killed mid-wave surfaces as a per-query
        :class:`~repro.errors.WorkerCrashError` in the
        :class:`WaveResult` — the failed query's budget slot is refunded
        like every pre-result failure — and the pool respawns the worker
        for the next wave.
    snapshot_dir:
        Where the ``backend="process"`` snapshot lives; defaults to a
        fresh temporary directory.  An up-to-date snapshot already there
        is reused (see
        :meth:`~repro.shard.sharded_store.ShardedTripleStore.serve`).
    start_method, pool_size, result_window:
        Forwarded to the process executor (``result_window`` is the
        credit-based flow-control window bounding parent-side buffering
        per in-flight task; see
        :meth:`~repro.shard.sharded_store.ShardedTripleStore.serve`).

    Process-backed endpoints own worker processes: use the endpoint as a
    context manager or call :meth:`close`.
    """

    def __init__(
        self,
        store: TripleStore,
        name: str = "endpoint",
        policy: AccessPolicy | None = None,
        latency_scale: float = 0.0,
        evaluator_factory=None,
        backend: Optional[str] = None,
        snapshot_dir=None,
        start_method: Optional[str] = None,
        pool_size: Optional[int] = None,
        result_window: Optional[int] = None,
    ):
        if latency_scale < 0:
            raise EndpointError("latency_scale must be non-negative")
        if backend not in (None, "thread", "process"):
            raise EndpointError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        self._executor = None
        self._owned_snapshot_dir = None
        # Kept for refresh(): rebuilding the in-process evaluator after a
        # mutation.  The process backend's factory below closes over one
        # specific executor, so it must never be reused across
        # generations — refresh() builds its evaluators explicitly.
        self._evaluator_factory = None if backend == "process" else evaluator_factory
        self._serve_options = {
            "start_method": start_method,
            "pool_size": pool_size,
            "result_window": result_window,
        }
        if backend == "process":
            if not isinstance(store, ShardedTripleStore):
                raise EndpointError(
                    "backend='process' requires a ShardedTripleStore"
                )
            if evaluator_factory is not None:
                raise EndpointError(
                    "backend='process' builds its own scatter evaluator; "
                    "passing evaluator_factory too is contradictory"
                )
            if snapshot_dir is None:
                # Auto-created directory: the endpoint owns it and
                # removes it (snapshot included) on close().
                snapshot_dir = tempfile.mkdtemp(prefix="repro-serve-")
                self._owned_snapshot_dir = snapshot_dir
            try:
                executor = store.serve(
                    snapshot_dir,
                    start_method=start_method,
                    pool_size=pool_size,
                    result_window=result_window,
                )
                self._executor = executor
            except BaseException:
                # serve() failed (unwritable disk, corrupt manifest, ...):
                # an owned tempdir must not outlive the constructor.
                self.close()
                raise
            evaluator_factory = lambda s: ShardedQueryEvaluator(  # noqa: E731
                s, backend="process", executor=executor
            )
        elif evaluator_factory is None and isinstance(store, ShardedTripleStore):
            evaluator_factory = ShardedQueryEvaluator
        try:
            super().__init__(
                store, name=name, policy=policy, evaluator_factory=evaluator_factory
            )
        except BaseException:
            # A booted worker pool must not leak when construction fails.
            self.close()
            raise
        self.latency_scale = latency_scale
        self.backend = backend or "thread"
        self._snapshot_path = Path(snapshot_dir) if backend == "process" else None
        # Generation handover state.  _gen_cond guards _generation, its
        # active counts and _refresh_paused; _refresh_lock serializes
        # whole refresh() calls against each other.
        self._refresh_lock = threading.Lock()
        self._gen_cond = threading.Condition()
        self._refresh_paused = False
        self._generation = _Generation(
            evaluator=self._evaluator, executor=self._executor, number=0
        )

    @property
    def executor(self):
        """The process executor serving this endpoint (``None`` on thread)."""
        return self._executor

    @property
    def generation(self) -> int:
        """The serving generation number (bumped by every :meth:`refresh` swap)."""
        return self._generation.number

    # ------------------------------------------------------------------ #
    # Generation handover
    # ------------------------------------------------------------------ #
    def _evaluate(self, parsed: Query) -> Union[ResultSet, AskResult]:
        """Evaluate through the current serving generation.

        Queries pin the generation they start on: a :meth:`refresh` in
        flight never tears an evaluator (or its worker pool) out from
        under an executing query, and a query arriving during the brief
        mutation window *waits* instead of failing — the zero-downtime
        contract is "no 5xx", not "no latency spike".
        """
        with self._gen_cond:
            while self._refresh_paused:
                self._gen_cond.wait()
            generation = self._generation
            generation.active += 1
        try:
            return generation.evaluator.evaluate(parsed)
        finally:
            with self._gen_cond:
                generation.active -= 1
                if generation.active == 0:
                    self._gen_cond.notify_all()

    def _swap_generation(self, evaluator, executor) -> int:
        """Atomically install a new serving generation and resume intake."""
        with self._gen_cond:
            number = self._generation.number + 1
            self._generation = _Generation(
                evaluator=evaluator, executor=executor, number=number
            )
            self._evaluator = evaluator
            self._executor = executor
            self._refresh_paused = False
            self._gen_cond.notify_all()
        return number

    def _inprocess_evaluator(self):
        """A fresh evaluator over the live store (the handover bridge)."""
        factory = self._evaluator_factory
        if factory is None:
            factory = (
                ShardedQueryEvaluator
                if isinstance(self._store, ShardedTripleStore)
                else QueryEvaluator
            )
        return factory(self._store)

    def _retire(self, generation: _Generation, drain_timeout: float, report: dict) -> None:
        """Drain and close a retired generation's worker pool, if any."""
        executor = generation.executor
        if executor is None or executor is self._executor:
            return
        report["drained"] = executor.drain(timeout=drain_timeout)
        executor.close()

    def refresh(
        self,
        mutate: Optional[Callable[[TripleStore], None]] = None,
        rebalance: bool = False,
        snapshot_dir=None,
        drain_timeout: float = 30.0,
    ) -> dict:
        """Apply mutations and hand the endpoint over to a new generation.

        The zero-downtime refresh sequence:

        1. **Quiesce** — new queries pause at the generation gate (they
           queue, they do not fail) while in-flight queries on the
           outgoing generation drain.  The scatter router and ship
           planner read live parent-side store state, so mutating under
           an executing query could mix two dataset versions into one
           answer; the brief pause is what makes every answer consistent
           with exactly one generation.
        2. **Mutate** — ``mutate(store)`` runs, then ``rebalance`` (when
           requested) re-splits the shard boundaries from live counts.
        3. **Persist** — the sharded store appends a snapshot delta
           (:meth:`~repro.shard.sharded_store.ShardedTripleStore.save_delta`),
           falling back to a full :meth:`save` when no delta is possible
           (lost journal, first save, compaction pending).
        4. **Bridge** — intake resumes immediately through an in-process
           evaluator over the mutated store, so queries flow again while
           the expensive part (booting worker processes) happens in the
           background.  This step runs even when mutate/persist raised:
           the endpoint never stays paused.
        5. **Swap** (process backend) — a new
           :class:`~repro.shard.workers.ProcessShardExecutor` boots on
           generation N+1 over the refreshed snapshot; once its scatter
           evaluator validates the ``data_version`` pin, the serving
           generation moves atomically.  If the boot fails, the bridge
           keeps serving (degraded to in-process, but correct) and the
           error propagates.
        6. **Retire** — the generation-N pool drains its (already empty)
           in-flight map and shuts down.

        Returns a report dict: ``generation``, ``data_version``,
        ``persisted`` (``"delta"``/``"full"``/``"clean"``/``None``),
        ``rebalance`` (move stats or ``None``), ``paused_seconds`` (the
        intake-pause window — the p99 spike budget), ``drained``.

        Thread-backed endpoints skip steps 3 and 5 unless the store has a
        snapshot directory to append to (or ``snapshot_dir`` names one).
        """
        store = self._store
        if rebalance and not isinstance(store, ShardedTripleStore):
            raise EndpointError("rebalance=True requires a ShardedTripleStore")
        report: dict = {
            "generation": self._generation.number,
            "persisted": None,
            "rebalance": None,
            "paused_seconds": 0.0,
            "drained": None,
        }
        with self._refresh_lock:
            old = self._generation
            pause_started = time.perf_counter()
            with self._gen_cond:
                self._refresh_paused = True
                deadline = time.monotonic() + drain_timeout
                while old.active:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._refresh_paused = False
                        self._gen_cond.notify_all()
                        raise EndpointError(
                            f"refresh timed out after {drain_timeout:.1f}s "
                            f"waiting for {old.active} in-flight queries"
                        )
                    self._gen_cond.wait(remaining)
            target = snapshot_dir or self._snapshot_path
            if target is None and isinstance(store, ShardedTripleStore):
                target = getattr(store, "_snapshot_dir", None)
            sharded = isinstance(store, ShardedTripleStore)
            if sharded:
                # In-flight queries were drained above, but out-of-band
                # holders of the outgoing evaluator (profilers, explain
                # tooling) must not hit the freshness pin mid-window.
                store._refresh_serving += 1
            try:
                if mutate is not None:
                    mutate(store)
                if rebalance:
                    report["rebalance"] = store.rebalance()
                if sharded and target is not None:
                    try:
                        wrote = store.save_delta(target)
                        report["persisted"] = "delta" if wrote else "clean"
                    except StoreError:
                        store.save(target)
                        report["persisted"] = "full"
            finally:
                # Resume serving no matter what happened above — through a
                # fresh in-process evaluator, because the store may have
                # mutated (even partially) and the old generation's worker
                # mmaps / caches no longer match it.
                try:
                    bridge = self._inprocess_evaluator()
                except BaseException:
                    with self._gen_cond:
                        self._refresh_paused = False
                        self._gen_cond.notify_all()
                    raise
                report["generation"] = self._swap_generation(bridge, None)
                report["paused_seconds"] = time.perf_counter() - pause_started
                if sharded:
                    store._refresh_serving -= 1
            if self.backend == "process":
                try:
                    executor = store.serve(target, **self._serve_options)
                    try:
                        evaluator = ShardedQueryEvaluator(
                            store, backend="process", executor=executor
                        )
                    except BaseException:
                        executor.close()
                        raise
                except BaseException:
                    self._retire(old, drain_timeout, report)
                    raise
                report["generation"] = self._swap_generation(evaluator, executor)
            self._retire(old, drain_timeout, report)
            report["data_version"] = store.data_version
            return report

    def close(self) -> None:
        """Stop the worker pool of a process-backed endpoint (idempotent).

        A snapshot directory the endpoint created itself (no explicit
        ``snapshot_dir``) is deleted with the pool; a caller-provided
        directory is left alone.
        """
        if self._executor is not None:
            self._executor.close()
        if self._owned_snapshot_dir is not None:
            shutil.rmtree(self._owned_snapshot_dir, ignore_errors=True)
            self._owned_snapshot_dir = None

    def __enter__(self) -> "SimulatedSparqlEndpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def query(self, query: Union[str, Query]) -> Union[ResultSet, AskResult]:
        result = super().query(query)
        if self.latency_scale:
            rows = len(result) if isinstance(result, ResultSet) else 0
            time.sleep(self.policy.estimated_cost(rows) * self.latency_scale)
        return result


def sharded_endpoint(
    store: ShardedTripleStore,
    name: str = "endpoint",
    policy: AccessPolicy | None = None,
    latency_scale: float = 0.0,
    backend: Optional[str] = None,
    snapshot_dir=None,
    start_method: Optional[str] = None,
    pool_size: Optional[int] = None,
    result_window: Optional[int] = None,
) -> SimulatedSparqlEndpoint:
    """A simulated endpoint serving a sharded store via scatter/gather.

    With ``backend="process"`` the shards are served by worker processes
    over a snapshot directory (written on demand); close the endpoint to
    stop them.
    """
    return SimulatedSparqlEndpoint(
        store,
        name=name,
        policy=policy,
        latency_scale=latency_scale,
        backend=backend,
        snapshot_dir=snapshot_dir,
        start_method=start_method,
        pool_size=pool_size,
        result_window=result_window,
    )


@dataclass
class WaveResult:
    """The outcome of one query wave, in submission order.

    ``results[i]`` is the i-th query's result, or ``None`` when that
    query failed; ``errors`` pairs each failed index with its exception.
    """

    results: List[Optional[Union[ResultSet, AskResult]]]
    errors: List[Tuple[int, Exception]] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def succeeded(self) -> int:
        """Number of queries that completed."""
        return sum(1 for result in self.results if result is not None)

    @property
    def failed(self) -> int:
        """Number of queries that raised."""
        return len(self.errors)

    @property
    def throughput(self) -> float:
        """Completed queries per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.succeeded / self.wall_seconds

    def raise_first_error(self) -> None:
        """Re-raise the first per-query error, if any (for strict callers)."""
        if self.errors:
            raise self.errors[0][1]


class WaveScheduler:
    """Issues batched query waves concurrently against one endpoint.

    A *wave* is a batch of queries submitted together; the scheduler
    fans each wave out over a thread pool and gathers results in
    submission order.  Query-level failures (budget exhaustion, policy
    rejections, truncation) are captured per query so an exhausted
    budget mid-wave yields a partial wave, matching the any-time design
    of the alignment algorithm.  Unexpected exceptions propagate.

    Parameters
    ----------
    endpoint:
        The (thread-safe) endpoint queried.
    max_workers:
        Concurrent in-flight queries; defaults to the store's shard
        count when the endpoint serves a sharded store, else 4.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` receiving this
        scheduler's wave telemetry (per-query wall-latency histograms,
        per-mode counters, error/crash counts); defaults to a fresh
        per-scheduler registry so :meth:`wave_report` reflects exactly
        this scheduler's traffic.

    Use as a context manager (or call :meth:`close`) to release the pool.
    """

    def __init__(
        self,
        endpoint: SparqlEndpoint,
        max_workers: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_workers is None:
            shard_count = endpoint.shard_count
            max_workers = shard_count if shard_count > 1 else 4
        if max_workers < 1:
            raise EndpointError("max_workers must be >= 1")
        self.endpoint = endpoint
        self.max_workers = max_workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="query-wave"
        )

    def __enter__(self) -> "WaveScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    def _timed_query(
        self, query: Union[str, Query]
    ) -> Union[ResultSet, AskResult]:
        """Run one query and record its wall latency into the registry.

        Successful queries land in the overall ``wave.latency`` histogram
        plus a per-execution-mode one; failures record into
        ``wave.latency.error`` and bump ``wave.errors`` (and
        ``wave.crashes`` for worker deaths) before propagating.
        """
        started = time.perf_counter()
        try:
            result = self.endpoint.query(query)
        except BaseException as error:
            self.metrics.observe(
                "wave.latency.error", time.perf_counter() - started
            )
            self.metrics.increment("wave.errors")
            if isinstance(error, WorkerCrashError):
                self.metrics.increment("wave.crashes")
            raise
        elapsed = time.perf_counter() - started
        mode = self.endpoint.last_query_mode()
        self.metrics.observe("wave.latency", elapsed)
        self.metrics.observe("wave.latency." + mode, elapsed)
        self.metrics.increment("wave.mode." + mode)
        return result

    def wave_report(self) -> dict:
        """Latency percentiles, error/crash counts and per-mode breakdown.

        The ``latency`` block is the overall histogram snapshot (count /
        mean / p50 / p95 / p99, seconds); ``modes`` holds one such
        snapshot per execution mode observed.  Process-backed endpoints
        additionally contribute their executor's ``protocol`` ledger.
        """
        snapshot = self.metrics.snapshot()
        histograms = snapshot["histograms"]
        modes = {}
        for name, data in histograms.items():
            prefix = "wave.latency."
            if name.startswith(prefix) and name != "wave.latency.error":
                modes[name[len(prefix):]] = data
        report = {
            "queries": histograms.get("wave.latency", {}).get("count", 0),
            "errors": int(self.metrics.value("wave.errors")),
            "crashes": int(self.metrics.value("wave.crashes")),
            "latency": histograms.get("wave.latency", {"count": 0}),
            "modes": modes,
        }
        executor = getattr(self.endpoint, "executor", None)
        if executor is not None:
            report["protocol"] = executor.protocol_stats()
        return report

    def submit(self, query: Union[str, Query]) -> "Future":
        """Submit one query; returns its :class:`concurrent.futures.Future`."""
        return self._executor.submit(self._timed_query, query)

    def run_wave(self, queries: Sequence[Union[str, Query]]) -> WaveResult:
        """Issue one wave of queries concurrently; gather in order."""
        start = time.perf_counter()
        futures = [self.submit(query) for query in queries]
        results: List[Optional[Union[ResultSet, AskResult]]] = []
        errors: List[Tuple[int, Exception]] = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except _QUERY_ERRORS as error:
                results.append(None)
                errors.append((index, error))
        return WaveResult(
            results=results,
            errors=errors,
            wall_seconds=time.perf_counter() - start,
        )

    def run_waves(
        self, waves: Sequence[Sequence[Union[str, Query]]]
    ) -> List[WaveResult]:
        """Run several waves back to back (each wave fully gathers first)."""
        return [self.run_wave(wave) for wave in waves]

    def map(
        self,
        build_query: Callable[[object], Union[str, Query]],
        items: Sequence[object],
        wave_size: Optional[int] = None,
    ) -> List[WaveResult]:
        """Build one query per item and run them in waves of ``wave_size``.

        The convenience shape for alignment workloads: a sample of
        subjects or candidate relations maps to one probe query each,
        issued ``wave_size`` at a time (defaults to the worker count).
        """
        size = wave_size or self.max_workers
        queries = [build_query(item) for item in items]
        return self.run_waves(
            [queries[start : start + size] for start in range(0, len(queries), size)]
        )

    # ------------------------------------------------------------------ #
    async def run_wave_async(
        self, queries: Sequence[Union[str, Query]]
    ) -> WaveResult:
        """Await one wave from an asyncio event loop.

        Each query runs on the scheduler's thread pool via the running
        loop's executor bridge, so event-loop code can interleave other
        work while a wave is in flight.
        """
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        tasks = [
            loop.run_in_executor(self._executor, self._timed_query, query)
            for query in queries
        ]
        gathered = await asyncio.gather(*tasks, return_exceptions=True)
        results: List[Optional[Union[ResultSet, AskResult]]] = []
        errors: List[Tuple[int, Exception]] = []
        for index, outcome in enumerate(gathered):
            if isinstance(outcome, _QUERY_ERRORS):
                results.append(None)
                errors.append((index, outcome))
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                results.append(outcome)
        return WaveResult(
            results=results,
            errors=errors,
            wall_seconds=time.perf_counter() - start,
        )
