"""Query accounting for endpoint simulators.

The log is shared by every thread issuing queries against one endpoint,
so mutation and snapshotting are guarded by a lock: concurrent waves can
append records while another thread reads a consistent summary.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Iterator, List


@dataclass(frozen=True)
class QueryRecord:
    """One executed query with its observed cost.

    ``virtual_seconds`` is the *simulated* latency the policy charges;
    ``duration_seconds`` is the real monotonic wall time the engine spent
    evaluating (0.0 for records produced before the endpoint measured
    it).  ``mode`` is the engine's execution-mode note — ``single`` /
    ``fast-count`` / ``fold`` / ``scatter`` / ``ship`` / ``global``.
    """

    query: str
    form: str
    row_count: int
    truncated: bool
    virtual_seconds: float
    duration_seconds: float = 0.0
    mode: str = "single"


@dataclass
class QueryLog:
    """Accumulates :class:`QueryRecord` entries for one endpoint.

    The log is what the cost experiments (E4 in DESIGN.md) read: total
    queries, rows transferred and simulated wall-clock, optionally reset
    between experiment phases.
    """

    records: List[QueryRecord] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record(self, record: QueryRecord) -> None:
        """Append one record (safe to call from concurrent query waves)."""
        with self._lock:
            self.records.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self.records)

    def __iter__(self) -> Iterator[QueryRecord]:
        # Iterate a snapshot so concurrent appends cannot skew readers.
        with self._lock:
            return iter(list(self.records))

    # Every aggregate reader snapshots under the lock, like snapshot()
    # and __iter__: iterating self.records bare while concurrent waves
    # append or reset() would break the module's consistent-snapshot
    # contract (a reset mid-sum yields a total belonging to no state the
    # log was ever in).

    @property
    def query_count(self) -> int:
        """Total number of queries executed."""
        with self._lock:
            return len(self.records)

    @property
    def total_rows(self) -> int:
        """Total number of result rows transferred."""
        with self._lock:
            return sum(record.row_count for record in self.records)

    @property
    def total_virtual_seconds(self) -> float:
        """Total simulated latency of all queries."""
        with self._lock:
            return sum(record.virtual_seconds for record in self.records)

    @property
    def truncated_count(self) -> int:
        """Number of queries whose results were truncated by policy."""
        with self._lock:
            return sum(1 for record in self.records if record.truncated)

    def by_form(self) -> dict[str, int]:
        """Query counts grouped by query form (SELECT / ASK / COUNT)."""
        with self._lock:
            records = list(self.records)
        counts: dict[str, int] = {}
        for record in records:
            counts[record.form] = counts.get(record.form, 0) + 1
        return counts

    def by_mode(self) -> dict[str, int]:
        """Query counts grouped by execution mode (scatter / fold / ...)."""
        with self._lock:
            records = list(self.records)
        counts: dict[str, int] = {}
        for record in records:
            counts[record.mode] = counts.get(record.mode, 0) + 1
        return counts

    def to_jsonl(self, path) -> int:
        """Write the log as JSON lines (one record per line); returns count.

        The structured access-log export the HTTP service tier will
        inherit: each line carries the query text, form, execution mode,
        row count, truncation flag and both latencies (simulated and
        measured milliseconds).
        """
        with self._lock:
            records = list(self.records)
        with open(path, "w", encoding="utf-8") as sink:
            for record in records:
                sink.write(
                    json.dumps(
                        {
                            "query": record.query,
                            "form": record.form,
                            "mode": record.mode,
                            "rows": record.row_count,
                            "truncated": record.truncated,
                            "virtual_seconds": round(record.virtual_seconds, 6),
                            "duration_ms": round(
                                record.duration_seconds * 1000, 3
                            ),
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        return len(records)

    def reset(self) -> None:
        """Forget all records."""
        with self._lock:
            self.records.clear()

    def snapshot(self) -> dict[str, float]:
        """A flat, consistent summary dictionary (used by benchmark reports)."""
        with self._lock:
            records = list(self.records)
        return {
            "queries": float(len(records)),
            "rows": float(sum(record.row_count for record in records)),
            "virtual_seconds": round(
                sum(record.virtual_seconds for record in records), 6
            ),
            "duration_seconds": round(
                sum(record.duration_seconds for record in records), 6
            ),
            "truncated": float(sum(1 for record in records if record.truncated)),
        }
