"""Query accounting for endpoint simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List


@dataclass(frozen=True)
class QueryRecord:
    """One executed query with its observed cost."""

    query: str
    form: str
    row_count: int
    truncated: bool
    virtual_seconds: float


@dataclass
class QueryLog:
    """Accumulates :class:`QueryRecord` entries for one endpoint.

    The log is what the cost experiments (E4 in DESIGN.md) read: total
    queries, rows transferred and simulated wall-clock, optionally reset
    between experiment phases.
    """

    records: List[QueryRecord] = field(default_factory=list)

    def record(self, record: QueryRecord) -> None:
        """Append one record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self.records)

    @property
    def query_count(self) -> int:
        """Total number of queries executed."""
        return len(self.records)

    @property
    def total_rows(self) -> int:
        """Total number of result rows transferred."""
        return sum(record.row_count for record in self.records)

    @property
    def total_virtual_seconds(self) -> float:
        """Total simulated latency of all queries."""
        return sum(record.virtual_seconds for record in self.records)

    @property
    def truncated_count(self) -> int:
        """Number of queries whose results were truncated by policy."""
        return sum(1 for record in self.records if record.truncated)

    def by_form(self) -> dict[str, int]:
        """Query counts grouped by query form (SELECT / ASK / COUNT)."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.form] = counts.get(record.form, 0) + 1
        return counts

    def reset(self) -> None:
        """Forget all records."""
        self.records.clear()

    def snapshot(self) -> dict[str, float]:
        """A flat summary dictionary (used by benchmark reports)."""
        return {
            "queries": float(self.query_count),
            "rows": float(self.total_rows),
            "virtual_seconds": round(self.total_virtual_seconds, 6),
            "truncated": float(self.truncated_count),
        }
