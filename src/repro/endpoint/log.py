"""Query accounting for endpoint simulators.

The log is shared by every thread issuing queries against one endpoint,
so mutation and snapshotting are guarded by a lock: concurrent waves can
append records while another thread reads a consistent summary.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator, List


@dataclass(frozen=True)
class QueryRecord:
    """One executed query with its observed cost."""

    query: str
    form: str
    row_count: int
    truncated: bool
    virtual_seconds: float


@dataclass
class QueryLog:
    """Accumulates :class:`QueryRecord` entries for one endpoint.

    The log is what the cost experiments (E4 in DESIGN.md) read: total
    queries, rows transferred and simulated wall-clock, optionally reset
    between experiment phases.
    """

    records: List[QueryRecord] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record(self, record: QueryRecord) -> None:
        """Append one record (safe to call from concurrent query waves)."""
        with self._lock:
            self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QueryRecord]:
        # Iterate a snapshot so concurrent appends cannot skew readers.
        with self._lock:
            return iter(list(self.records))

    @property
    def query_count(self) -> int:
        """Total number of queries executed."""
        return len(self.records)

    @property
    def total_rows(self) -> int:
        """Total number of result rows transferred."""
        return sum(record.row_count for record in self.records)

    @property
    def total_virtual_seconds(self) -> float:
        """Total simulated latency of all queries."""
        return sum(record.virtual_seconds for record in self.records)

    @property
    def truncated_count(self) -> int:
        """Number of queries whose results were truncated by policy."""
        return sum(1 for record in self.records if record.truncated)

    def by_form(self) -> dict[str, int]:
        """Query counts grouped by query form (SELECT / ASK / COUNT)."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.form] = counts.get(record.form, 0) + 1
        return counts

    def reset(self) -> None:
        """Forget all records."""
        with self._lock:
            self.records.clear()

    def snapshot(self) -> dict[str, float]:
        """A flat, consistent summary dictionary (used by benchmark reports)."""
        with self._lock:
            records = list(self.records)
        return {
            "queries": float(len(records)),
            "rows": float(sum(record.row_count for record in records)),
            "virtual_seconds": round(
                sum(record.virtual_seconds for record in records), 6
            ),
            "truncated": float(sum(1 for record in records if record.truncated)),
        }
