"""Endpoint access policies.

Public SPARQL endpoints (DBpedia, YAGO mirrors, ...) protect themselves
with quotas: a maximum number of requests, capped result sizes, and latency
that makes chatty clients slow.  :class:`AccessPolicy` captures those
limits so experiments can quantify the "on-the-fly with few queries" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AccessPolicy:
    """Limits applied by a simulated SPARQL endpoint.

    Parameters
    ----------
    max_queries:
        Total number of queries a client may issue (``None`` = unlimited).
    max_result_rows:
        Per-query row cap.  Results larger than this are silently truncated
        (like public endpoints' ``LIMIT 10000`` behaviour) unless
        ``fail_on_truncation`` is set.
    fail_on_truncation:
        When ``True`` a truncated result raises
        :class:`~repro.errors.ResultTruncated` instead of being cut.
    latency_per_query:
        Simulated fixed cost per query, in (virtual) seconds.
    latency_per_row:
        Simulated marginal cost per returned row, in (virtual) seconds.
    allow_full_scan:
        When ``False``, queries whose basic graph patterns contain no
        constant term at all (i.e. a full dump scan such as
        ``SELECT * WHERE { ?s ?p ?o }``) are rejected.  This models
        providers that forbid dump-style extraction, and is what forces the
        alignment algorithm to stay sample-based.
    """

    max_queries: Optional[int] = None
    max_result_rows: Optional[int] = 10_000
    fail_on_truncation: bool = False
    latency_per_query: float = 0.25
    latency_per_row: float = 0.0005
    allow_full_scan: bool = True

    def __post_init__(self) -> None:
        if self.max_queries is not None and self.max_queries < 0:
            raise ValueError("max_queries must be non-negative or None")
        if self.max_result_rows is not None and self.max_result_rows <= 0:
            raise ValueError("max_result_rows must be positive or None")
        if self.latency_per_query < 0 or self.latency_per_row < 0:
            raise ValueError("latencies must be non-negative")

    @classmethod
    def unlimited(cls) -> "AccessPolicy":
        """A policy with no limits (useful for baselines and tests)."""
        return cls(max_queries=None, max_result_rows=None, latency_per_query=0.0,
                   latency_per_row=0.0)

    @classmethod
    def public_endpoint(cls) -> "AccessPolicy":
        """A policy mimicking a public LOD endpoint.

        10 000-row result cap, dump-style full scans rejected, and a
        moderate per-query latency.
        """
        return cls(
            max_queries=None,
            max_result_rows=10_000,
            allow_full_scan=False,
            latency_per_query=0.35,
            latency_per_row=0.0005,
        )

    @classmethod
    def strict(cls, max_queries: int = 100) -> "AccessPolicy":
        """A tight quota for stress-testing the on-the-fly algorithm."""
        return cls(
            max_queries=max_queries,
            max_result_rows=1_000,
            allow_full_scan=False,
            latency_per_query=0.5,
            latency_per_row=0.001,
        )

    def estimated_cost(self, rows: int) -> float:
        """Virtual seconds consumed by one query returning ``rows`` rows."""
        return self.latency_per_query + self.latency_per_row * rows
