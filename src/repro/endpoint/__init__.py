"""SPARQL endpoint simulator.

The paper's whole point is that the remote KBs are only reachable through
SPARQL endpoints: downloading the full dump is impossible or impractical,
providers rate-limit queries, and results may be truncated.  This package
models exactly that interface:

* :class:`~repro.endpoint.policy.AccessPolicy` — query quota, per-query row
  cap, simulated latency.
* :class:`~repro.endpoint.endpoint.SparqlEndpoint` — a query-only facade
  over a :class:`~repro.store.TripleStore`; the store itself is never
  exposed to clients.
* :class:`~repro.endpoint.log.QueryLog` — per-query accounting used by the
  cost benchmarks (number of queries, rows transferred, simulated time).
* :class:`~repro.endpoint.client.EndpointClient` — typed convenience
  wrappers for the query shapes SOFYA issues (facts of a relation, sameAs
  lookups, relation lists, counts).
* :mod:`repro.endpoint.simulation` — the asynchronous simulation layer:
  :class:`~repro.endpoint.simulation.SimulatedSparqlEndpoint` charges
  wall-clock latency per query (and serves sharded stores through the
  scatter/gather evaluator), and
  :class:`~repro.endpoint.simulation.WaveScheduler` issues batched query
  waves concurrently under the endpoint's thread-safe budget accounting.
"""

from repro.endpoint.policy import AccessPolicy
from repro.endpoint.endpoint import SparqlEndpoint
from repro.endpoint.log import QueryLog, QueryRecord
from repro.endpoint.client import EndpointClient
from repro.endpoint.simulation import (
    SimulatedSparqlEndpoint,
    WaveResult,
    WaveScheduler,
    sharded_endpoint,
)

__all__ = [
    "AccessPolicy",
    "SparqlEndpoint",
    "QueryLog",
    "QueryRecord",
    "EndpointClient",
    "SimulatedSparqlEndpoint",
    "WaveScheduler",
    "WaveResult",
    "sharded_endpoint",
]
