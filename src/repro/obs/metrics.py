"""Thread-safe counters, gauges and fixed-bucket latency histograms.

The registry is the always-on half of the observability layer: every
engine layer increments named instruments unconditionally (plan-cache
hits, kernel engagement, scatter modes, worker-protocol gauges), and the
cost per event is one dict lookup plus one locked integer add — cheap
enough that nothing in the engine needs a "metrics on/off" code path.
For the honest zero-instrumentation baseline (``record_obs.py``'s
overhead gate) a registry can still be disabled wholesale:
:meth:`MetricsRegistry.set_enabled` turns the hot-path convenience
methods (:meth:`~MetricsRegistry.increment`,
:meth:`~MetricsRegistry.observe`, :meth:`~MetricsRegistry.set_gauge`)
into immediate returns.

Histograms use fixed geometric buckets (100 µs doubling up to ~105 s),
so recording is O(log buckets) with no per-sample allocation and
percentiles come from cumulative bucket counts with linear
interpolation inside the winning bucket, clamped to the exact observed
min/max.  That makes p50/p95/p99 snapshots safe to compute while waves
are still recording.

Everything here is stdlib-only; no engine module is imported, so any
layer (including worker processes) can use the registry freely.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Optional, Tuple

#: Histogram bucket upper bounds in seconds: 100 µs doubling to ~105 s.
#: Wave latencies (sub-ms vectorized joins up to multi-second folds over
#: 10M-triple worlds) all land in distinct buckets; anything above the
#: last bound goes to the overflow slot and percentiles clamp to the
#: observed max.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    0.0001 * (2 ** exponent) for exponent in range(21)
)


class Counter:
    """A monotonically increasing named integer."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A named value that can move both ways (queue depths, ledgers)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket latency histogram with percentile snapshots.

    ``record`` is thread-safe and allocation-free; ``percentile`` walks
    the cumulative bucket counts and interpolates linearly inside the
    bucket holding the requested rank, clamping to the exact observed
    min/max so a single-sample histogram reports that sample at every
    percentile.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str, bounds: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        self.name = name
        self.bounds = tuple(bounds)
        self._lock = threading.Lock()
        # One slot per bound plus the overflow slot.
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def record(self, value: float) -> None:
        slot = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[slot] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile (``q`` in [0, 100]) or ``None`` when empty."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            low, high = self._min, self._max
        if not total:
            return None
        rank = max(1, -(-int(q * total) // 100))  # ceil(q/100 * total), >= 1
        cumulative = 0
        for slot, slot_count in enumerate(counts):
            if not slot_count:
                continue
            if cumulative + slot_count >= rank:
                lower = self.bounds[slot - 1] if slot > 0 else 0.0
                upper = self.bounds[slot] if slot < len(self.bounds) else high
                fraction = (rank - cumulative) / slot_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, low), high)
            cumulative += slot_count
        return high  # pragma: no cover - rank <= total always lands above

    def snapshot(self) -> Dict[str, float]:
        """count / sum / mean / min / max plus p50, p95 and p99."""
        with self._lock:
            total = self._count
            value_sum = self._sum
            low, high = self._min, self._max
        if not total:
            return {"count": 0}
        return {
            "count": total,
            "sum": round(value_sum, 6),
            "mean": round(value_sum / total, 6),
            "min": round(low, 6),
            "max": round(high, 6),
            "p50": round(self.percentile(50), 6),
            "p95": round(self.percentile(95), 6),
            "p99": round(self.percentile(99), 6),
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    There is one process-wide default registry (:func:`registry`) the
    engine layers write to; components that need isolated numbers — the
    per-executor protocol gauges, each :class:`WaveScheduler`'s latency
    histograms — create their own instances.
    """

    def __init__(self, enabled: bool = True):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._enabled = bool(enabled)

    # ------------------------------------------------------------------ #
    # Enable switch (the overhead benchmark's bare baseline)
    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        """Turn the hot-path convenience methods into no-ops (or back)."""
        self._enabled = bool(enabled)

    # ------------------------------------------------------------------ #
    # Instrument accessors (create on first use)
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name, bounds)
                )
        return instrument

    # ------------------------------------------------------------------ #
    # Hot-path conveniences (no-ops when disabled)
    # ------------------------------------------------------------------ #
    def increment(self, name: str, amount: int = 1) -> None:
        if self._enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if self._enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if self._enabled:
            self.histogram(name).record(value)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def value(self, name: str) -> float:
        """A counter's (or, failing that, a gauge's) current value; 0 if unset."""
        counter = self._counters.get(name)
        if counter is not None:
            return counter.value
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else 0

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """``suffix -> value`` for every counter named ``prefix`` + suffix."""
        with self._lock:
            items = list(self._counters.items())
        return {
            name[len(prefix):]: counter.value
            for name, counter in items
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, Dict]:
        """A consistent read of every instrument, for reports and tests."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": {name: c.value for name, c in sorted(counters)},
            "gauges": {name: g.value for name, g in sorted(gauges)},
            "histograms": {name: h.snapshot() for name, h in sorted(histograms)},
        }

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark phases)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide default registry the engine layers write to.
_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT
