"""Zero-dependency observability: metrics registry, tracing, env config.

- :mod:`repro.obs.metrics` — thread-safe counters, gauges and latency
  histograms with p50/p95/p99 snapshots; always-on and cheap.
- :mod:`repro.obs.trace` — opt-in per-query span trees spanning parent
  and worker processes, serialised to JSON-lines via ``REPRO_TRACE``.
- :mod:`repro.obs.config` — the single validated reader for every
  ``REPRO_*`` environment variable.
"""

from repro.obs.config import (
    broadcast_limit,
    numpy_disabled,
    result_window,
    trace_path,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    QueryProfile,
    Span,
    TraceRecorder,
    count_rows,
    recorder,
)

__all__ = [
    "broadcast_limit",
    "numpy_disabled",
    "result_window",
    "trace_path",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "NULL_SPAN",
    "QueryProfile",
    "Span",
    "TraceRecorder",
    "count_rows",
    "recorder",
]
