"""Per-query span trees: record where a query's wall time went.

A trace is a tree of :class:`Span` nodes rooted at one ``query`` span.
The engine layers open child spans for the stages the ISSUE's telemetry
story names — ``parse``, ``plan``, ``kernel``, ``scatter``, ``fold``,
``ship:broadcast-build``, ``parent:merge/decode``, ``step:<operator>`` —
and worker processes measure their own ``worker:exec`` spans, which the
executor re-parents into the caller's tree from the payload piggybacked
on terminal protocol messages, so one tree shows the parent-vs-worker
time split and the task's queue wait.

Recording is strictly opt-in per query: the :class:`TraceRecorder` keeps
a thread-local span stack, and every instrumentation site first checks
:attr:`TraceRecorder.active`.  With no open root span that check is one
thread-local attribute read, which is what keeps tracing-off overhead
under the benchmark gate.  A root is opened either by
``SparqlEndpoint.profile`` or automatically by ``SparqlEndpoint.query``
when the ``REPRO_TRACE`` environment variable names a file — completed
root spans are then appended to that file as JSON lines.

Durations are *inclusive* wall time.  Stage spans wrap lazily-consumed
generators (:func:`count_rows`), so a span closes when its stream is
exhausted and its duration includes time spent in downstream consumers
pulling rows through it — a pipeline's spans therefore overlap rather
than sum, which is the honest picture for streaming execution.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional

__all__ = [
    "Span",
    "NULL_SPAN",
    "TraceRecorder",
    "QueryProfile",
    "recorder",
    "count_rows",
]


def _error_text(error: object) -> Optional[str]:
    if error is None:
        return None
    if isinstance(error, BaseException):
        return f"{type(error).__name__}: {error}"
    return str(error)


class Span:
    """One timed node of a trace tree."""

    __slots__ = ("name", "attributes", "children", "status", "error",
                 "start", "duration", "process")

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        process: Optional[str] = None,
    ):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []
        self.status = "ok"
        self.error: Optional[str] = None
        self.start = time.perf_counter()
        self.duration: Optional[float] = None
        #: ``None`` for parent-process spans; workers stamp ``"worker"``
        #: so re-parented spans stay distinguishable in one tree.
        self.process = process

    def annotate(self, **attributes: Any) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)

    def child(self, name: str, **attributes: Any) -> "Span":
        """Create and attach a child span (started now)."""
        span = Span(name, attributes)
        self.children.append(span)
        return span

    def finish(self, status: str = "ok", error: object = None) -> None:
        """Close the span (idempotent — only the first call applies)."""
        if self.duration is not None:
            return
        self.duration = time.perf_counter() - self.start
        self.status = status
        self.error = _error_text(error)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def iter_spans(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> Optional["Span"]:
        """The first descendant (or self) with ``name``, depth-first."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        """Every descendant (or self) with ``name``, depth-first order."""
        return [span for span in self.iter_spans() if span.name == name]

    # ------------------------------------------------------------------ #
    # Serialisation (JSON-lines sink and the worker protocol payload)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": (
                round(self.duration * 1000, 3) if self.duration is not None else None
            ),
            "status": self.status,
        }
        if self.error:
            data["error"] = self.error
        if self.process:
            data["process"] = self.process
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output.

        Used to re-parent worker-measured spans into the caller's trace:
        the duration is taken from the payload verbatim (the clocks of
        two processes never mix into one measurement).
        """
        span = cls(
            payload["name"],
            payload.get("attributes"),
            process=payload.get("process"),
        )
        duration_ms = payload.get("duration_ms")
        span.duration = None if duration_ms is None else duration_ms / 1000.0
        span.status = payload.get("status", "ok")
        span.error = payload.get("error")
        span.children = [
            cls.from_payload(child) for child in payload.get("children", ())
        ]
        return span

    def describe(self, indent: int = 0) -> str:
        """A human-readable tree rendering (examples and debugging)."""
        duration = (
            f"{self.duration * 1000:8.3f}ms" if self.duration is not None else "   (open)"
        )
        marker = "" if self.status == "ok" else f"  !! {self.status}: {self.error}"
        process = f" [{self.process}]" if self.process else ""
        attributes = ""
        if self.attributes:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(self.attributes.items()))
            attributes = f"  {{{inner}}}"
        lines = [f"{'  ' * indent}{duration}  {self.name}{process}{attributes}{marker}"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


class _NullSpan:
    """Absorbs annotations when no trace is being recorded."""

    __slots__ = ()

    def annotate(self, **attributes: Any) -> None:
        pass

    def child(self, name: str, **attributes: Any) -> "_NullSpan":
        return self

    def finish(self, status: str = "ok", error: object = None) -> None:
        pass


NULL_SPAN = _NullSpan()


class _ActiveSpanContext:
    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "TraceRecorder", span: Span):
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder.end(
            self._span,
            status="error" if exc_type is not None else "ok",
            error=exc,
        )
        return False


class _InactiveSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_INACTIVE = _InactiveSpanContext()

#: Serialises JSON-line appends across threads sharing one trace file.
_EMIT_LOCK = threading.Lock()


def _emit(root: Span) -> None:
    """Append a completed root span to the ``REPRO_TRACE`` file, if set."""
    from repro.obs import config

    path = config.trace_path()
    if not path:
        return
    line = json.dumps(root.to_dict(), sort_keys=True, default=str)
    with _EMIT_LOCK:
        with open(path, "a", encoding="utf-8") as sink:
            sink.write(line + "\n")


class TraceRecorder:
    """Thread-local span stacks plus the JSON-lines sink.

    One recorder is shared process-wide (:func:`recorder`); each thread
    records its own query's tree.  ``begin``/``end`` manage explicit
    roots (the endpoint's query span), :meth:`span` is the context
    manager for synchronous stages, and :meth:`stream_span` creates an
    *unstacked* child for lazily-consumed stages — the caller finishes
    it when the stream is exhausted (see :func:`count_rows`).
    """

    def __init__(self):
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def active(self) -> bool:
        """Whether this thread currently records a trace."""
        return bool(getattr(self._local, "stack", None))

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # ------------------------------------------------------------------ #
    def begin(self, name: str, **attributes: Any) -> Span:
        """Open a span and push it on this thread's stack."""
        span = Span(name, attributes)
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        return span

    def end(self, span: Span, status: str = "ok", error: object = None) -> None:
        """Close ``span`` (and anything left open above it); emit roots.

        When the stack empties, the completed tree is appended to the
        ``REPRO_TRACE`` JSON-lines file if that variable is set.
        """
        span.finish(status=status, error=error)
        stack = self._stack()
        while stack:
            top = stack.pop()
            top.finish()  # defensively close abandoned inner spans
            if top is span:
                break
        if not stack:
            _emit(span)

    def span(self, name: str, **attributes: Any):
        """Context manager for a synchronous stage; no-op when inactive."""
        if not self.active:
            return _INACTIVE
        return _ActiveSpanContext(self, self.begin(name, **attributes))

    def stream_span(
        self, name: str, parent: Optional[Span] = None, **attributes: Any
    ) -> Optional[Span]:
        """An unstacked child span for a lazily-consumed stage.

        Attached under ``parent`` (or the current span) immediately, but
        never pushed on the stack — the stage finishes it itself once its
        stream is exhausted, long after control has left this frame.
        Returns ``None`` when no trace is active and no parent is given.
        """
        if parent is None:
            parent = self.current()
            if parent is None:
                return None
        span = Span(name, attributes)
        parent.children.append(span)
        return span

    def attach(self, span: Span) -> bool:
        """Re-parent a pre-built span under the current span, if any."""
        parent = self.current()
        if parent is None:
            return False
        parent.children.append(span)
        return True


def count_rows(span: Span, solutions: Iterable) -> Iterator:
    """Wrap a solution stream, closing ``span`` with its row count.

    The span's duration runs from stream creation to exhaustion —
    inclusive wall time, downstream pull time included.  Early generator
    closes (a satisfied ASK or LIMIT consumer) finish the span cleanly
    with ``closed_early``; errors mark it ``error`` and propagate.
    """
    rows = 0
    try:
        for solution in solutions:
            rows += 1
            yield solution
    except GeneratorExit:
        span.annotate(rows=rows, closed_early=True)
        span.finish()
        raise
    except BaseException as error:
        span.annotate(rows=rows)
        span.finish(status="error", error=error)
        raise
    span.annotate(rows=rows)
    span.finish()


class QueryProfile:
    """The outcome of ``SparqlEndpoint.profile``: result or error + trace.

    ``result`` is ``None`` when the query failed with an endpoint-family
    error (budget, policy, truncation, worker crash), in which case
    ``error`` holds the exception; ``trace`` is always the completed root
    :class:`Span`.
    """

    __slots__ = ("result", "error", "trace")

    def __init__(self, result, error, trace: Span):
        self.result = result
        self.error = error
        self.trace = trace

    def describe(self) -> str:
        """The trace rendered as an indented tree."""
        return self.trace.describe()


#: The process-wide recorder every engine layer shares.
_RECORDER = TraceRecorder()


def recorder() -> TraceRecorder:
    """The process-wide :class:`TraceRecorder`."""
    return _RECORDER
