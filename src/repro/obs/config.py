"""One validated home for every ``REPRO_*`` environment knob.

Before this module the engine parsed its environment ad hoc —
``workers.py`` silently fell back to the default window on a malformed
``REPRO_RESULT_WINDOW``, ``distjoin.py`` did the same for
``REPRO_BROADCAST_LIMIT``, and ``kernels.py`` treated *any* non-empty
``REPRO_NO_NUMPY`` (including ``"0"``) as "disable numpy".  Silent
fallbacks turn typos into mystery performance regressions, so here a
malformed value raises :class:`~repro.errors.ConfigError` naming the
variable and the offending text.

Values are read from the environment on every call (no import-time
caching) so tests can monkeypatch ``os.environ`` freely, and worker
processes — which inherit or re-exec the environment depending on the
start method — always see their own process's settings.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigError

__all__ = [
    "DEFAULT_RESULT_WINDOW",
    "DEFAULT_BROADCAST_LIMIT",
    "env_int",
    "env_flag",
    "env_path",
    "result_window",
    "broadcast_limit",
    "numpy_disabled",
    "trace_path",
]

#: Default credit window: unacked result batches allowed per in-flight
#: task before a worker blocks (see ``shard/workers.py``).
DEFAULT_RESULT_WINDOW = 8

#: Default cap on rows broadcast to every shard for a shipped join
#: (see ``sparql/distjoin.py``).
DEFAULT_BROADCAST_LIMIT = 65536

_FLAG_TRUE = frozenset({"1", "true", "yes", "on"})
_FLAG_FALSE = frozenset({"0", "false", "no", "off", ""})


def env_int(name: str, default: int, minimum: Optional[int] = None) -> int:
    """An integer environment variable; unset or blank means ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise ConfigError(f"{name} must be an integer, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    return value


def env_flag(name: str, default: bool = False) -> bool:
    """A boolean environment variable (1/true/yes/on vs 0/false/no/off)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in _FLAG_TRUE:
        return True
    if lowered in _FLAG_FALSE:
        return False
    raise ConfigError(
        f"{name} must be a boolean flag (1/true/yes/on or 0/false/no/off), "
        f"got {raw!r}"
    )


def env_path(name: str) -> Optional[str]:
    """A path-valued environment variable; unset or blank means ``None``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    return raw.strip()


def result_window() -> int:
    """``REPRO_RESULT_WINDOW``: unacked batches per task (>= 1)."""
    return env_int("REPRO_RESULT_WINDOW", DEFAULT_RESULT_WINDOW, minimum=1)


def broadcast_limit() -> int:
    """``REPRO_BROADCAST_LIMIT``: max rows broadcast per shipped join."""
    return env_int("REPRO_BROADCAST_LIMIT", DEFAULT_BROADCAST_LIMIT, minimum=0)


def numpy_disabled() -> bool:
    """``REPRO_NO_NUMPY``: force the scalar fallback paths everywhere."""
    return env_flag("REPRO_NO_NUMPY")


def trace_path() -> Optional[str]:
    """``REPRO_TRACE``: file to append completed traces to as JSON lines."""
    return env_path("REPRO_TRACE")
