"""A triple store partitioned by subject-ID range into independent shards.

:class:`ShardedTripleStore` presents the same Term-level and ID-level API
as :class:`~repro.store.triplestore.TripleStore` while splitting the data
across ``num_shards`` plain stores that share one
:class:`~repro.store.dictionary.TermDictionary`.  The shared dictionary
gives every shard the same ID space, so solutions, plans and caches built
over one shard's IDs are valid over all of them.

Partitioning invariants (everything above relies on these):

* **Routing is total and deterministic.**  Every subject ID maps to
  exactly one shard via a bisect over the frozen range boundaries;
  a triple lives in the shard that owns its subject ID.
* **Ranges are contiguous and increasing.**  Shard 0 owns the smallest
  subject IDs, the last shard owns an open-ended top range.  Chaining
  per-shard subject runs in shard order therefore yields a globally
  sorted run — the gather side of a merge join never needs a heap.
* **Subjects are disjoint across shards.**  Distinct-subject counts and
  per-shard statistics sum exactly; only predicate/object distinct
  counts need cross-shard set unions.

Boundaries are fixed by the first non-empty :meth:`bulk_load` (the
canonical build path) or, for pure-:meth:`add` stores, as soon as the
first :data:`_SEED_MIN_SUBJECTS` distinct subjects accumulate: the
distinct subject IDs are split into near-equal chunks, and triples added
earlier are re-homed so the invariants hold from then on.  Because
dictionary IDs grow monotonically, subjects interned later fall into the
last shard's open range; :meth:`rebalance` re-splits the boundaries from
the live contents and moves only the misplaced triples, restoring
scatter balance without a rebuild.
"""

from __future__ import annotations

import warnings
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import ShardSkewWarning, StoreError
from repro.rdf.terms import IRI, Term
from repro.rdf.triple import Triple, TriplePattern
from repro.store.dictionary import TermDictionary
from repro.store.stats import PredicateStatistics, StoreStatistics
from repro.store.triplestore import TripleStore

#: Sentinel for "constant term unknown to the dictionary" in Term-level
#: pattern dispatch (mirrors TripleStore's internal convention).
_MISS = object()

#: Below this many triples in the last shard the skew check never fires —
#: tiny stores are legitimately lopsided and a warning would be noise.
_SKEW_MIN_LAST_SHARD = 64

#: Floor for the never-frozen case (add()-only stores route *everything*
#: to shard 0): higher than the frozen floor so a small add() prelude
#: before the first boundary-fixing bulk load stays quiet.
_SKEW_MIN_UNBOUNDED = 256

#: A pure-add() store seeds its range boundaries as soon as this many
#: distinct subjects have accumulated in shard 0 — enough of a sample to
#: cut near-equal ranges, early enough that the re-homing pass is cheap.
_SEED_MIN_SUBJECTS = 64


class ShardedTripleStore:
    """A set of RDF triples partitioned by subject-ID range.

    Drop-in compatible with :class:`TripleStore` for the SPARQL evaluator,
    the endpoint layer and :class:`~repro.kb.knowledge_base.KnowledgeBase`:
    every ID-level call either routes to the single shard that can hold
    the answer (subject bound) or scatters over all shards and gathers —
    summing counts, chaining ordered runs, or unioning distinct sets,
    whichever the operation's semantics require.

    Parameters
    ----------
    num_shards:
        Number of subject-range partitions (``>= 1``).
    name:
        Human-readable name; shard stores are named ``{name}/s{i}``.
    dictionary:
        Optional shared :class:`TermDictionary` (a fresh one by default).
        All shards always share one dictionary.
    triples:
        Optional initial triples, bulk-loaded shard-parallel.
    skew_threshold:
        Factor by which the last shard may outgrow the mean of its
        siblings before a :class:`~repro.errors.ShardSkewWarning` is
        emitted (once per store).  Boundaries freeze at the first bulk
        load, so subjects interned later always land in the last shard's
        open range; this is the tripwire for that pile-up until a
        ``rebalance()`` pass exists.
    """

    def __init__(
        self,
        num_shards: int = 4,
        name: str = "sharded",
        dictionary: Optional[TermDictionary] = None,
        triples: Optional[Iterable[Triple]] = None,
        skew_threshold: float = 4.0,
    ):
        if num_shards < 1:
            raise StoreError(f"num_shards must be >= 1, got {num_shards}")
        if skew_threshold <= 1.0:
            raise StoreError(f"skew_threshold must be > 1, got {skew_threshold}")
        self.name = name
        self.skew_threshold = skew_threshold
        self._skew_warned = False
        self._dictionary = dictionary if dictionary is not None else TermDictionary()
        self._shards: Tuple[TripleStore, ...] = tuple(
            TripleStore(name=f"{name}/s{index}", dictionary=self._dictionary)
            for index in range(num_shards)
        )
        # Subject-ID cut points; len == num_shards - 1 once fixed.  Until
        # the first bulk load everything routes to shard 0 (bisect over []).
        self._boundaries: List[int] = []
        self._bounded = num_shards == 1
        self._snapshot_retained = None
        # Where (and at which mutation stamp) this store was last saved or
        # opened — lets serve() skip the snapshot write when clean.
        self._snapshot_dir = None
        self._snapshot_version = -1
        # > 0 while a generation handover is in flight: the endpoint layer
        # bumps it so in-flight queries on the outgoing worker generation
        # (which serve a consistent snapshot from their own mmaps) are not
        # rejected by the evaluator's data_version freshness pin.
        self._refresh_serving = 0
        # True while the boundaries are an automatic seed from early
        # add()s rather than a deliberate freeze (see add()/bulk_load).
        self._auto_seeded = False
        if triples is not None:
            self.bulk_load(triples)

    @classmethod
    def _from_snapshot(
        cls,
        name: str,
        dictionary: TermDictionary,
        shards: Tuple[TripleStore, ...],
        boundaries: List[int],
        bounded: bool,
        skew_threshold: float = 4.0,
        skew_warned: bool = False,
        retained=None,
    ) -> "ShardedTripleStore":
        """Assemble a cold sharded store over reopened shards (persist layer)."""
        store = cls.__new__(cls)
        store.name = name
        store.skew_threshold = skew_threshold
        # The one-shot latch is restored from the manifest: a dataset that
        # warned before it was saved stays warned in every process that
        # reopens the snapshot (worker respawns, serve() restarts), so the
        # same pile-up is reported once per dataset, not once per reopen.
        store._skew_warned = skew_warned
        store._dictionary = dictionary
        store._shards = shards
        store._boundaries = boundaries
        store._bounded = bounded
        store._snapshot_retained = retained
        store._snapshot_dir = None
        store._snapshot_version = -1
        store._refresh_serving = 0
        store._auto_seeded = False
        return store

    # ------------------------------------------------------------------ #
    # Snapshot persistence
    # ------------------------------------------------------------------ #
    def save(self, directory) -> None:
        """Write the sharded store as a snapshot directory.

        Layout: ``manifest.json`` (topology + checksum), one shared
        ``dictionary.snap`` and one ``shard{i}.snap`` columns file per
        shard — see :mod:`repro.store.persist`.
        """
        from pathlib import Path

        from repro.store.persist import save_sharded_store

        save_sharded_store(self, directory)
        self._snapshot_dir = Path(directory)
        self._snapshot_version = self.data_version

    def save_delta(self, directory) -> bool:
        """Append the mutations since the last snapshot point as per-shard
        delta files next to the snapshot at ``directory``.

        Only shards that actually changed (and terms interned since) are
        written — a small mutation burst costs I/O proportional to the
        burst, not to the store.  :meth:`open` replays the chains
        transparently; :meth:`compact` folds them back into full files.
        Returns ``False`` when the snapshot already matches.  Raises
        :class:`~repro.errors.StoreError` when ``directory`` is not this
        store's own last snapshot or a journal was lost — fall back to
        :meth:`save`.
        """
        from pathlib import Path

        from repro.store.persist import save_sharded_delta

        wrote = save_sharded_delta(self, directory)
        self._snapshot_dir = Path(directory)
        self._snapshot_version = self.data_version
        return wrote

    def compact(self, directory) -> None:
        """Fold every delta chain at ``directory`` into fresh base files."""
        from pathlib import Path

        from repro.store.persist import save_sharded_store

        save_sharded_store(self, directory, compact=True)
        self._snapshot_dir = Path(directory)
        self._snapshot_version = self.data_version

    @classmethod
    def open(
        cls, directory, mmap: bool = True, verify: bool = True
    ) -> "ShardedTripleStore":
        """Reopen a snapshot directory written by :meth:`save`.

        All shards share one :class:`LazyTermDictionary` over the
        dictionary file, so the reopened store has exactly the saved ID
        space; boundaries and the bounded flag are restored from the
        manifest, making routing decisions identical to the saved store.
        """
        from pathlib import Path

        from repro.store.persist import open_sharded_store

        store = open_sharded_store(directory, mmap=mmap, verify=verify)
        store._snapshot_dir = Path(directory)
        store._snapshot_version = store.data_version
        return store

    def serve(
        self,
        directory,
        start_method: Optional[str] = None,
        pool_size: Optional[int] = None,
        verify: bool = True,
        result_window: Optional[int] = None,
        **executor_kwargs,
    ):
        """Snapshot (if dirty) and boot process shard workers over it.

        The entry point of the process-parallel evaluation path: the
        store is written to ``directory`` unless an up-to-date snapshot
        of it is already there (``directory`` matches the last
        :meth:`save`/:meth:`open` location and ``data_version`` has not
        moved since), and a
        :class:`~repro.shard.workers.ProcessShardExecutor` is started
        with one worker process per shard (``pool_size`` caps the worker
        count; workers then serve several shards each).  Each worker
        mmap-opens its shard's columns and the shared dictionary from the
        snapshot — nothing is pickled, nothing re-interned.

        ``result_window`` bounds how many result batches each in-flight
        task may have unacknowledged in the parent (credit-based flow
        control; defaults to the ``REPRO_RESULT_WINDOW`` environment
        variable, falling back to
        :data:`~repro.shard.workers.DEFAULT_RESULT_WINDOW`).  Smaller
        windows cap parent memory under skewed waves; larger windows
        keep fast workers busier between acknowledgements.

        The returned executor should be closed (it is a context manager);
        wiring it into evaluation is
        ``ShardedQueryEvaluator(store, backend="process", executor=...)``
        or, one level up, ``SimulatedSparqlEndpoint(store,
        backend="process", ...)``.
        """
        from pathlib import Path

        from repro.shard.workers import ProcessShardExecutor
        from repro.store.persist import MANIFEST_NAME

        directory = Path(directory)
        clean = (
            self._snapshot_dir == directory
            and self._snapshot_version == self.data_version
            and (directory / MANIFEST_NAME).exists()
        )
        if not clean:
            self.save(directory)
        return ProcessShardExecutor(
            directory,
            start_method=start_method,
            pool_size=pool_size,
            verify=verify,
            result_window=result_window,
            **executor_kwargs,
        )

    # ------------------------------------------------------------------ #
    # Skew monitoring
    # ------------------------------------------------------------------ #
    def _check_skew(self) -> None:
        """Warn (once per freeze regime) when one shard has piled up.

        Two pathologies, one tripwire:

        * **Frozen boundaries** — subjects interned after the freeze
          route to the last shard by construction; when it holds more
          than ``skew_threshold`` times the mean of its siblings (and at
          least ``_SKEW_MIN_LAST_SHARD`` triples), scatter waves lose
          their balance and a rebalance is due.
        * **Never frozen** — a multi-shard store populated only through
          :meth:`add` routes everything to shard 0 (bisect over empty
          boundaries) until :data:`_SEED_MIN_SUBJECTS` distinct subjects
          seed the boundaries; a store that reaches
          ``_SKEW_MIN_UNBOUNDED`` triples while still unbounded has too
          few distinct subjects to split, and no boundary cut can help.
        """
        if self._skew_warned or len(self._shards) < 2:
            return
        if not self._bounded:
            pending = len(self._shards[0])
            if pending >= _SKEW_MIN_UNBOUNDED:
                self._skew_warned = True
                warnings.warn(
                    f"Sharded store {self.name!r}: {pending} triples added "
                    f"over fewer than {_SEED_MIN_SUBJECTS} distinct "
                    "subjects, so boundaries cannot be seeded and every "
                    "triple routes to shard 0 — scatter parallelism is "
                    "zero. Subject-range sharding needs more distinct "
                    "subjects; use fewer shards for this dataset.",
                    ShardSkewWarning,
                    stacklevel=3,
                )
            return
        last = len(self._shards[-1])
        if last < _SKEW_MIN_LAST_SHARD:
            return
        rest = len(self) - last
        mean_rest = rest / (len(self._shards) - 1)
        if last > self.skew_threshold * max(mean_rest, 1.0):
            self._skew_warned = True
            warnings.warn(
                f"Sharded store {self.name!r}: last shard holds {last} triples "
                f"vs a mean of {mean_rest:.1f} across the other "
                f"{len(self._shards) - 1} shards (threshold "
                f"{self.skew_threshold:g}x). Subjects interned after the "
                "boundary freeze always route to the last shard's open "
                "range; rebuild or rebalance the store to restore scatter "
                "balance.",
                ShardSkewWarning,
                stacklevel=3,
            )

    @classmethod
    def from_store(
        cls,
        store: TripleStore,
        num_shards: int,
        name: Optional[str] = None,
        parallel: Optional[bool] = None,
    ) -> "ShardedTripleStore":
        """Partition an existing store's triples into a fresh sharded store.

        The shards get their own dictionary (IDs are re-interned in
        iteration order) so the source store stays fully independent.
        """
        sharded = cls(num_shards=num_shards, name=name or f"{store.name}-sharded")
        sharded.bulk_load(iter(store), parallel=parallel)
        return sharded

    @classmethod
    def from_id_columns(
        cls,
        dictionary: TermDictionary,
        subjects,
        predicates,
        objects,
        num_shards: int = 4,
        name: str = "sharded",
        processes: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> "ShardedTripleStore":
        """Build a sharded store straight from parallel dictionary-ID columns.

        The sharded face of :meth:`TripleStore.from_id_columns`: boundaries
        are cut from the batch's distinct subject IDs exactly like
        :meth:`bulk_load` would, the columns partition per shard with one
        vectorised route pass, and every shard assembles as frozen CSR
        columns — no per-fact :class:`Triple` objects anywhere.  With
        ``processes > 1`` the per-shard permutation sorts run in worker
        processes (columns ship as flat int64 bytes); otherwise they run
        inline.  ``start_method`` picks the multiprocessing context, like
        :meth:`serve`.
        """
        from repro.store.triplestore import _numpy, csr_permutation_sections

        store = cls(num_shards=num_shards, name=name, dictionary=dictionary)
        np = _numpy()
        if np is not None:
            from repro.store.triplestore import _ids_array_np

            s = _ids_array_np(np, subjects)
            p = _ids_array_np(np, predicates)
            o = _ids_array_np(np, objects)
            distinct = np.unique(s)
            if distinct.size and num_shards > 1:
                store._boundaries = cls._cut_points(distinct, num_shards)
            store._bounded = True
            if num_shards == 1:
                partitions = [(s, p, o)]
            else:
                cuts = np.asarray(store._boundaries, dtype=np.int64)
                # side="right" == bisect_right: boundary IDs stay in the
                # lower shard, matching shard_index_for_subject exactly.
                routed = np.searchsorted(cuts, s, side="right")
                partitions = []
                for index in range(num_shards):
                    mask = routed == index
                    partitions.append((s[mask], p[mask], o[mask]))
        else:
            rows = list(zip(subjects, predicates, objects))
            distinct_list = sorted({row[0] for row in rows})
            if distinct_list and num_shards > 1:
                store._boundaries = cls._cut_points(distinct_list, num_shards)
            store._bounded = True
            boundaries = store._boundaries
            grouped: List[List[Tuple[int, int, int]]] = [[] for _ in range(num_shards)]
            for row in rows:
                grouped[bisect_right(boundaries, row[0])].append(row)
            partitions = [
                (
                    [row[0] for row in part],
                    [row[1] for row in part],
                    [row[2] for row in part],
                )
                for part in grouped
            ]

        worker_count = min(processes or 1, sum(1 for part in partitions if len(part[0])))
        if worker_count > 1 and np is not None:
            from repro.shard.workers import map_in_processes

            payloads = [
                (
                    part[0].tobytes(),
                    part[1].tobytes(),
                    part[2].tobytes(),
                )
                for part in partitions
            ]
            results = map_in_processes(
                csr_permutation_sections,
                payloads,
                processes=worker_count,
                start_method=start_method,
            )
            shards = tuple(
                cls._shard_from_sections(f"{name}/s{index}", dictionary, sections)
                for index, (_, sections) in enumerate(results)
            )
        else:
            shards = tuple(
                TripleStore.from_id_columns(
                    f"{name}/s{index}", dictionary, part[0], part[1], part[2]
                )
                for index, part in enumerate(partitions)
            )
        store._shards = shards
        return store

    @staticmethod
    def _shard_from_sections(
        name: str, dictionary: TermDictionary, sections
    ) -> TripleStore:
        """One shard store over the 15 CSR column payloads a worker built."""
        from repro.store.index import FrozenIdIndex

        indexes = [
            FrozenIdIndex(*[memoryview(payload).cast("q") for payload in columns])
            for columns in sections
        ]
        return TripleStore._from_snapshot(name, dictionary, *indexes)

    # ------------------------------------------------------------------ #
    # Shard topology
    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> Tuple[TripleStore, ...]:
        """The underlying per-range stores, in subject-ID order."""
        return self._shards

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def boundaries(self) -> Tuple[int, ...]:
        """The frozen subject-ID cut points (empty until the first bulk load)."""
        return tuple(self._boundaries)

    def shard_index_for_subject(self, subject_id: int) -> int:
        """The index of the shard owning ``subject_id`` — one bisect."""
        return bisect_right(self._boundaries, subject_id)

    def shard_for_subject(self, subject_id: int) -> TripleStore:
        """The shard store owning ``subject_id``."""
        return self._shards[bisect_right(self._boundaries, subject_id)]

    def shard_sizes(self) -> List[int]:
        """Triples per shard, in shard order (balance diagnostic)."""
        return [len(shard) for shard in self._shards]

    @staticmethod
    def _cut_points(distinct, count: int) -> List[int]:
        """Range cut points splitting sorted distinct subject IDs into
        ``count`` near-equal chunks.  Clamped: with fewer distinct
        subjects than shards the trailing cuts repeat the last ID, leaving
        the surplus shards empty (routing stays total either way)."""
        chunk = len(distinct) / count
        last = len(distinct) - 1
        return [
            int(distinct[min(last, int(round(index * chunk)))])
            for index in range(1, count)
        ]

    def _fix_boundaries(self, subject_ids: Iterable[int]) -> None:
        """Freeze range boundaries from the first batch's subject IDs.

        Splits the sorted distinct subject IDs into ``num_shards``
        near-equal chunks; any triples routed to shard 0 before the fix
        (via :meth:`add`) are re-homed so the range invariants hold.
        """
        distinct = sorted(set(subject_ids))
        shard0 = self._shards[0]
        if shard0:
            distinct = sorted(set(distinct).union(
                sid for sid, _, _ in shard0.match_ids()
            ))
        count = len(self._shards)
        if distinct and count > 1:
            self._boundaries = self._cut_points(distinct, count)
        self._bounded = True
        self._auto_seeded = False
        # New regime: the one-shot warning is re-armed for the frozen-era
        # pile-up check (an unbounded-era warning may already have fired).
        self._skew_warned = False
        if shard0:
            id_for = self._dictionary.id_for
            misplaced = [
                triple
                for triple in shard0
                if bisect_right(self._boundaries, id_for(triple.subject)) != 0
            ]
            for triple in misplaced:
                shard0.remove(triple)
            for triple in misplaced:
                self.add(triple)

    def rebalance(self) -> Dict[str, object]:
        """Re-split the range boundaries from the live per-shard contents.

        Cuts fresh near-equal boundaries over the union of all current
        distinct subject IDs (subjects are disjoint across shards, so the
        union is a concatenation) and moves only the triples whose
        subject now routes elsewhere — shards that already sit inside
        their new range are not rewritten.  This is the repair for the
        frozen-boundary pile-up: subjects interned after the first freeze
        all landed in the last shard's open range, and a rebalance under
        a quiesced or handover-protected store restores scatter balance
        without a rebuild.

        Returns ``{"moved", "boundaries", "shard_sizes"}``.  The one-shot
        skew warning re-arms, and an unbounded store becomes bounded (the
        live subjects seed its first boundaries).
        """
        shards = self._shards
        if len(shards) > 1:
            distinct = sorted(
                {sid for shard in shards for sid in shard.position_ids("s")}
            )
            new_boundaries = (
                self._cut_points(distinct, len(shards)) if distinct else []
            )
            moved = 0
            transfers: List[Dict[Tuple[int, int, int], Triple]] = [
                {} for _ in shards
            ]
            for index, shard in enumerate(shards):
                outgoing = [
                    (ids, triple)
                    for ids, triple in shard.id_triples.items()
                    if bisect_right(new_boundaries, ids[0]) != index
                ]
                for _, triple in outgoing:
                    shard.remove(triple)
                for ids, triple in outgoing:
                    transfers[bisect_right(new_boundaries, ids[0])][ids] = triple
                moved += len(outgoing)
            self._boundaries = new_boundaries
            for target, pending in enumerate(transfers):
                if pending:
                    shards[target].bulk_load_pending(pending)
        else:
            moved = 0
        self._bounded = True
        self._auto_seeded = False
        self._skew_warned = False
        return {
            "moved": moved,
            "boundaries": self.boundaries,
            "shard_sizes": self.shard_sizes(),
        }

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        """Add a triple to the shard owning its subject ID.

        A never-frozen multi-shard store routes every add to shard 0
        (bisect over empty boundaries); once :data:`_SEED_MIN_SUBJECTS`
        distinct subjects have accumulated there, boundaries are seeded
        from them and the early triples re-homed, so pure-``add()``
        stores actually shard instead of piling up forever.
        """
        if not isinstance(triple, Triple):
            raise StoreError(f"Expected a Triple, got {type(triple).__name__}")
        sid = self._dictionary.encode(triple.subject)
        index = self.shard_index_for_subject(sid)
        changed = self._shards[index].add(triple)
        if changed and not self._bounded:
            if (
                len(self._shards) > 1
                and self._shards[0].count_distinct_ids("s") >= _SEED_MIN_SUBJECTS
            ):
                self._fix_boundaries(())
                # Seeded, not deliberately frozen: the next bulk load (or
                # an explicit rebalance) re-splits over everything.
                self._auto_seeded = True
            else:
                self._check_skew()
        elif changed and index == len(self._shards) - 1:
            self._check_skew()
        return changed

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples one by one; returns the number inserted."""
        inserted = 0
        for triple in triples:
            if self.add(triple):
                inserted += 1
        return inserted

    def bulk_load(
        self, triples: Iterable[Triple], parallel: Optional[bool] = None
    ) -> int:
        """Columnar bulk insert, building the shards in parallel.

        Terms are interned once through the shared dictionary (serially —
        interning mutates the dictionary), the batch is partitioned by
        routed subject ID, and each shard then runs its own
        :meth:`TripleStore.bulk_load` — the per-range
        ``bulk_extend_grouped`` sort-once path — on an independent
        partition.  With ``parallel`` (default when there is more than one
        non-empty partition) the per-shard loads run on a thread pool; the
        numpy column sort releases the GIL, so shard builds genuinely
        overlap.  Returns the number of new triples.
        """
        intern = self._dictionary.ids_map
        staged: List[Tuple[Tuple[int, int, int], Triple]] = []
        for triple in triples:
            if not isinstance(triple, Triple):
                raise StoreError(f"Expected a Triple, got {type(triple).__name__}")
            ids = (
                intern[triple.subject],
                intern[triple.predicate],
                intern[triple.object],
            )
            staged.append((ids, triple))
        if not staged:
            return 0
        boundaries_were_frozen = self._bounded
        if not self._bounded:
            self._fix_boundaries(ids[0] for ids, _ in staged)

        # Partition into per-shard pre-staged batches, deduplicating
        # against the owning shard (subjects are disjoint, so a duplicate
        # can only collide with its own shard's content or partition).
        # The shard's flat ID-triple map is fetched lazily on the first
        # triple routed there: on a cold-opened snapshot, id_triples
        # materialises the shard's Triple maps, and shards the batch
        # never touches must stay frozen views.
        shards = self._shards
        partitions: List[Dict[Tuple[int, int, int], Triple]] = [{} for _ in shards]
        existing: List[Optional[Dict[Tuple[int, int, int], Triple]]] = [
            None for _ in shards
        ]
        boundaries = self._boundaries
        for ids, triple in staged:
            index = bisect_right(boundaries, ids[0])
            shard_existing = existing[index]
            if shard_existing is None:
                shard_existing = existing[index] = shards[index].id_triples
            partition = partitions[index]
            if ids in shard_existing or ids in partition:
                continue
            partition[ids] = triple

        busy = sum(1 for partition in partitions if partition)
        if parallel is None:
            parallel = busy > 1
        if parallel and busy > 1:
            # Every term is interned and deduplicated above, so the shard
            # loads only *read* the shared dictionary and mutate their own
            # indexes — no cross-thread writes to shared state, and the
            # numpy column sort releases the GIL.
            with ThreadPoolExecutor(max_workers=busy) as executor:
                counts = list(
                    executor.map(
                        lambda pair: pair[0].bulk_load_pending(pair[1]),
                        zip(shards, partitions),
                    )
                )
            inserted = sum(counts)
        else:
            inserted = sum(
                shard.bulk_load_pending(partition)
                for shard, partition in zip(shards, partitions)
                if partition
            )
        if self._auto_seeded and inserted:
            # The boundaries were an automatic seed from the first few
            # add()s, not a deliberate freeze: the first real bulk load
            # re-splits over everything, preserving the historical
            # "prelude adds, then balancing bulk load" behaviour.
            self.rebalance()
        elif boundaries_were_frozen and inserted:
            # Only loads *after* the freeze can pile into the last shard's
            # open range; the balancing first load never warns.
            self._check_skew()
        return inserted

    def remove(self, triple: Triple) -> bool:
        """Remove a triple from its owning shard."""
        sid = self._dictionary.id_for(triple.subject)
        if sid is None:
            return False
        return self.shard_for_subject(sid).remove(triple)

    def clear(self) -> None:
        """Remove every triple; boundaries unfreeze so the next bulk load
        rebalances.  The shared dictionary (and thus all IDs) is kept."""
        for shard in self._shards:
            shard.clear()
        self._boundaries = []
        self._bounded = len(self._shards) == 1
        self._auto_seeded = False
        self._skew_warned = False

    # ------------------------------------------------------------------ #
    # ID-level API (used by the SPARQL layer)
    # ------------------------------------------------------------------ #
    @property
    def dictionary(self) -> TermDictionary:
        """The shared term dictionary."""
        return self._dictionary

    @property
    def data_version(self) -> int:
        """Monotonic mutation stamp: the sum of the shard stamps."""
        return sum(shard.data_version for shard in self._shards)

    def term_id(self, term: Term) -> Optional[int]:
        """The dictionary ID of ``term``; ``None`` if it never occurred."""
        return self._dictionary.id_for(term)

    def term_for_id(self, tid: int) -> Term:
        """The term interned under ``tid``."""
        return self._dictionary.decode(tid)

    def contains_ids(self, s: int, p: int, o: int) -> bool:
        """Membership test in ID space — routed to one shard."""
        return self.shard_for_subject(s).contains_ids(s, p, o)

    def match_ids(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield matching ID triples, routing by subject when bound.

        With an unbound subject the shards are chained in range order, so
        shapes whose iteration order is a sorted subject run on a single
        store — ``(?, p, o)`` most importantly — stay globally sorted
        across shards, which the merge-join gather relies on.
        """
        if subject is not None:
            return self.shard_for_subject(subject).match_ids(
                subject, predicate, object
            )
        return self._chain_match_ids(predicate, object)

    def _chain_match_ids(
        self, predicate: Optional[int], object: Optional[int]
    ) -> Iterator[Tuple[int, int, int]]:
        for shard in self._shards:
            yield from shard.match_ids(None, predicate, object)

    def sorted_run_ids(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ):
        """The globally sorted ID run of a two-constant pattern.

        Subject-bound shapes live entirely in one shard; the subject-run
        shape ``(?, p, o)`` concatenates the per-shard sorted runs, which
        is already globally sorted because shard subject ranges are
        contiguous and increasing.  Returned lazily so merge joins that
        short-circuit never touch the trailing shards.
        """
        if subject is not None:
            return self.shard_for_subject(subject).sorted_run_ids(
                subject, predicate, object
            )
        if predicate is not None and object is not None:
            return self._chain_subject_runs(predicate, object)
        raise StoreError("sorted_run_ids requires exactly two constant positions")

    def _chain_subject_runs(self, predicate: int, object: int) -> Iterator[int]:
        for shard in self._shards:
            yield from shard.sorted_run_ids(None, predicate, object)

    def count_ids(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ) -> int:
        """Count matching triples: routed when subject-bound, summed otherwise.

        Sums are exact because the shards partition the triple set.
        """
        if subject is not None:
            return self.shard_for_subject(subject).count_ids(
                subject, predicate, object
            )
        return sum(
            shard.count_ids(None, predicate, object) for shard in self._shards
        )

    def count_distinct_ids(
        self,
        position: str,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ) -> int:
        """Distinct IDs in one position of the matching triples.

        Subject-bound patterns route to one shard.  Distinct *subjects*
        sum across shards (subjects are disjoint by partitioning);
        distinct predicates/objects may repeat across shards, so those
        shapes union the per-shard ID streams into one set.
        """
        if subject is not None:
            return self.shard_for_subject(subject).count_distinct_ids(
                position, subject, predicate, object
            )
        if position == "s" or len(self._shards) == 1:
            return sum(
                shard.count_distinct_ids(position, None, predicate, object)
                for shard in self._shards
            )
        distinct: Set[int] = set()
        for shard in self._shards:
            distinct.update(shard.position_ids(position, None, predicate, object))
        return len(distinct)

    def position_ids(
        self,
        position: str,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ) -> Iterator[int]:
        """IDs in one position of the matching triples (may repeat)."""
        if subject is not None:
            return self.shard_for_subject(subject).position_ids(
                position, subject, predicate, object
            )
        return self._chain_position_ids(position, predicate, object)

    def _chain_position_ids(
        self, position: str, predicate: Optional[int], object: Optional[int]
    ) -> Iterator[int]:
        for shard in self._shards:
            yield from shard.position_ids(position, None, predicate, object)

    # ------------------------------------------------------------------ #
    # Lookup (Term-level public API)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, Triple):
            return False
        sid = self._dictionary.id_for(triple.subject)
        if sid is None:
            return False
        return triple in self.shard_for_subject(sid)

    def __iter__(self) -> Iterator[Triple]:
        for shard in self._shards:
            yield from shard

    def __repr__(self) -> str:
        return (
            f"ShardedTripleStore(name={self.name!r}, shards={len(self._shards)}, "
            f"size={len(self)})"
        )

    def _resolve(self, term: Optional[Term]):
        if term is None:
            return None
        tid = self._dictionary.id_for(term)
        return tid if tid is not None else _MISS

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the pattern, routing by subject when bound."""
        s = self._resolve(subject)
        p = self._resolve(predicate)
        o = self._resolve(object)
        if s is _MISS or p is _MISS or o is _MISS:
            return iter(())
        if s is not None:
            return self._shards[self.shard_index_for_subject(s)].match(
                subject, predicate, object
            )
        return self._chain_match(predicate, object)

    def _chain_match(
        self, predicate: Optional[IRI], object: Optional[Term]
    ) -> Iterator[Triple]:
        for shard in self._shards:
            yield from shard.match(None, predicate, object)

    def match_pattern(self, pattern: TriplePattern) -> Iterator[Triple]:
        """:meth:`match` taking a :class:`~repro.rdf.triple.TriplePattern`."""
        return self.match(pattern.subject, pattern.predicate, pattern.object)

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Term] = None,
    ) -> int:
        """Count matching triples without materialising any."""
        s = self._resolve(subject)
        p = self._resolve(predicate)
        o = self._resolve(object)
        if s is _MISS or p is _MISS or o is _MISS:
            return 0
        return self.count_ids(s, p, o)

    # ------------------------------------------------------------------ #
    # Vocabulary access
    # ------------------------------------------------------------------ #
    def predicates(self) -> List[IRI]:
        """All distinct predicates, sorted by IRI for determinism."""
        distinct: Set[int] = set()
        for shard in self._shards:
            distinct.update(shard.position_ids("p"))
        decode = self._dictionary.decode
        return sorted(
            (decode(pid) for pid in distinct),  # type: ignore[misc]
            key=lambda p: p.value,
        )

    def subjects(self, predicate: Optional[IRI] = None) -> Iterator[Term]:
        """Distinct subjects (disjoint across shards, so a plain chain)."""
        for shard in self._shards:
            yield from shard.subjects(predicate)

    def objects(self, predicate: Optional[IRI] = None) -> Iterator[Term]:
        """Distinct objects, deduplicated across shards."""
        seen: Set[Term] = set()
        for shard in self._shards:
            for term in shard.objects(predicate):
                if term not in seen:
                    seen.add(term)
                    yield term

    def objects_of(self, subject: Term, predicate: IRI) -> List[Term]:
        """All objects ``o`` with ``(subject, predicate, o)`` — one shard."""
        sid = self._dictionary.id_for(subject)
        if sid is None:
            return []
        return self.shard_for_subject(sid).objects_of(subject, predicate)

    def subjects_of(self, predicate: IRI, object: Term) -> List[Term]:
        """All subjects of ``(?, predicate, object)`` across shards."""
        result: List[Term] = []
        for shard in self._shards:
            result.extend(shard.subjects_of(predicate, object))
        return result

    def predicates_of(self, subject: Term) -> List[IRI]:
        """Distinct predicates appearing with ``subject`` — one shard."""
        sid = self._dictionary.id_for(subject)
        if sid is None:
            return []
        return self.shard_for_subject(sid).predicates_of(subject)

    def predicates_between(self, subject: Term, object: Term) -> List[IRI]:
        """Distinct predicates linking ``subject`` to ``object`` — one shard."""
        sid = self._dictionary.id_for(subject)
        if sid is None:
            return []
        return self.shard_for_subject(sid).predicates_between(subject, object)

    def has_subject(self, subject: Term) -> bool:
        """Whether any fact has ``subject`` in subject position."""
        sid = self._dictionary.id_for(subject)
        return sid is not None and self.shard_for_subject(sid).has_subject(subject)

    def entities(self) -> Set[Term]:
        """All IRIs/blank nodes in subject or object position, across shards."""
        entities: Set[Term] = set()
        for shard in self._shards:
            entities.update(shard.entities())
        return entities

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def predicate_statistics(self, predicate: IRI) -> PredicateStatistics:
        """Statistics for one predicate, merged across shards."""
        pid = self._dictionary.id_for(predicate)
        if pid is None:
            return PredicateStatistics(predicate=predicate)
        return self._merge_predicate_statistics(predicate, pid)

    def _merge_predicate_statistics(
        self, predicate: IRI, pid: int
    ) -> PredicateStatistics:
        """Merge per-shard counts: facts and distinct subjects sum exactly
        (triples/subjects are partitioned); distinct objects and the
        literal-object tally take one pass over the predicate's facts."""
        is_literal = self._dictionary.is_literal_id
        distinct_objects: Set[int] = set()
        literal_objects = 0
        for shard in self._shards:
            # One pass over the predicate's facts: the literal tally is
            # per *fact* (a literal object shared by k subjects counts k
            # times), while the object set dedupes across shards.
            for _, _, oid in shard.match_ids(None, pid, None):
                distinct_objects.add(oid)
                literal_objects += is_literal(oid)
        return PredicateStatistics(
            predicate=predicate,
            fact_count=self.count_ids(None, pid, None),
            distinct_subjects=sum(
                shard.count_distinct_ids("s", None, pid, None)
                for shard in self._shards
            ),
            distinct_objects=len(distinct_objects),
            literal_object_count=literal_objects,
        )

    def statistics(self) -> StoreStatistics:
        """A full statistics snapshot, merged across shards."""
        predicate_ids: Set[int] = set()
        object_ids: Set[int] = set()
        for shard in self._shards:
            predicate_ids.update(shard.position_ids("p"))
            object_ids.update(shard.position_ids("o"))
        stats = StoreStatistics(
            triple_count=len(self),
            predicate_count=len(predicate_ids),
            subject_count=sum(
                shard.count_distinct_ids("s") for shard in self._shards
            ),
            object_count=len(object_ids),
        )
        decode = self._dictionary.decode
        predicate_stats: Dict[IRI, PredicateStatistics] = {}
        for pid in predicate_ids:
            predicate = decode(pid)
            predicate_stats[predicate] = self._merge_predicate_statistics(  # type: ignore[index]
                predicate, pid  # type: ignore[arg-type]
            )
        stats.predicates = predicate_stats
        return stats

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "ShardedTripleStore":
        """A copy with the same shard count (terms shared, indexes rebuilt)."""
        return ShardedTripleStore(
            num_shards=len(self._shards),
            name=name or f"{self.name}-copy",
            triples=iter(self),
            skew_threshold=self.skew_threshold,
        )
