"""Process-parallel shard workers over per-shard snapshot files.

The thread-pool query waves of :mod:`repro.endpoint.simulation` hit the
GIL ceiling: latency sleeps overlap, but the CPU-bound per-shard join
pipelines serialise on one core.  This module lifts evaluation out of a
single interpreter.  A :class:`ProcessShardExecutor` spawns one worker
process per shard (a smaller ``pool_size`` makes workers serve several
shards each); every worker **mmap-opens** its shard's snapshot columns
plus the shared lazy dictionary straight from the snapshot directory —
no store is pickled across the process boundary and nothing is
re-interned, so worker-side dictionary IDs are byte-for-byte the
parent's and binding batches can travel as plain integers.

Protocol (one task queue and one result queue per worker, plus a control
queue):

* parent → worker: ``("eval", task_id, shard_index, work, initial,
  fold, project, distinct, trace_ts)`` — evaluate ``work`` (a pickled
  :class:`~repro.sparql.ast.GroupGraphPattern` or
  :class:`~repro.sparql.distjoin.ShipPlan`) against the shard's local
  evaluator.  With a ``fold`` spec the worker reduces its stream to one
  partial aggregate message; otherwise it streams solution batches,
  optionally restricted to the ``project`` variables (and locally
  deduplicated when ``distinct``).  ``("ping", task_id)`` — health probe;
  ``("stall", task_id, seconds)`` — hold the worker busy (fault-injection
  and cancellation tests); ``("stop",)`` — exit.
* parent → worker (control queue): ``("cancel", task_id)`` aborts an
  in-flight task between batches; ``("ack", task_id, n)`` grants ``n``
  result-window credits.  **Credit-based flow control**: each eval task
  starts with ``result_window`` credits, every ``rows`` batch costs one,
  and a worker out of credits blocks (polling the control queue) until
  the parent acks a consumed batch or cancels the task — so a trailing
  shard can buffer at most ``result_window`` batches in the parent, and
  ASK/LIMIT cancellation frees its credits immediately.  The default
  window comes from the ``REPRO_RESULT_WINDOW`` environment variable.
* worker → parent: ``(task_id, "rows", batch)`` (a batch is a list of
  serialized bindings: tuples of ``(variable_name, id_or_term)`` pairs),
  ``(task_id, "agg", partial)`` (one fold partial, not terminal),
  ``(task_id, "done", row_count, cancelled, trace)``, ``(task_id,
  "error", type_name, message, traceback, trace)``, ``(task_id, "pong",
  info)``.

**Tracing piggyback**: when the parent's query is being traced
(``endpoint.profile`` / ``REPRO_TRACE``), ``trace_ts`` carries the
dispatch ``time.monotonic()`` and the worker measures its own
``worker:exec`` span — queue wait (monotonic clocks are comparable
across processes on Linux), shard, pid, rows — which rides back as the
``trace`` payload of the terminal ``done``/``error`` message and is
re-parented into the caller's span tree.  Untraced queries pay one
``is None`` check; the payload slot stays ``None``.

Crash handling: a per-worker collector thread in the parent routes result
messages to per-task buffers and watches the worker process.  When a
worker dies mid-task (crash, OOM kill, SIGKILL) every in-flight task on
it fails with :class:`~repro.errors.WorkerCrashError` — an
:class:`~repro.errors.EndpointError`, so the endpoint simulation captures
it per query and refunds the budget slot — and the executor respawns the
worker (fresh process, fresh queues) so the next wave runs at full
strength.

Start methods: the executor accepts ``start_method="fork" | "spawn" |
"forkserver"`` (default: the platform's multiprocessing default).  All
task payloads are picklable by construction — query ASTs are trees of
frozen dataclasses over :class:`~repro.rdf.terms.Term` and
:class:`~repro.sparql.bindings.Variable`, which define ``__reduce__`` —
and respawned workers always get fresh queues, so the executor is safe
under every start method.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
import traceback
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import repro.errors as _errors
from repro.errors import ReproError, StoreError, WorkerCrashError
from repro.obs import config as _config
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, recorder
from repro.sparql.bindings import IdBinding, Variable

#: Rows per result batch: large enough to amortise one queue round-trip
#: over many solutions, small enough to keep cancellation responsive.
DEFAULT_BATCH_ROWS = 256

#: Result-window credits per eval task: how many ``rows`` batches a worker
#: may have outstanding (sent but not yet consumed by the parent) before
#: it blocks awaiting an ack.  Bounds parent-side buffering per task at
#: ``result_window * batch_rows`` rows.
DEFAULT_RESULT_WINDOW = _config.DEFAULT_RESULT_WINDOW


def _default_result_window() -> int:
    """The configured result window (``REPRO_RESULT_WINDOW`` override)."""
    return _config.result_window()

#: How often collector threads wake to check worker liveness (seconds).
_POLL_INTERVAL = 0.05

#: Task ID used by workers for task-independent fatal reports.
_FATAL_ID = -1

#: Worker-side cache of unpickled group ASTs, keyed by payload bytes —
#: wave workloads re-issue the same query shapes, and the local plan
#: cache already hits on structurally equal groups.
_GROUP_CACHE_LIMIT = 512

#: Consecutive boot failures (a worker that reports a fatal error while
#: opening its snapshot and dies) after which a pool slot stops being
#: respawned.  Deterministic boot failures — a corrupt shard file, an
#: unreadable directory — would otherwise fork doomed processes forever.
_MAX_BOOT_FAILURES = 3

#: Terminal result-message kinds (the task is finished after them).
_TERMINAL = ("done", "error", "pong")


# --------------------------------------------------------------------- #
# Binding serialisation
# --------------------------------------------------------------------- #
def encode_binding(binding: IdBinding) -> Tuple[Tuple[str, object], ...]:
    """Serialize an :class:`IdBinding` for the worker protocol.

    Values are dictionary IDs (plain ints — valid in every process
    because all workers open the same dictionary file) or, for constants
    unknown to the dictionary (VALUES rows), the Term itself.
    """
    return tuple((var.name, value) for var, value in binding.items())


def decode_binding(
    payload: Sequence[Tuple[str, object]], memo: Dict[str, Variable]
) -> IdBinding:
    """Rebuild an :class:`IdBinding`; ``memo`` shares Variable instances."""
    data = {}
    for name, value in payload:
        var = memo.get(name)
        if var is None:
            var = memo[name] = Variable(name)
        data[var] = value
    return IdBinding(data)


# --------------------------------------------------------------------- #
# Process-parallel batch helper (shard builds)
# --------------------------------------------------------------------- #
def map_in_processes(
    function,
    payloads,
    processes: int,
    start_method: Optional[str] = None,
):
    """``[function(*payload) for payload in payloads]`` on a process pool.

    The build-time sibling of :class:`ProcessShardExecutor`: the sharded
    store's :meth:`~repro.shard.sharded_store.ShardedTripleStore.from_id_columns`
    runs the per-shard partition sorts through this so shard CSR builds
    overlap on multi-core hosts.  ``function`` must be a module-level
    callable and payloads tuples of picklable arguments (flat column
    bytes, in the shard-build case).  Falls back to an inline loop when
    only one process is requested.
    """
    items = list(payloads)
    processes = min(processes, len(items))
    if processes <= 1:
        return [function(*payload) for payload in items]
    ctx = multiprocessing.get_context(start_method)
    with ctx.Pool(processes=processes) as pool:
        return pool.starmap(function, items)


# --------------------------------------------------------------------- #
# Worker process main
# --------------------------------------------------------------------- #
def _apply_control(message, cancelled: set, acks: Dict[int, int]) -> None:
    if message[0] == "cancel":
        cancelled.add(message[1])
    else:  # ("ack", task_id, n)
        task_id = message[1]
        acks[task_id] = acks.get(task_id, 0) + message[2]


def _drain_control(control_queue, cancelled: set, acks: Dict[int, int]) -> None:
    while True:
        try:
            message = control_queue.get_nowait()
        except queue.Empty:
            return
        _apply_control(message, cancelled, acks)


def _await_credit(
    control_queue, cancelled: set, acks: Dict[int, int], task_id: int
) -> int:
    """Block until the parent grants credits for ``task_id`` (or cancels).

    Returns the granted credit count, 0 when the task was cancelled while
    waiting — cancellation frees a starved task immediately instead of
    leaving the worker parked on a window the consumer will never drain.
    """
    while True:
        if task_id in cancelled:
            return 0
        granted = acks.pop(task_id, 0)
        if granted:
            return granted
        try:
            message = control_queue.get(timeout=_POLL_INTERVAL)
        except queue.Empty:
            continue
        _apply_control(message, cancelled, acks)
        _drain_control(control_queue, cancelled, acks)


def _restrict_solutions(
    solutions, names: Tuple[str, ...], distinct: bool, memo: Dict[str, Variable]
):
    """Worker-side projection pushdown: keep only the projected variables.

    With ``distinct`` the worker deduplicates the restricted rows locally
    before they hit the wire — the parent still deduplicates globally, so
    this only shrinks the transfer (restriction makes parent projection a
    bijection on these rows, hence local dedup never changes the result).
    """
    variables = []
    for name in names:
        variable = memo.get(name)
        if variable is None:
            variable = memo[name] = Variable(name)
        variables.append(variable)
    seen = set() if distinct else None
    for solution in solutions:
        data = {}
        for variable in variables:
            value = solution.get(variable)
            if value is not None:
                data[variable] = value
        row = IdBinding(data)
        if seen is not None:
            if row in seen:
                continue
            seen.add(row)
        yield row


def _worker_diagnostics(worker_index, stores, dictionary, tasks_served) -> dict:
    """The payload of a ``pong`` reply: liveness plus the invariants the
    no-re-intern property tests assert (lazy dictionary never promoted,
    shard indexes never thawed copy-on-write)."""
    return {
        "pid": os.getpid(),
        "worker": worker_index,
        "shards": sorted(stores),
        "triples": {index: len(store) for index, store in stores.items()},
        "promoted": bool(getattr(dictionary, "is_promoted", True)),
        "frozen": {index: store.is_frozen for index, store in stores.items()},
        "tasks_served": tasks_served,
    }


def shard_worker_main(
    worker_index: int,
    shard_indices: Sequence[int],
    directory: str,
    task_queue,
    result_queue,
    control_queue,
    verify: bool,
    batch_rows: int,
    result_window: int = DEFAULT_RESULT_WINDOW,
) -> None:
    """Entry point of one shard worker process.

    Module-level (not a closure) so it is importable under the ``spawn``
    and ``forkserver`` start methods.
    """
    from repro.sparql.distjoin import ShipPlan, execute_ship_plan
    from repro.sparql.evaluate import QueryEvaluator
    from repro.sparql.fold import fold_local
    from repro.store.persist import open_shard_stores

    try:
        stores, dictionary, _ = open_shard_stores(
            directory, shard_indices, mmap=True, verify=verify
        )
        evaluators = {
            index: QueryEvaluator(store) for index, store in stores.items()
        }
    except BaseException as error:  # report, then die: parent raises crash
        result_queue.put(
            (_FATAL_ID, "error", type(error).__name__, str(error),
             traceback.format_exc())
        )
        return

    cancelled: set = set()
    acks: Dict[int, int] = {}
    work_cache: Dict[bytes, object] = {}
    tasks_served = 0

    def cached_payload(payload_bytes: bytes):
        cached = work_cache.get(payload_bytes)
        if cached is None:
            if len(work_cache) >= _GROUP_CACHE_LIMIT:
                work_cache.clear()
            cached = work_cache[payload_bytes] = pickle.loads(payload_bytes)
        return cached

    while True:
        message = task_queue.get()
        received = time.monotonic()
        kind = message[0]
        if kind == "stop":
            return
        task_id = message[1]
        tasks_served += 1
        _drain_control(control_queue, cancelled, acks)
        # Task IDs reach a worker in increasing order, so cancel marks and
        # credit acks below the current task can never match again — prune.
        cancelled = {tid for tid in cancelled if tid >= task_id}
        acks = {tid: n for tid, n in acks.items() if tid >= task_id}
        if kind == "ping":
            result_queue.put(
                (task_id, "pong",
                 _worker_diagnostics(worker_index, stores, dictionary,
                                     tasks_served))
            )
            continue
        if kind == "stall":
            deadline = time.monotonic() + message[2]
            was_cancelled = False
            while time.monotonic() < deadline:
                time.sleep(0.01)
                _drain_control(control_queue, cancelled, acks)
                if task_id in cancelled:
                    was_cancelled = True
                    break
            result_queue.put((task_id, "done", 0, was_cancelled, None))
            continue
        if kind != "eval":
            result_queue.put(
                (task_id, "error", "WorkerCrashError",
                 f"unknown task kind {kind!r}", "", None)
            )
            continue
        (_, _, shard_index, work_bytes, initial_payload, fold_bytes, project,
         distinct, trace_ts) = message
        if task_id in cancelled:
            result_queue.put((task_id, "done", 0, True, None))
            continue
        # Worker-side tracing: the parent stamped its dispatch monotonic
        # time, so queue wait is directly measurable here; the finished
        # span rides home on the terminal message.
        span: Optional[Span] = None
        if trace_ts is not None:
            span = Span(
                "worker:exec",
                {
                    "shard": shard_index,
                    "worker": worker_index,
                    "pid": os.getpid(),
                    "queue_wait_ms": round(
                        max(0.0, received - trace_ts) * 1000, 3
                    ),
                },
                process="worker",
            )

        def span_payload(status="ok", error=None, **attributes):
            if span is None:
                return None
            span.annotate(**attributes)
            span.finish(status=status, error=error)
            return span.to_dict()

        try:
            work = cached_payload(work_bytes)
            evaluator = evaluators[shard_index]
            memo: Dict[str, Variable] = {}
            initial = decode_binding(initial_payload, memo)
            if isinstance(work, ShipPlan):
                solutions = execute_ship_plan(evaluator, work, initial)
            else:
                solutions = evaluator._evaluate_group(work, initial)

            if fold_bytes is not None:
                # Aggregate pushdown: reduce the whole stream to one
                # partial; transfer is O(groups), not O(solutions).
                spec = cached_payload(fold_bytes)

                def fold_stopped() -> bool:
                    _drain_control(control_queue, cancelled, acks)
                    return task_id in cancelled

                partial = fold_local(solutions, spec, fold_stopped)
                if partial is None:
                    result_queue.put(
                        (task_id, "done", 0, True,
                         span_payload(mode="fold", cancelled=True))
                    )
                else:
                    result_queue.put((task_id, "agg", partial))
                    result_queue.put(
                        (task_id, "done", len(partial), False,
                         span_payload(mode="fold", groups=len(partial)))
                    )
                continue

            if project is not None:
                solutions = _restrict_solutions(
                    solutions, project, bool(distinct), memo
                )

            batch: List[Tuple[Tuple[str, object], ...]] = []
            count = 0
            was_cancelled = False
            credits = result_window
            for binding in solutions:
                batch.append(encode_binding(binding))
                count += 1
                if len(batch) >= batch_rows:
                    _drain_control(control_queue, cancelled, acks)
                    credits += acks.pop(task_id, 0)
                    if task_id in cancelled:
                        was_cancelled = True
                        break
                    if credits <= 0:
                        credits = _await_credit(
                            control_queue, cancelled, acks, task_id
                        )
                        if not credits:
                            was_cancelled = True
                            break
                    result_queue.put((task_id, "rows", batch))
                    credits -= 1
                    batch = []
            if batch and not was_cancelled:
                credits += acks.pop(task_id, 0)
                if credits <= 0:
                    credits = _await_credit(
                        control_queue, cancelled, acks, task_id
                    )
                if credits:
                    result_queue.put((task_id, "rows", batch))
                else:
                    was_cancelled = True
            result_queue.put(
                (task_id, "done", count, was_cancelled,
                 span_payload(rows=count, cancelled=was_cancelled))
            )
        except BaseException as error:
            result_queue.put(
                (task_id, "error", type(error).__name__, str(error),
                 traceback.format_exc(),
                 span_payload(status="error", error=error))
            )


# --------------------------------------------------------------------- #
# Parent-side plumbing
# --------------------------------------------------------------------- #
class _TaskStream:
    """Parent-side buffer for one in-flight task's result messages.

    ``pending`` counts buffered-but-unconsumed ``rows`` batches (guarded
    by the executor's stats lock); cancellation refunds them from the
    global buffered gauge at cancel-enqueue time.
    """

    __slots__ = ("task_id", "handle", "shard_index", "finished", "pending",
                 "cancelled", "_buffer")

    def __init__(
        self, task_id: int, handle: "_WorkerHandle", shard_index: int = -1
    ):
        self.task_id = task_id
        self.handle = handle
        self.shard_index = shard_index
        self.finished = False
        self.pending = 0
        self.cancelled = False
        self._buffer: "queue.SimpleQueue" = queue.SimpleQueue()

    def push(self, item) -> None:
        self._buffer.put(item)

    def next_message(self, timeout: Optional[float]):
        return self._buffer.get(timeout=timeout)


class _WorkerHandle:
    """One worker process plus its queues, collector and in-flight tasks."""

    __slots__ = (
        "index", "shard_indices", "process", "task_queue", "result_queue",
        "control_queue", "inflight", "lock", "dead", "fatal_info", "collector",
        "next_task_id",
    )

    def __init__(self, index, shard_indices, process, task_queue,
                 result_queue, control_queue):
        self.index = index
        self.shard_indices = shard_indices
        self.process = process
        self.task_queue = task_queue
        self.result_queue = result_queue
        self.control_queue = control_queue
        self.inflight: Dict[int, _TaskStream] = {}
        self.lock = threading.Lock()
        self.dead = False
        self.fatal_info: Optional[Tuple[str, str, str]] = None
        self.collector: Optional[threading.Thread] = None
        # Task IDs are per worker, and allocation + registration + the
        # queue put happen under one lock so the IDs a worker receives
        # are strictly increasing — the invariant its cancel-mark prune
        # relies on.
        self.next_task_id = 0

    def close_queues(self) -> None:
        for q in (self.task_queue, self.result_queue, self.control_queue):
            try:
                q.close()
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass


class ProcessShardExecutor:
    """Serves a sharded snapshot directory from a pool of shard workers.

    Parameters
    ----------
    directory:
        A snapshot directory written by
        :meth:`~repro.shard.sharded_store.ShardedTripleStore.save` (the
        usual entry point is
        :meth:`~repro.shard.sharded_store.ShardedTripleStore.serve`,
        which snapshots first when the store is dirty).
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; ``None`` uses the
        platform default.
    pool_size:
        Worker processes to spawn; defaults to one per shard.  With
        fewer workers than shards, shard ``i`` is served by worker
        ``i % pool_size``.
    verify:
        Forwarded to the snapshot open in each worker (per-section CRC
        pass).
    batch_rows:
        Solutions per result batch (protocol granularity: throughput vs
        cancellation latency).
    result_window:
        Credits per eval task — how many ``rows`` batches a worker may
        have in flight before it blocks for an ack.  Bounds parent-side
        buffering per task at ``result_window * batch_rows`` rows.
        ``None`` reads ``REPRO_RESULT_WINDOW`` (default
        :data:`DEFAULT_RESULT_WINDOW`).

    The executor is a context manager; :meth:`close` stops the workers.
    """

    def __init__(
        self,
        directory,
        start_method: Optional[str] = None,
        pool_size: Optional[int] = None,
        verify: bool = True,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        result_window: Optional[int] = None,
    ):
        from repro.store.persist import _read_manifest

        self._directory = Path(directory)
        manifest = _read_manifest(self._directory)
        self._num_shards: int = manifest["num_shards"]
        if pool_size is None:
            pool_size = self._num_shards
        if pool_size < 1:
            raise StoreError(f"pool_size must be >= 1, got {pool_size}")
        if result_window is None:
            result_window = _default_result_window()
        if result_window < 1:
            raise StoreError(f"result_window must be >= 1, got {result_window}")
        self._num_workers = min(pool_size, self._num_shards)
        self._ctx = multiprocessing.get_context(start_method)
        self._verify = verify
        self._batch_rows = batch_rows
        self._result_window = int(result_window)
        self._lock = threading.Lock()
        self._closed = False
        #: Per-executor instruments; :meth:`protocol_stats` mirrors the
        #: ledger into it as ``worker.protocol.*`` gauges.
        self.metrics = MetricsRegistry()
        # Protocol accounting: every counter mutation happens under one
        # stats lock so the ledger balances exactly at quiescence
        # (dispatched == completed + cancelled + failed + crashed) and the
        # buffered-batches gauge reflects live parent-side buffering.
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, int] = {
            "dispatched": 0,
            "completed": 0,
            "cancelled": 0,
            "failed": 0,
            "crashed": 0,
            "row_batches": 0,
            "rows": 0,
            "agg_partials": 0,
            "acks": 0,
            "dropped_batches": 0,
            "buffered_batches": 0,
            "max_buffered_batches": 0,
        }
        # Consecutive fatal boot failures per pool slot; at
        # _MAX_BOOT_FAILURES the slot is abandoned (dispatch fails fast
        # with the worker's reported error instead of respawn-looping).
        self._boot_failures: List[int] = [0] * self._num_workers
        self._abandoned: List[Optional[str]] = [None] * self._num_workers
        self._handles: List[_WorkerHandle] = [
            self._spawn_handle(index) for index in range(self._num_workers)
        ]

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        """The served snapshot directory."""
        return self._directory

    @property
    def num_shards(self) -> int:
        """Shards in the served snapshot."""
        return self._num_shards

    @property
    def num_workers(self) -> int:
        """Worker processes in the pool."""
        return self._num_workers

    def worker_for_shard(self, shard_index: int) -> int:
        """The pool slot serving ``shard_index``."""
        if not 0 <= shard_index < self._num_shards:
            raise StoreError(
                f"shard index {shard_index} out of range for "
                f"{self._num_shards} shards"
            )
        return shard_index % self._num_workers

    def worker_pids(self) -> List[Optional[int]]:
        """Current worker PIDs, by pool slot."""
        with self._lock:
            return [handle.process.pid for handle in self._handles]

    @property
    def result_window(self) -> int:
        """Credits per eval task (see :data:`DEFAULT_RESULT_WINDOW`)."""
        return self._result_window

    def protocol_stats(self) -> Dict[str, int]:
        """A snapshot of the executor's protocol ledger.

        Task counters (``dispatched`` / ``completed`` / ``cancelled`` /
        ``failed`` / ``crashed``) balance exactly once all streams reach a
        terminal state; ``buffered_batches`` is the live gauge of result
        batches held in parent-side buffers and ``max_buffered_batches``
        its high-water mark — with flow control it stays within
        ``result_window`` per concurrently in-flight task.  Each snapshot
        also folds the ledger into :attr:`metrics` as
        ``worker.protocol.<counter>`` gauges.
        """
        with self._stats_lock:
            snapshot = dict(self._stats)
        for key, value in snapshot.items():
            self.metrics.gauge("worker.protocol." + key).set(value)
        return snapshot

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait until no task is in flight on any worker.

        The handover primitive: a retiring executor keeps answering the
        queries it already accepted (its workers serve their snapshot
        from their own mmaps, unaffected by parent-side mutation) and is
        closed only once this returns.  Returns ``True`` at quiescence,
        ``False`` when ``timeout`` elapsed with tasks still in flight —
        the ledger still balances either way once the streams terminate.
        """
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                handles = list(self._handles)
            busy = 0
            for handle in handles:
                with handle.lock:
                    busy += len(handle.inflight)
            if not busy:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(_POLL_INTERVAL)

    def close(self, timeout: float = 5.0) -> None:
        """Stop all workers and release their queues (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        for handle in handles:
            try:
                handle.task_queue.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - dead queue
                pass
        deadline = time.monotonic() + timeout
        for handle in handles:
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        for handle in handles:
            if handle.collector is not None:
                handle.collector.join(timeout=1.0)
            handle.close_queues()

    # ------------------------------------------------------------------ #
    # Spawning / crash handling
    # ------------------------------------------------------------------ #
    def _shards_of(self, worker_index: int) -> Tuple[int, ...]:
        return tuple(
            range(worker_index, self._num_shards, self._num_workers)
        )

    def _spawn_handle(self, worker_index: int) -> _WorkerHandle:
        ctx = self._ctx
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        control_queue = ctx.Queue()
        process = ctx.Process(
            target=shard_worker_main,
            args=(
                worker_index,
                self._shards_of(worker_index),
                str(self._directory),
                task_queue,
                result_queue,
                control_queue,
                self._verify,
                self._batch_rows,
                self._result_window,
            ),
            name=f"repro-shard-worker-{worker_index}",
            daemon=True,
        )
        process.start()
        handle = _WorkerHandle(
            worker_index, self._shards_of(worker_index), process,
            task_queue, result_queue, control_queue,
        )
        collector = threading.Thread(
            target=self._collect,
            args=(handle,),
            name=f"repro-shard-collector-{worker_index}",
            daemon=True,
        )
        handle.collector = collector
        collector.start()
        return handle

    def _collect(self, handle: _WorkerHandle) -> None:
        """Route one worker's result messages; detect death; respawn."""
        while True:
            try:
                message = handle.result_queue.get(timeout=_POLL_INTERVAL)
            except queue.Empty:
                if handle.process.is_alive():
                    continue
                self._reap(handle)
                return
            except (EOFError, OSError):  # pragma: no cover - teardown race
                self._reap(handle)
                return
            self._route(handle, message)

    def _route(self, handle: _WorkerHandle, message) -> None:
        task_id = message[0]
        if task_id == _FATAL_ID:
            handle.fatal_info = message[2:5]
            return
        kind = message[1]
        with handle.lock:
            stream = handle.inflight.get(task_id)
            if stream is None:  # cancelled and forgotten
                if kind == "rows":
                    with self._stats_lock:
                        self._stats["dropped_batches"] += 1
                return
            if kind in _TERMINAL:
                del handle.inflight[task_id]
        with self._stats_lock:
            if kind == "rows":
                if stream.cancelled:
                    # _cancel already refunded this stream's buffers; a
                    # batch the worker had in the pipe must not re-enter
                    # the gauge (it will never be consumed).
                    self._stats["dropped_batches"] += 1
                    return
                stream.pending += 1
                self._stats["row_batches"] += 1
                self._stats["rows"] += len(message[2])
                buffered = self._stats["buffered_batches"] + 1
                self._stats["buffered_batches"] = buffered
                if buffered > self._stats["max_buffered_batches"]:
                    self._stats["max_buffered_batches"] = buffered
            elif kind == "agg":
                self._stats["agg_partials"] += 1
            elif kind == "done" or kind == "pong":
                self._stats["completed"] += 1
            elif kind == "error":
                self._stats["failed"] += 1
        stream.push(message[1:])

    def _reap(self, handle: _WorkerHandle) -> None:
        """The worker died: drain, fail its in-flight tasks, respawn."""
        while True:  # messages already in the pipe still count
            try:
                self._route(handle, handle.result_queue.get_nowait())
            except (queue.Empty, EOFError, OSError):
                break
        with handle.lock:
            handle.dead = True
            streams = list(handle.inflight.values())
            handle.inflight.clear()
        detail = ""
        if handle.fatal_info is not None:
            name, text, _ = handle.fatal_info
            detail = f" (worker reported {name}: {text})"
        error = WorkerCrashError(
            f"shard worker {handle.index} (pid {handle.process.pid}) died "
            f"with {len(streams)} task(s) in flight{detail}"
        )
        with self._stats_lock:
            for stream in streams:
                self._stats["crashed"] += 1
                if stream.pending:
                    self._stats["buffered_batches"] -= stream.pending
                    stream.pending = 0
        for stream in streams:
            stream.push(("crashed", error))
        handle.close_queues()
        with self._lock:
            if handle.fatal_info is not None:
                self._boot_failures[handle.index] += 1
                if self._boot_failures[handle.index] >= _MAX_BOOT_FAILURES:
                    # Deterministically doomed (corrupt snapshot, ...):
                    # abandon the slot instead of fork-looping forever.
                    self._abandoned[handle.index] = detail.strip() or str(error)
            else:
                self._boot_failures[handle.index] = 0
            respawn = (
                not self._closed
                and self._abandoned[handle.index] is None
                and self._handles[handle.index] is handle
            )
        if respawn:
            replacement = self._spawn_handle(handle.index)
            with self._lock:
                if self._closed:  # pragma: no cover - close raced the respawn
                    respawn = False
                else:
                    self._handles[handle.index] = replacement
            if not respawn:  # pragma: no cover - close raced the respawn
                replacement.process.terminate()

    # ------------------------------------------------------------------ #
    # Dispatch / gather
    # ------------------------------------------------------------------ #
    def _dispatch(self, shard_index: int, kind: str, *extra) -> _TaskStream:
        worker_index = self.worker_for_shard(shard_index)
        deadline = time.monotonic() + 2.0
        while True:
            with self._lock:
                if self._closed:
                    raise StoreError("ProcessShardExecutor is closed")
                abandoned = self._abandoned[worker_index]
                handle = self._handles[worker_index]
            if abandoned is not None:
                raise WorkerCrashError(
                    f"shard worker {worker_index} gave up respawning after "
                    f"{_MAX_BOOT_FAILURES} consecutive boot failures "
                    f"{abandoned}"
                )
            stream = None
            with handle.lock:
                if not handle.dead:
                    # ID allocation, registration and the queue put share
                    # the handle lock: the worker therefore sees strictly
                    # increasing task IDs (its cancel-mark prune depends
                    # on that ordering).
                    task_id = handle.next_task_id
                    handle.next_task_id += 1
                    stream = _TaskStream(task_id, handle, shard_index)
                    handle.inflight[task_id] = stream
                    if kind == "eval":
                        message = ("eval", task_id, shard_index) + extra
                    else:
                        message = (kind, task_id) + extra
                    dispatched = True
                    try:
                        handle.task_queue.put(message)
                    except (OSError, ValueError):  # pragma: no cover - race
                        dispatched = False
                        handle.inflight.pop(task_id, None)
                        stream.push(("crashed", WorkerCrashError(
                            f"shard worker {worker_index} queue closed "
                            "mid-dispatch"
                        )))
            if stream is not None:
                if dispatched:
                    with self._stats_lock:
                        self._stats["dispatched"] += 1
                return stream
            # The handle died and is being respawned; wait briefly for the
            # replacement instead of failing a query the fresh worker
            # could serve.
            if time.monotonic() > deadline:
                raise WorkerCrashError(
                    f"shard worker {worker_index} did not respawn in time"
                )
            time.sleep(_POLL_INTERVAL)

    def _cancel(self, stream: _TaskStream) -> None:
        handle = stream.handle
        with handle.lock:
            forgotten = handle.inflight.pop(stream.task_id, None)
        with self._stats_lock:
            # Refund the stream's buffered-but-unconsumed batches at
            # cancel-enqueue time: the gauge (and anything budgeted on
            # it) must not wait for the worker to drain the cancel.
            stream.cancelled = True
            if stream.pending:
                self._stats["buffered_batches"] -= stream.pending
                stream.pending = 0
            if forgotten is not None:
                self._stats["cancelled"] += 1
        if forgotten is None:
            return
        try:
            handle.control_queue.put(("cancel", stream.task_id))
        except (OSError, ValueError):  # pragma: no cover - dead queue
            pass

    def _rebuild_error(self, type_name: str, message: str, tb: str):
        cls = getattr(_errors, type_name, None)
        if isinstance(cls, type) and issubclass(cls, ReproError):
            return cls(message)
        return WorkerCrashError(
            f"worker task failed: {type_name}: {message}\n{tb}"
        )

    def _dispatch_eval(
        self,
        shard_indices: Sequence[int],
        work,
        initial: Optional[IdBinding],
        fold_spec,
        project: Optional[Sequence[str]],
        distinct: bool,
        traced: bool = False,
    ) -> List[_TaskStream]:
        """Fan one eval payload out to every routed shard's worker.

        The work object (group AST or ship plan — broadcast tables
        included) and the fold spec are each pickled once per query, not
        once per shard task; workers memoise the unpickled objects per
        payload bytes.  With ``traced`` each task carries the dispatch
        monotonic timestamp so workers can measure queue wait and ship a
        ``worker:exec`` span back on their terminal message.
        """
        payload = encode_binding(initial if initial is not None else IdBinding.EMPTY)
        work_bytes = pickle.dumps(work, protocol=pickle.HIGHEST_PROTOCOL)
        fold_bytes = (
            None
            if fold_spec is None
            else pickle.dumps(fold_spec, protocol=pickle.HIGHEST_PROTOCOL)
        )
        project_names = None if project is None else tuple(project)
        streams: List[_TaskStream] = []
        try:
            for shard_index in shard_indices:
                trace_ts = time.monotonic() if traced else None
                streams.append(
                    self._dispatch(
                        shard_index, "eval", work_bytes, payload,
                        fold_bytes, project_names, bool(distinct), trace_ts,
                    )
                )
        except BaseException:
            for stream in streams:
                self._cancel(stream)
            raise
        return streams

    def _merge_span(self, streams: List[_TaskStream], trace_parent):
        """The ``parent:merge/decode`` span for a traced scatter, or None."""
        tracer = recorder()
        if trace_parent is None and not tracer.active:
            return None
        return tracer.stream_span(
            "parent:merge/decode", parent=trace_parent, shards=len(streams)
        )

    @staticmethod
    def _attach_worker_span(span, payload) -> None:
        if span is not None and payload is not None:
            span.children.append(Span.from_payload(payload))

    @staticmethod
    def _attach_crash_span(span, stream: _TaskStream, error) -> None:
        """Synthesize the worker:exec span a crashed worker never sent."""
        if span is None:
            return
        child = Span(
            "worker:exec",
            {"shard": stream.shard_index, "crashed": True},
            process="worker",
        )
        child.finish(status="error", error=error)
        span.children.append(child)

    def run_group(
        self,
        shard_indices: Sequence[int],
        work,
        initial: Optional[IdBinding] = None,
        project: Optional[Sequence[str]] = None,
        distinct: bool = False,
        trace_parent=None,
    ) -> Iterator[IdBinding]:
        """Scatter one group (or ship plan) over its shards' workers.

        All per-shard tasks are dispatched up front (a single query fans
        out over the pool and the per-shard pipelines run genuinely in
        parallel), then gathered lazily in shard order.  Closing the
        returned iterator early — ASK's first solution, a filled LIMIT
        page — sends cancel messages for every unfinished task.

        Parent-side buffering is bounded by the credit protocol: each
        task may have at most ``result_window`` row batches buffered, so
        a trailing shard waits for the consumer instead of materialising
        its whole result in the parent.  ``project`` (variable names) and
        ``distinct`` push the final projection down to the workers for
        plain SELECT queries.

        ``trace_parent`` (a :class:`~repro.obs.trace.Span`) re-parents
        the scatter's ``parent:merge/decode`` span — and the worker-side
        ``worker:exec`` spans shipped back on terminal messages — under
        the caller's trace even though the returned iterator is consumed
        after the calling frame has unwound.
        """
        traced = trace_parent is not None or recorder().active
        streams = self._dispatch_eval(
            shard_indices, work, initial, None, project, distinct,
            traced=traced,
        )
        span = self._merge_span(streams, trace_parent) if traced else None
        return self._gather(streams, span=span)

    def run_fold(
        self,
        shard_indices: Sequence[int],
        work,
        fold_spec,
        initial: Optional[IdBinding] = None,
        trace_parent=None,
    ) -> Dict:
        """Scatter an aggregate query and merge worker-side fold partials.

        Each routed worker reduces its shard's solution stream with
        ``fold_spec`` and ships exactly one partial message — transfer is
        O(shards · groups), never O(solutions).  Returns the merged
        partial dict for :func:`repro.sparql.fold.finalize`.
        """
        from repro.sparql.fold import merge_partial

        traced = trace_parent is not None or recorder().active
        streams = self._dispatch_eval(
            shard_indices, work, initial, fold_spec, None, False,
            traced=traced,
        )
        span = self._merge_span(streams, trace_parent) if traced else None
        merged: Dict = {}
        try:
            for stream in streams:
                while True:
                    try:
                        item = stream.next_message(timeout=1.0)
                    except queue.Empty:
                        continue
                    kind = item[0]
                    if kind == "agg":
                        merge_partial(fold_spec, merged, item[1])
                    elif kind == "done":
                        stream.finished = True
                        self._attach_worker_span(span, item[3])
                        break
                    elif kind == "crashed":
                        stream.finished = True
                        self._attach_crash_span(span, stream, item[1])
                        if span is not None:
                            span.finish(status="error", error=item[1])
                        raise item[1]
                    elif kind == "error":
                        stream.finished = True
                        self._attach_worker_span(span, item[4])
                        error = self._rebuild_error(item[1], item[2], item[3])
                        if span is not None:
                            span.finish(status="error", error=error)
                        raise error
        finally:
            for stream in streams:
                if not stream.finished:
                    self._cancel(stream)
            if span is not None:
                span.finish()
        return merged

    def _ack(self, stream: _TaskStream) -> None:
        """Account one consumed rows batch and grant the worker a credit."""
        with self._stats_lock:
            if stream.pending > 0:
                stream.pending -= 1
                self._stats["buffered_batches"] -= 1
            self._stats["acks"] += 1
        try:
            stream.handle.control_queue.put(("ack", stream.task_id, 1))
        except (OSError, ValueError):  # pragma: no cover - dead queue
            pass

    def _gather(
        self, streams: List[_TaskStream], span=None
    ) -> Iterator[IdBinding]:
        memo: Dict[str, Variable] = {}
        rows_out = 0
        try:
            for stream in streams:
                while True:
                    try:
                        item = stream.next_message(timeout=1.0)
                    except queue.Empty:
                        # Defensive: the collector pushes a crash sentinel
                        # on worker death, so a silent stall here means
                        # the task is genuinely still running.
                        continue
                    kind = item[0]
                    if kind == "rows":
                        for row in item[1]:
                            rows_out += 1
                            yield decode_binding(row, memo)
                        # Ack only after the batch is fully consumed: a
                        # consumer that closes the generator mid-batch
                        # skips the ack and the finally-cancel refunds
                        # the worker instead.
                        self._ack(stream)
                    elif kind == "done":
                        stream.finished = True
                        self._attach_worker_span(span, item[3])
                        break
                    elif kind == "crashed":
                        stream.finished = True
                        self._attach_crash_span(span, stream, item[1])
                        if span is not None:
                            span.finish(status="error", error=item[1])
                        raise item[1]
                    elif kind == "error":
                        stream.finished = True
                        self._attach_worker_span(span, item[4])
                        error = self._rebuild_error(item[1], item[2], item[3])
                        if span is not None:
                            span.finish(status="error", error=error)
                        raise error
        finally:
            cancelled = 0
            for stream in streams:
                if not stream.finished:
                    self._cancel(stream)
                    cancelled += 1
            if span is not None:
                # GeneratorExit (a satisfied ASK / filled LIMIT page)
                # lands here too: a clean early close, not an error.
                span.annotate(rows=rows_out)
                if cancelled:
                    span.annotate(cancelled_tasks=cancelled)
                span.finish()

    # ------------------------------------------------------------------ #
    # Diagnostics / fault injection
    # ------------------------------------------------------------------ #
    def ping(self, shard_index: int = 0, timeout: float = 10.0) -> dict:
        """Round-trip a health probe through the worker owning a shard.

        Returns the worker's diagnostics: pid, served shards, per-shard
        triple counts, whether its lazy dictionary was ever promoted and
        whether any shard index thawed copy-on-write (both must stay
        ``False`` on a healthy read-only worker).
        """
        stream = self._dispatch(shard_index, "ping")
        deadline = time.monotonic() + timeout
        while True:
            try:
                item = stream.next_message(
                    timeout=max(0.01, deadline - time.monotonic())
                )
            except queue.Empty:
                self._cancel(stream)
                raise WorkerCrashError(
                    f"ping to shard {shard_index}'s worker timed out"
                ) from None
            if item[0] == "pong":
                return item[1]
            if item[0] == "crashed":
                raise item[1]
            if item[0] == "error":
                raise self._rebuild_error(item[1], item[2], item[3])

    def ping_all(self, timeout: float = 10.0) -> List[dict]:
        """:meth:`ping` every pool slot (by its lowest-numbered shard)."""
        return [
            self.ping(worker_index, timeout=timeout)
            for worker_index in range(self._num_workers)
        ]

    def stall(self, shard_index: int, seconds: float) -> _TaskStream:
        """Occupy a worker with a cancellable busy-wait task.

        A fault-injection aid for tests: it pins the worker in a known
        in-task state so a SIGKILL lands deterministically mid-task.
        Returns the task's stream; completion can be awaited through it.
        """
        return self._dispatch(shard_index, "stall", seconds)
