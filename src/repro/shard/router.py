"""Routing triple patterns to the shards that can contribute matches.

The router is the cost model of the scatter/gather executor: it decides,
per pattern, which shards must be probed and which are provably empty for
it.  It works entirely in ID space (``None`` = wildcard position) so it
can be shared by any query layer without depending on the SPARQL AST.

Two pruning sources, both exact (never heuristic — a pruned shard
contributes no solutions by construction):

* **Subject routing.**  A pattern with a constant subject ID lives in
  exactly one shard (the partitioning invariant).
* **Count pruning.**  For any pattern, each shard's
  :meth:`~repro.store.triplestore.TripleStore.count_ids` — the same
  ``count_for_key`` / ``third_count`` index bookkeeping the query
  planner's cardinality estimator reads — is O(1); a shard where the
  pattern's constant positions match zero triples cannot contribute a
  binding, and because a BGP is a conjunction, a shard where *any*
  pattern counts zero contributes no solutions at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.shard.sharded_store import ShardedTripleStore

#: A triple pattern in ID space: constants resolved to IDs, variables None.
IdPattern = Tuple[Optional[int], Optional[int], Optional[int]]


@dataclass(frozen=True)
class PatternRoute:
    """Routing outcome for one pattern: shards probed vs pruned.

    ``shipped`` marks a pattern that is not probed per shard at all: the
    cross-shard join shipper materialises its full match set once in the
    parent and broadcasts the ID columns to every worker, so shard routing
    does not apply to it.
    """

    pattern: IdPattern
    probed: Tuple[int, ...]
    pruned: Tuple[int, ...]
    shipped: bool = False

    def describe(self) -> str:
        """One-line rendering used by the sharded plan explain output."""
        if self.shipped:
            return "broadcast to all probed shards (join shipping)"
        probed = ",".join(map(str, self.probed)) or "-"
        pruned = ",".join(map(str, self.pruned)) or "-"
        return f"shards probed=[{probed}] pruned=[{pruned}]"


class ShardRouter:
    """Decides which shards each pattern (and a whole BGP) can touch."""

    def __init__(self, store: ShardedTripleStore):
        self._store = store

    @property
    def store(self) -> ShardedTripleStore:
        """The routed sharded store."""
        return self._store

    def all_shards(self) -> Tuple[int, ...]:
        """Every shard index, in range order."""
        return tuple(range(self._store.num_shards))

    def shards_for_subjects(self, subject_ids: Sequence[int]) -> Tuple[int, ...]:
        """The (sorted, distinct) shards owning the given subject IDs."""
        index_for = self._store.shard_index_for_subject
        return tuple(sorted({index_for(sid) for sid in subject_ids}))

    def route_pattern(
        self, pattern: IdPattern, candidates: Optional[Sequence[int]] = None
    ) -> PatternRoute:
        """Split ``candidates`` (all shards by default) into probed/pruned.

        Subject-constant patterns route to the owning shard; every
        surviving candidate is then count-checked against the pattern's
        constant positions (O(1) per shard).
        """
        shards = self._store.shards
        subject, predicate, object = pattern
        if candidates is None:
            candidates = range(len(shards))
        if subject is not None:
            home = self._store.shard_index_for_subject(subject)
            candidates = [index for index in candidates if index == home]
        probed: List[int] = []
        pruned: List[int] = []
        for index in candidates:
            if shards[index].count_ids(subject, predicate, object):
                probed.append(index)
            else:
                pruned.append(index)
        return PatternRoute(
            pattern=pattern, probed=tuple(probed), pruned=tuple(pruned)
        )

    def route_group(
        self,
        patterns: Sequence[IdPattern],
        candidates: Optional[Sequence[int]] = None,
    ) -> Tuple[Tuple[int, ...], Tuple[PatternRoute, ...]]:
        """Route a conjunctive pattern group.

        Returns the shards that must run the whole group (the
        intersection of the per-pattern probed sets — a shard where any
        pattern is empty yields no solutions) plus the per-pattern routes
        for diagnostics/explain.
        """
        if candidates is None:
            candidates = self.all_shards()
        routes = tuple(
            self.route_pattern(pattern, candidates) for pattern in patterns
        )
        surviving = set(candidates)
        for route in routes:
            surviving &= set(route.probed)
        return tuple(sorted(surviving)), routes
