"""Sharded triple storage with scatter/gather query evaluation.

Why sharding
------------
The paper's experiments are bounded by *endpoint throughput*: how many
alignment queries per second a simulated SPARQL endpoint can absorb
decides how many KB pairs and relation candidates a run can cover under
the query budget.  A single :class:`~repro.store.TripleStore` answers one
query at a time; this package splits the store into independent partitions
so builds parallelise and batched query waves overlap.

Architecture
------------
Three pieces, bottom to top:

1. **Partitioned storage** (:mod:`repro.shard.sharded_store`).
   :class:`ShardedTripleStore` splits the triple set by **subject-ID
   range** into ``num_shards`` plain :class:`TripleStore` shards that
   share one :class:`~repro.store.TermDictionary` (one global ID space).
   The first bulk load freezes near-equal range boundaries and each shard
   is built through the store's columnar ``bulk_extend_grouped`` path on
   its own partition — on a thread pool, since the numpy column sort
   releases the GIL.  Invariants: routing is a single bisect, subject
   sets are disjoint across shards, and shard ranges are contiguous and
   increasing, so per-shard sorted subject runs concatenate into globally
   sorted runs.

2. **Shard routing** (:mod:`repro.shard.router`).  :class:`ShardRouter`
   reuses the planner's cost-model primitives — the O(1)
   ``count_for_key`` / ``third_count`` index bookkeeping behind
   ``count_ids`` — to split shards into *probed* vs *pruned* per pattern.
   Pruning is exact: a constant subject routes to its owning shard, and a
   shard where any pattern of a conjunctive group matches zero triples
   contributes no solutions.

3. **Scatter/gather execution** (:mod:`repro.sparql.scatter`, layered in
   the SPARQL package because it drives the planner's physical
   operators).  ``ShardedQueryEvaluator`` evaluates *co-partitioned*
   groups — every triple pattern, recursively, shares one subject
   variable, the star shape the aligner's batched queries take — by
   running the full planned merge/hash/nested pipeline per shard and
   lazily chaining the per-shard streams, so ASK and LIMIT short-circuit
   without touching trailing shards.  Everything else falls back to the
   global merged view: :class:`ShardedTripleStore` exposes the whole
   ID-level store API by routing subject-bound lookups to one shard and
   gathering the rest (summed counts, unioned distinct sets, and
   concatenated sorted runs that feed the existing merge-join machinery
   directly), so *any* query stays correct on the fallback path.

The gather merge in one picture::

    pattern (?s, p, o)        shard 0        shard 1        shard 2
    sorted subject runs:      [2, 5, 9] ++ [12, 14, 20] ++ [31, 40]
                              \\______ globally sorted: ranges ______/
                                       are contiguous by ID

On top of this, :mod:`repro.endpoint.simulation` schedules concurrent
query *waves* against a sharded endpoint under the globally consistent
(thread-safe) query-budget accounting.

Since the process-workers PR, piece 3 has a second execution backend:
:mod:`repro.shard.workers` serves the per-shard snapshot files from one
worker **process** per shard (``ShardedTripleStore.serve`` snapshots
when dirty and boots the pool), so CPU-bound query waves scale past the
GIL; ``ShardedQueryEvaluator(store, backend="process", executor=...)``
ships co-partitioned groups to the workers as serialized binding
batches.
"""

from repro.shard.sharded_store import ShardedTripleStore
from repro.shard.router import IdPattern, PatternRoute, ShardRouter
from repro.shard.workers import ProcessShardExecutor

__all__ = [
    "ShardedTripleStore",
    "ShardRouter",
    "PatternRoute",
    "IdPattern",
    "ProcessShardExecutor",
]
