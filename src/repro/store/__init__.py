"""Dictionary-encoded, fully indexed in-memory triple store.

Architecture
------------
The storage substrate has three layers, bottom to top:

1. **Term dictionary** (:mod:`repro.store.dictionary`).  A
   :class:`TermDictionary` interns every RDF term to a dense integer ID
   (RDF-3X style).  IDs are assigned in interning order and stay stable
   across ``remove``/``clear``, so upper layers can hold bare ints in
   caches and statistics.  A per-ID kind byte answers "literal or
   entity?" without materialising the term.

2. **ID indexes** (:mod:`repro.store.index`).  Three
   :class:`IdTripleIndex` permutations (SPO, POS, OSP) map
   ``key -> second -> sorted array of thirds`` over plain ints, giving
   constant-time dispatch for all eight triple-pattern shapes, bisect
   membership tests, deterministic sorted iteration, and the sorted runs
   the SPARQL planner's merge joins stream (``sorted_thirds``).  Each
   index can also be **bulk-built from presorted runs**
   (``bulk_extend`` / ``bulk_extend_grouped``) instead of one insertion
   per entry.  The original Term-keyed :class:`TripleIndex` remains
   available as a generic utility.

3. **Store facade** (:mod:`repro.store.triplestore`).
   :class:`TripleStore` keeps the public Term-in/Term-out API unchanged
   while translating at the boundary.  It additionally exposes an
   ID-level API (``match_ids`` / ``count_ids`` / ``term_id`` /
   ``sorted_run_ids`` / ``dictionary``) that the SPARQL evaluator uses
   to join on integers and stream solutions without building Term
   objects, and that every pattern-shape count is answered from index
   bookkeeping alone.  :meth:`TripleStore.bulk_load` is the columnar
   construction fast path (:mod:`repro.store.bulk`): batch-intern,
   accumulate ``array('q')`` ID columns, sort once per index order
   (numpy-accelerated when available) and build the indexes from the
   sorted runs.

What this enables: the SPARQL layer binds variables to integer IDs and
decodes only the rows it actually returns, endpoints can serve much
larger simulated KBs at the same latency, and later scaling PRs
(sharding by ID range, async endpoints, alternative backends) can build
on a compact integer substrate instead of hashed Term objects.

Statistics (:mod:`repro.store.stats`) are likewise computed in ID space
from the POS permutation plus dictionary kind bytes.
"""

from repro.store.dictionary import TermDictionary
from repro.store.triplestore import TripleStore
from repro.store.index import IdTripleIndex, TripleIndex
from repro.store.stats import PredicateStatistics, StoreStatistics
from repro.store.bulk import load_ntriples_file, load_triples

__all__ = [
    "TripleStore",
    "TermDictionary",
    "IdTripleIndex",
    "TripleIndex",
    "PredicateStatistics",
    "StoreStatistics",
    "load_triples",
    "load_ntriples_file",
]
