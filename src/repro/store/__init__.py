"""In-memory indexed triple store.

The store keeps three hash-based permutation indexes (SPO, POS, OSP) so that
every triple-pattern shape is answered by at most one index lookup followed
by set intersection.  It also maintains per-predicate statistics used by the
knowledge-base layer (relation catalogues, functionality estimates) and by
the synthetic data generator's sanity checks.
"""

from repro.store.triplestore import TripleStore
from repro.store.index import TripleIndex
from repro.store.stats import PredicateStatistics, StoreStatistics
from repro.store.bulk import load_ntriples_file, load_triples

__all__ = [
    "TripleStore",
    "TripleIndex",
    "PredicateStatistics",
    "StoreStatistics",
    "load_triples",
    "load_ntriples_file",
]
