"""Dictionary-encoded, fully indexed in-memory triple store.

Architecture
------------
The storage substrate has three layers, bottom to top:

1. **Term dictionary** (:mod:`repro.store.dictionary`).  A
   :class:`TermDictionary` interns every RDF term to a dense integer ID
   (RDF-3X style).  IDs are assigned in interning order and stay stable
   across ``remove``/``clear``, so upper layers can hold bare ints in
   caches and statistics.  A per-ID kind byte answers "literal or
   entity?" without materialising the term.

2. **ID indexes** (:mod:`repro.store.index`).  Three
   :class:`IdTripleIndex` permutations (SPO, POS, OSP) map
   ``key -> second -> sorted array of thirds`` over plain ints, giving
   constant-time dispatch for all eight triple-pattern shapes, bisect
   membership tests, deterministic sorted iteration, and the sorted runs
   the SPARQL planner's merge joins stream (``sorted_thirds``).  Each
   index can also be **bulk-built from presorted runs**
   (``bulk_extend`` / ``bulk_extend_grouped``) instead of one insertion
   per entry.  The original Term-keyed :class:`TripleIndex` remains
   available as a generic utility.

3. **Store facade** (:mod:`repro.store.triplestore`).
   :class:`TripleStore` keeps the public Term-in/Term-out API unchanged
   while translating at the boundary.  It additionally exposes an
   ID-level API (``match_ids`` / ``count_ids`` / ``term_id`` /
   ``sorted_run_ids`` / ``dictionary``) that the SPARQL evaluator uses
   to join on integers and stream solutions without building Term
   objects, and that every pattern-shape count is answered from index
   bookkeeping alone.  :meth:`TripleStore.bulk_load` is the columnar
   construction fast path (:mod:`repro.store.bulk`): batch-intern,
   accumulate ``array('q')`` ID columns, sort once per index order
   (numpy-accelerated when available) and build the indexes from the
   sorted runs.

What this enables: the SPARQL layer binds variables to integer IDs and
decodes only the rows it actually returns, endpoints can serve much
larger simulated KBs at the same latency, and later scaling PRs
(sharding by ID range, async endpoints, alternative backends) can build
on a compact integer substrate instead of hashed Term objects.

Statistics (:mod:`repro.store.stats`) are likewise computed in ID space
from the POS permutation plus dictionary kind bytes.

Persistence (:mod:`repro.store.persist`) adds a second, on-disk
representation of layers 1 and 2: a versioned, checksummed snapshot that
``TripleStore.save`` writes and ``TripleStore.open`` maps back in
read-only — the dictionary becomes a lazily decoding
:class:`LazyTermDictionary` over the string heap and each index order a
:class:`FrozenIdIndex` over mmap'd CSR columns, so reopening skips the
re-intern/re-sort rebuild entirely and the first mutation promotes the
store back to the writable form.
"""

from repro.store.dictionary import LazyTermDictionary, TermDictionary
from repro.store.triplestore import TripleStore
from repro.store.index import ColumnView, FrozenIdIndex, IdTripleIndex, TripleIndex
from repro.store.stats import PredicateStatistics, StoreStatistics
from repro.store.bulk import load_ntriples_file, load_triples

__all__ = [
    "TripleStore",
    "TermDictionary",
    "LazyTermDictionary",
    "IdTripleIndex",
    "FrozenIdIndex",
    "ColumnView",
    "TripleIndex",
    "PredicateStatistics",
    "StoreStatistics",
    "load_triples",
    "load_ntriples_file",
]
