"""Dictionary encoding of RDF terms.

A :class:`TermDictionary` interns every RDF term to a dense integer ID, the
way RDF-3X-style engines do: the storage and query layers then operate on
plain integers (cheap hashing, cheap equality, compact sorted containers)
and only materialise :class:`~repro.rdf.terms.Term` objects at the API
boundary.

IDs are assigned densely in interning order and are **stable for the
lifetime of the dictionary**: removing triples from a store, or clearing
it, never invalidates or reuses an ID.  This lets query results, caches and
statistics hold bare integers without worrying about remapping.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import StoreError
from repro.rdf.terms import BlankNode, IRI, Literal, Term
from repro.rdf.triple import Triple

#: Term-kind tags stored per ID (one byte each).
KIND_IRI = 0
KIND_BLANK = 1
KIND_LITERAL = 2


class _InternMap(dict):
    """A ``Term -> ID`` dict that interns unknown terms on subscript miss.

    Lookups of already-interned terms — the overwhelming majority during
    bulk loads — stay entirely in C (`dict.__getitem__`); only a genuine
    miss drops into :meth:`__missing__` to assign the next dense ID and
    record the term and its kind byte.
    """

    __slots__ = ("_terms", "_kinds")

    def __init__(self, terms: List[Term], kinds: bytearray):
        super().__init__()
        self._terms = terms
        self._kinds = kinds

    def __missing__(self, term: Term) -> int:
        if isinstance(term, IRI):
            kind = KIND_IRI
        elif isinstance(term, Literal):
            kind = KIND_LITERAL
        elif isinstance(term, BlankNode):
            kind = KIND_BLANK
        else:
            raise StoreError(f"Cannot intern non-term value: {term!r}")
        tid = len(self._terms)
        self[term] = tid
        self._terms.append(term)
        self._kinds.append(kind)
        return tid


class TermDictionary:
    """A bidirectional mapping ``Term <-> dense integer ID``.

    The forward direction (:meth:`encode`) interns: unknown terms are
    assigned the next free ID.  The reverse direction (:meth:`decode`) is a
    list lookup.  A per-ID kind byte answers "is this a literal/entity?"
    without materialising the term — the statistics layer relies on this.
    """

    __slots__ = ("_ids", "_terms", "_kinds")

    def __init__(self) -> None:
        self._terms: List[Term] = []
        self._kinds = bytearray()
        self._ids: _InternMap = _InternMap(self._terms, self._kinds)

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: object) -> bool:
        return term in self._ids

    def __repr__(self) -> str:
        return f"TermDictionary(size={len(self._terms)})"

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode(self, term: Term) -> int:
        """Intern ``term``, returning its (possibly fresh) ID."""
        return self._ids[term]

    def id_for(self, term: Term) -> Optional[int]:
        """The ID of ``term`` without interning; ``None`` if unknown."""
        return self._ids.get(term)

    @property
    def ids_map(self) -> Dict[Term, int]:
        """The raw interning ``Term -> ID`` mapping.

        Exposed so hot paths can intern (subscript) or probe (``.get``)
        without a method call per term.  Subscripting interns on miss;
        callers must not mutate it any other way.
        """
        return self._ids

    def encode_triple(self, triple: Triple) -> Tuple[int, int, int]:
        """Intern all three positions of ``triple``."""
        return (
            self.encode(triple.subject),
            self.encode(triple.predicate),
            self.encode(triple.object),
        )

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode(self, tid: int) -> Term:
        """The term interned under ``tid``.

        Raises
        ------
        StoreError
            If ``tid`` was never assigned.
        """
        try:
            return self._terms[tid]
        except IndexError:
            raise StoreError(f"Unknown term ID: {tid}") from None

    def decode_triple(self, ids: Tuple[int, int, int]) -> Triple:
        """Rebuild a :class:`Triple` from an ID triple."""
        terms = self._terms
        return Triple(terms[ids[0]], terms[ids[1]], terms[ids[2]])  # type: ignore[arg-type]

    def terms(self) -> Iterator[Term]:
        """All interned terms, in ID order."""
        return iter(self._terms)

    # ------------------------------------------------------------------ #
    # Kind queries (no term materialisation)
    # ------------------------------------------------------------------ #
    def kind(self, tid: int) -> int:
        """The kind tag (:data:`KIND_IRI` / `KIND_BLANK` / `KIND_LITERAL`)."""
        try:
            return self._kinds[tid]
        except IndexError:
            raise StoreError(f"Unknown term ID: {tid}") from None

    def is_literal_id(self, tid: int) -> bool:
        """Whether ``tid`` denotes a literal."""
        return self._kinds[tid] == KIND_LITERAL

    def is_entity_id(self, tid: int) -> bool:
        """Whether ``tid`` denotes an IRI or blank node."""
        return self._kinds[tid] != KIND_LITERAL
