"""Dictionary encoding of RDF terms.

A :class:`TermDictionary` interns every RDF term to a dense integer ID, the
way RDF-3X-style engines do: the storage and query layers then operate on
plain integers (cheap hashing, cheap equality, compact sorted containers)
and only materialise :class:`~repro.rdf.terms.Term` objects at the API
boundary.

IDs are assigned densely in interning order and are **stable for the
lifetime of the dictionary**: removing triples from a store, or clearing
it, never invalidates or reuses an ID.  This lets query results, caches and
statistics hold bare integers without worrying about remapping.

Snapshot support (:mod:`repro.store.persist`) serialises a dictionary as a
**string heap + offset table**: every term is encoded to a self-delimiting
byte record (:func:`encode_term_record`), the records are concatenated in
ID order, and an ``int64`` offset table of ``n + 1`` entries marks the
record boundaries.  :class:`LazyTermDictionary` reopens that layout without
re-interning anything: ``decode`` parses one record on demand (memoising
per ID) and ``id_for`` binary-searches a precomputed record-sorted ID
permutation, so a cold-opened store resolves query constants in
O(log n) record probes instead of paying an O(n) dictionary rebuild.  The
first *interning* call promotes the lazy dictionary to the fully writable
form transparently.
"""

from __future__ import annotations

from struct import Struct
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import StoreError
from repro.rdf.terms import BlankNode, IRI, Literal, Term
from repro.rdf.triple import Triple

#: Term-kind tags stored per ID (one byte each).
KIND_IRI = 0
KIND_BLANK = 1
KIND_LITERAL = 2

#: Literal payload sub-tags (see :func:`encode_term_record`).
_LIT_PLAIN = 0
_LIT_LANG = 1
_LIT_DATATYPE = 2

_U32 = Struct("<I")

#: Entries allowed in a lazy dictionary's id_for memo before it is
#: dropped and rebuilt — bounds the memory of long-lived read-only cold
#: stores probed with ever-new constants (misses are memoised too).
_ID_CACHE_LIMIT = 65536


def encode_term_record(term: Term) -> bytes:
    """Encode one term as a self-delimiting snapshot heap record.

    The encoding is injective and deterministic (required for the
    byte-identical round-trip guarantee and for binary-searching the
    record-sorted permutation):

    * ``IRI`` → ``0x00`` + UTF-8 IRI string;
    * ``BlankNode`` → ``0x01`` + UTF-8 label;
    * ``Literal`` → ``0x02`` + u32 length + UTF-8 lexical form + one
      sub-tag byte (plain / language / datatype) + UTF-8 tag payload.
    """
    if isinstance(term, IRI):
        return bytes((KIND_IRI,)) + term.value.encode("utf-8")
    if isinstance(term, BlankNode):
        return bytes((KIND_BLANK,)) + term.label.encode("utf-8")
    if isinstance(term, Literal):
        lexical = term.lexical.encode("utf-8")
        if term.language is not None:
            tag, payload = _LIT_LANG, term.language.encode("utf-8")
        elif term.datatype is not None:
            tag, payload = _LIT_DATATYPE, term.datatype.encode("utf-8")
        else:
            tag, payload = _LIT_PLAIN, b""
        return (
            bytes((KIND_LITERAL,))
            + _U32.pack(len(lexical))
            + lexical
            + bytes((tag,))
            + payload
        )
    raise StoreError(f"Cannot encode non-term value: {term!r}")


def decode_term_record(record) -> Term:
    """Rebuild the term encoded by :func:`encode_term_record`.

    Accepts any bytes-like object (a ``memoryview`` slice of the mmap'd
    heap on the lazy decode path).
    """
    record = bytes(record)
    if not record:
        raise StoreError("Empty term record")
    kind = record[0]
    if kind == KIND_IRI:
        return IRI(record[1:].decode("utf-8"))
    if kind == KIND_BLANK:
        return BlankNode(record[1:].decode("utf-8"))
    if kind == KIND_LITERAL:
        (lexical_len,) = _U32.unpack_from(record, 1)
        lexical = record[5 : 5 + lexical_len].decode("utf-8")
        tag = record[5 + lexical_len]
        payload = record[6 + lexical_len :].decode("utf-8")
        if tag == _LIT_LANG:
            return Literal(lexical, language=payload)
        if tag == _LIT_DATATYPE:
            return Literal(lexical, datatype=payload)
        if tag == _LIT_PLAIN:
            return Literal(lexical)
    raise StoreError(f"Malformed term record (kind byte {kind})")


class _InternMap(dict):
    """A ``Term -> ID`` dict that interns unknown terms on subscript miss.

    Lookups of already-interned terms — the overwhelming majority during
    bulk loads — stay entirely in C (`dict.__getitem__`); only a genuine
    miss drops into :meth:`__missing__` to assign the next dense ID and
    record the term and its kind byte.
    """

    __slots__ = ("_terms", "_kinds")

    def __init__(self, terms: List[Term], kinds: bytearray):
        super().__init__()
        self._terms = terms
        self._kinds = kinds

    def __missing__(self, term: Term) -> int:
        if isinstance(term, IRI):
            kind = KIND_IRI
        elif isinstance(term, Literal):
            kind = KIND_LITERAL
        elif isinstance(term, BlankNode):
            kind = KIND_BLANK
        else:
            raise StoreError(f"Cannot intern non-term value: {term!r}")
        tid = len(self._terms)
        self[term] = tid
        self._terms.append(term)
        self._kinds.append(kind)
        return tid


class TermDictionary:
    """A bidirectional mapping ``Term <-> dense integer ID``.

    The forward direction (:meth:`encode`) interns: unknown terms are
    assigned the next free ID.  The reverse direction (:meth:`decode`) is a
    list lookup.  A per-ID kind byte answers "is this a literal/entity?"
    without materialising the term — the statistics layer relies on this.
    """

    __slots__ = ("_ids", "_terms", "_kinds")

    def __init__(self) -> None:
        self._terms: List[Term] = []
        self._kinds = bytearray()
        self._ids: _InternMap = _InternMap(self._terms, self._kinds)

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: object) -> bool:
        return term in self._ids

    def __repr__(self) -> str:
        return f"TermDictionary(size={len(self._terms)})"

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode(self, term: Term) -> int:
        """Intern ``term``, returning its (possibly fresh) ID."""
        return self._ids[term]

    def id_for(self, term: Term) -> Optional[int]:
        """The ID of ``term`` without interning; ``None`` if unknown."""
        return self._ids.get(term)

    @property
    def ids_map(self) -> Dict[Term, int]:
        """The raw interning ``Term -> ID`` mapping.

        Exposed so hot paths can intern (subscript) or probe (``.get``)
        without a method call per term.  Subscripting interns on miss;
        callers must not mutate it any other way.
        """
        return self._ids

    def encode_triple(self, triple: Triple) -> Tuple[int, int, int]:
        """Intern all three positions of ``triple``."""
        return (
            self.encode(triple.subject),
            self.encode(triple.predicate),
            self.encode(triple.object),
        )

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode(self, tid: int) -> Term:
        """The term interned under ``tid``.

        Raises
        ------
        StoreError
            If ``tid`` was never assigned.
        """
        try:
            return self._terms[tid]
        except IndexError:
            raise StoreError(f"Unknown term ID: {tid}") from None

    def decode_triple(self, ids: Tuple[int, int, int]) -> Triple:
        """Rebuild a :class:`Triple` from an ID triple."""
        terms = self._terms
        return Triple(terms[ids[0]], terms[ids[1]], terms[ids[2]])  # type: ignore[arg-type]

    def terms(self) -> Iterator[Term]:
        """All interned terms, in ID order."""
        return iter(self._terms)

    # ------------------------------------------------------------------ #
    # Kind queries (no term materialisation)
    # ------------------------------------------------------------------ #
    def kind(self, tid: int) -> int:
        """The kind tag (:data:`KIND_IRI` / `KIND_BLANK` / `KIND_LITERAL`)."""
        try:
            return self._kinds[tid]
        except IndexError:
            raise StoreError(f"Unknown term ID: {tid}") from None

    def is_literal_id(self, tid: int) -> bool:
        """Whether ``tid`` denotes a literal."""
        return self._kinds[tid] == KIND_LITERAL

    def is_entity_id(self, tid: int) -> bool:
        """Whether ``tid`` denotes an IRI or blank node."""
        return self._kinds[tid] != KIND_LITERAL

    # ------------------------------------------------------------------ #
    # Snapshot serialisation
    # ------------------------------------------------------------------ #
    def snapshot_columns(self) -> Tuple[bytes, object, bytes, object]:
        """The dictionary's snapshot sections.

        Returns ``(heap, offsets, kinds, lookup)``: the concatenated term
        records in ID order, the ``n + 1`` record-boundary offsets, the
        per-ID kind bytes, and the ID permutation sorted by record bytes
        (what :meth:`LazyTermDictionary.id_for` binary-searches).  The
        output is deterministic for a given term sequence, which is what
        makes saving an unmutated reopened store byte-identical.
        """
        from array import array

        heap = bytearray()
        offsets = array("q", [0])
        records: List[bytes] = []
        for term in self.terms():
            record = encode_term_record(term)
            records.append(record)
            heap += record
            offsets.append(len(heap))
        lookup = array("q", sorted(range(len(records)), key=records.__getitem__))
        return bytes(heap), offsets, bytes(self._kinds), lookup


class LazyTermDictionary(TermDictionary):
    """A read-only :class:`TermDictionary` view over snapshot sections.

    Construction is O(1) in the number of interned terms (one ``None``
    placeholder list aside): no record is parsed and no ``Term`` object is
    built until something asks for it.

    * :meth:`decode` parses the requested record from the heap on first
      use and memoises the term per ID;
    * :meth:`id_for` binary-searches the record-sorted ID permutation,
      comparing raw heap bytes — O(log n) probes, no interning;
    * the first call that must *intern* (``encode`` of an unknown term, or
      grabbing :attr:`ids_map` for a staging loop) transparently
      **promotes** the dictionary: every record is decoded once and the
      writable ``Term -> ID`` map is built, after which behaviour is
      exactly that of a warm :class:`TermDictionary`.
    """

    __slots__ = (
        "_heap",
        "_offsets",
        "_lookup",
        "_id_cache",
        "_promoted",
        "_base_count",
        "_tail_heap",
        "_tail_offsets",
        "_tail_kinds",
        "_tail_ids",
    )

    def __init__(
        self,
        heap: memoryview,
        offsets: memoryview,
        kinds: memoryview,
        lookup: memoryview,
    ):
        count = len(offsets) - 1
        if count < 0 or len(kinds) != count or len(lookup) != count:
            raise StoreError("Inconsistent dictionary snapshot sections")
        self._heap = heap
        self._offsets = offsets
        self._lookup = lookup
        # Memoised id_for results (misses included): the SPARQL evaluator
        # re-resolves a query's constant terms once per pattern probe, so
        # without this every probe would repeat the O(log n) record
        # search.  Safe because the dictionary is immutable until
        # promotion, and superseded by the real interning map afterwards.
        self._id_cache: Dict[Term, Optional[int]] = {}
        self._terms = [None] * count  # type: ignore[list-item]
        self._kinds = kinds  # type: ignore[assignment]
        self._ids = _InternMap([], bytearray())  # replaced on promotion
        self._promoted = False
        # Snapshot-delta tail: records appended by extend_tail() past the
        # base sections.  The tail stays outside the record-sorted lookup
        # permutation (recomputing it would be O(n log n) and defeat the
        # O(1 + tail) delta reopen); id_for consults the small exact-match
        # map for tail IDs instead.
        self._base_count = count
        self._tail_heap = bytearray()
        self._tail_offsets: List[int] = [0]
        self._tail_kinds = bytearray()
        self._tail_ids: Dict[bytes, int] = {}

    @property
    def is_promoted(self) -> bool:
        """Whether the writable interning map has been built."""
        return self._promoted

    def _record(self, tid: int):
        if tid < self._base_count:
            return self._heap[self._offsets[tid] : self._offsets[tid + 1]]
        index = tid - self._base_count
        return memoryview(self._tail_heap)[
            self._tail_offsets[index] : self._tail_offsets[index + 1]
        ]

    def extend_tail(self, heap, offsets, kinds) -> None:
        """Append snapshot-delta term records past the current ID space.

        ``heap``/``offsets``/``kinds`` have the same layout as the base
        dictionary sections (``offsets`` holds ``n + 1`` boundaries
        starting at 0).  The records receive the next dense IDs in order
        — exactly the IDs they held when the delta was written, which the
        persist layer validates via the delta's recorded base term count.
        Unpromoted, the tail is indexed by an exact-record map (the
        base lookup permutation is left untouched); a promoted dictionary
        interns the decoded terms directly.
        """
        count = len(offsets) - 1
        if count <= 0:
            return
        if self._promoted:
            ids = self._ids
            for index in range(count):
                ids[decode_term_record(heap[offsets[index] : offsets[index + 1]])]
            return
        start = len(self._terms)
        grown = len(self._tail_heap)
        self._tail_heap += bytes(heap)
        tail_offsets = self._tail_offsets
        for index in range(count):
            tail_offsets.append(grown + offsets[index + 1])
        self._tail_kinds += bytes(kinds)
        self._terms.extend([None] * count)
        tail_ids = self._tail_ids
        for index in range(count):
            tail_ids[bytes(self._record(start + index))] = start + index

    @property
    def has_tail(self) -> bool:
        """Whether delta term records were appended past the base sections."""
        return len(self._tail_offsets) > 1

    def _promote(self) -> None:
        """Build the writable interning state (idempotent)."""
        if self._promoted:
            return
        terms = self._terms
        for tid in range(len(terms)):
            if terms[tid] is None:
                terms[tid] = decode_term_record(self._record(tid))
        kinds = bytearray(self._kinds)
        kinds += self._tail_kinds
        ids = _InternMap(terms, kinds)
        ids.update((term, tid) for tid, term in enumerate(terms))
        self._kinds = kinds
        self._ids = ids
        self._promoted = True

    # -- encoding ------------------------------------------------------ #
    def encode(self, term: Term) -> int:
        tid = self.id_for(term)
        if tid is not None:
            return tid
        self._promote()
        return self._ids[term]

    def id_for(self, term: Term) -> Optional[int]:
        if self._promoted:
            return self._ids.get(term)
        cache = self._id_cache
        if term in cache:
            return cache[term]
        try:
            record = encode_term_record(term)
        except StoreError:
            return None  # non-term probe: the warm dict.get returns None too
        if self._tail_ids:
            tail_tid = self._tail_ids.get(record)
            if tail_tid is not None:
                cache[term] = tail_tid
                return tail_tid
        lookup = self._lookup
        low, high = 0, len(lookup)
        while low < high:
            mid = (low + high) // 2
            if bytes(self._record(lookup[mid])) < record:
                low = mid + 1
            else:
                high = mid
        tid: Optional[int] = None
        if low < len(lookup):
            candidate = lookup[low]
            if self._record(candidate) == record:
                tid = candidate
        if len(cache) >= _ID_CACHE_LIMIT:
            cache.clear()  # memo only — dropping it costs re-probes, not answers
        cache[term] = tid
        return tid

    @property
    def ids_map(self) -> Dict[Term, int]:
        self._promote()
        return self._ids

    def __contains__(self, term: object) -> bool:
        if self._promoted:
            return term in self._ids
        return self.id_for(term) is not None  # type: ignore[arg-type]

    # -- kind queries --------------------------------------------------- #
    def kind(self, tid: int) -> int:
        if not self._promoted and tid >= self._base_count:
            try:
                return self._tail_kinds[tid - self._base_count]
            except IndexError:
                raise StoreError(f"Unknown term ID: {tid}") from None
        return super().kind(tid)

    def is_literal_id(self, tid: int) -> bool:
        kinds = self._kinds
        if self._promoted or tid < len(kinds):
            return kinds[tid] == KIND_LITERAL
        return self._tail_kinds[tid - self._base_count] == KIND_LITERAL

    def is_entity_id(self, tid: int) -> bool:
        return not self.is_literal_id(tid)

    # -- decoding ------------------------------------------------------ #
    def decode(self, tid: int) -> Term:
        try:
            term = self._terms[tid]
        except IndexError:
            raise StoreError(f"Unknown term ID: {tid}") from None
        if term is None:
            term = decode_term_record(self._record(tid))
            self._terms[tid] = term
        return term

    def decode_triple(self, ids: Tuple[int, int, int]) -> Triple:
        decode = self.decode
        return Triple(decode(ids[0]), decode(ids[1]), decode(ids[2]))  # type: ignore[arg-type]

    def terms(self) -> Iterator[Term]:
        return (self.decode(tid) for tid in range(len(self._terms)))

    # -- serialisation ------------------------------------------------- #
    def snapshot_columns(self) -> Tuple[bytes, object, bytes, object]:
        """Snapshot sections; raw views are passed through unpromoted.

        An unpromoted lazy dictionary hands back its original section
        bytes verbatim (no record is decoded), which both keeps resaving a
        cold store cheap and guarantees byte identity.  With a delta tail
        the heap/offsets/kinds concatenate (still no Term is decoded) and
        only the lookup permutation is recomputed over raw record bytes —
        the deterministic output a warm dictionary holding the same terms
        would produce.  Once promoted it falls back to the generic
        deterministic builder.
        """
        from array import array

        if self._promoted:
            return super().snapshot_columns()
        if not self.has_tail:
            return bytes(self._heap), self._offsets, bytes(self._kinds), self._lookup
        base_len = len(self._heap)
        heap = bytes(self._heap) + bytes(self._tail_heap)
        offsets = array("q", self._offsets)
        offsets.extend(base_len + bound for bound in self._tail_offsets[1:])
        kinds = bytes(self._kinds) + bytes(self._tail_kinds)
        lookup = array(
            "q",
            sorted(
                range(len(self._terms)),
                key=lambda tid: bytes(self._record(tid)),
            ),
        )
        return heap, offsets, kinds, lookup
