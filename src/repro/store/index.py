"""Hash-based permutation index for triples.

A :class:`TripleIndex` maps a *key* term to a nested mapping of the second
term to a set of third terms.  Three instances with different orderings
(SPO, POS, OSP) give the store constant-time dispatch for every pattern
shape.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from repro.rdf.terms import Term


class TripleIndex:
    """A two-level nested index: ``key -> second -> {third}``.

    The meaning of the three positions is decided by the caller (the store
    uses subject/predicate/object permutations).  The index stores plain
    terms, not :class:`~repro.rdf.triple.Triple` objects, so the same class
    serves all permutations.
    """

    __slots__ = ("_index", "_size")

    def __init__(self) -> None:
        self._index: Dict[Term, Dict[Term, Set[Term]]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, key: Term, second: Term, third: Term) -> bool:
        """Insert an entry.  Returns ``True`` if it was not already present."""
        by_second = self._index.get(key)
        if by_second is None:
            by_second = {}
            self._index[key] = by_second
        thirds = by_second.get(second)
        if thirds is None:
            thirds = set()
            by_second[second] = thirds
        if third in thirds:
            return False
        thirds.add(third)
        self._size += 1
        return True

    def remove(self, key: Term, second: Term, third: Term) -> bool:
        """Remove an entry.  Returns ``True`` if it was present."""
        by_second = self._index.get(key)
        if by_second is None:
            return False
        thirds = by_second.get(second)
        if thirds is None or third not in thirds:
            return False
        thirds.remove(third)
        self._size -= 1
        if not thirds:
            del by_second[second]
        if not by_second:
            del self._index[key]
        return True

    def contains(self, key: Term, second: Term, third: Term) -> bool:
        """Membership test for a fully specified entry."""
        by_second = self._index.get(key)
        if by_second is None:
            return False
        thirds = by_second.get(second)
        return thirds is not None and third in thirds

    def keys(self) -> Iterator[Term]:
        """Iterate over all distinct keys."""
        return iter(self._index)

    def seconds(self, key: Term) -> Iterator[Term]:
        """Iterate over the distinct second terms under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return iter(())
        return iter(by_second)

    def thirds(self, key: Term, second: Term) -> Iterator[Term]:
        """Iterate over the third terms under ``(key, second)``."""
        by_second = self._index.get(key)
        if by_second is None:
            return iter(())
        thirds = by_second.get(second)
        if thirds is None:
            return iter(())
        return iter(thirds)

    def pairs(self, key: Term) -> Iterator[Tuple[Term, Term]]:
        """Iterate over ``(second, third)`` pairs under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return
        for second, thirds in by_second.items():
            for third in thirds:
                yield second, third

    def triples(self) -> Iterator[Tuple[Term, Term, Term]]:
        """Iterate over every ``(key, second, third)`` entry."""
        for key, by_second in self._index.items():
            for second, thirds in by_second.items():
                for third in thirds:
                    yield key, second, third

    def key_count(self) -> int:
        """Number of distinct keys."""
        return len(self._index)

    def count_for_key(self, key: Term) -> int:
        """Number of entries under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return 0
        return sum(len(thirds) for thirds in by_second.values())

    def second_count_for_key(self, key: Term) -> int:
        """Number of distinct second terms under ``key``."""
        by_second = self._index.get(key)
        return 0 if by_second is None else len(by_second)

    def has_key(self, key: Term) -> bool:
        """Whether any entry exists under ``key``."""
        return key in self._index

    def clear(self) -> None:
        """Remove all entries."""
        self._index.clear()
        self._size = 0
