"""Permutation indexes for triples.

Three index families live here:

* :class:`IdTripleIndex` — the store's writable workhorse since the
  dictionary encoding refactor: a two-level nested index over **integer
  term IDs**, ``key -> second -> sorted array of thirds``.  Integer keys
  hash and compare in a few nanoseconds, and the sorted third-level
  (:class:`SortedList`, a bisect-maintained ``list`` subclass) keeps
  bisect membership, range iteration and sort-merge joins cheap.
* :class:`FrozenIdIndex` — the read-only columnar twin used by cold-opened
  snapshots (:mod:`repro.store.persist`): the same logical mapping laid
  out as five sorted int64 columns in CSR form, viewed through
  :class:`ColumnView` windows over either in-memory bytes or an ``mmap``.
  It answers the exact bookkeeping API of :class:`IdTripleIndex`
  (``count_for_key`` / ``third_count`` / ``sorted_thirds`` / ...) without
  materialising any Python container, so the planner and the join
  operators run unchanged on a store that was never rebuilt in memory.
* :class:`TripleIndex` — the original hash-based index over full
  :class:`~repro.rdf.terms.Term` objects, kept as a standalone utility (it
  is generic over any hashable key and still used by external callers and
  tests).

Three instances with different orderings (SPO, POS, OSP) give the store
constant-time dispatch for every pattern shape.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterator, Set, Tuple

from repro.rdf.terms import Term


class SortedList(list):
    """A bisect-maintained sorted ``list`` of integers.

    The third-level runs of this store are short (objects per
    ``(subject, predicate)``, subjects per ``(predicate, object)``, ...),
    so a plain list with C-level ``insort`` beats chunked sorted-container
    libraries by a wide margin here — and, crucially for the columnar bulk
    loader, constructing one from an already-sorted run is a plain list
    copy (Timsort recognises sorted input in O(n)).
    """

    __slots__ = ()

    def __init__(self, iterable=()):
        super().__init__(iterable)
        self.sort()

    def add(self, value):
        """Insert ``value`` keeping the list sorted."""
        insort(self, value)

    def update(self, iterable):
        """Merge new values in (one sort instead of one insort per value)."""
        self.extend(iterable)
        self.sort()

    def remove(self, value):
        """Remove ``value``; raises ``ValueError`` when absent."""
        index = bisect_left(self, value)
        if index >= len(self) or self[index] != value:
            raise ValueError(f"{value!r} not in list")
        del self[index]

    def __contains__(self, value):
        index = bisect_left(self, value)
        return index < len(self) and self[index] == value


class IdTripleIndex:
    """A two-level nested index over integer IDs: ``key -> second -> [thirds]``.

    The meaning of the three positions is decided by the caller (the store
    uses subject/predicate/object permutations).  The third level is a
    sorted integer sequence, so membership is a bisect and iteration yields
    IDs in sorted (therefore deterministic) order.
    """

    __slots__ = ("_index", "_size", "_key_counts")

    def __init__(self) -> None:
        self._index: Dict[int, Dict[int, SortedList]] = {}
        self._size = 0
        self._key_counts: Dict[int, int] = {}

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, key: int, second: int, third: int) -> bool:
        """Insert an entry.  Returns ``True`` if it was not already present."""
        by_second = self._index.get(key)
        if by_second is None:
            by_second = {}
            self._index[key] = by_second
        thirds = by_second.get(second)
        if thirds is None:
            thirds = SortedList()
            by_second[second] = thirds
        elif third in thirds:
            return False
        thirds.add(third)
        self._size += 1
        self._key_counts[key] = self._key_counts.get(key, 0) + 1
        return True

    def remove(self, key: int, second: int, third: int) -> bool:
        """Remove an entry.  Returns ``True`` if it was present."""
        by_second = self._index.get(key)
        if by_second is None:
            return False
        thirds = by_second.get(second)
        if thirds is None or third not in thirds:
            return False
        thirds.remove(third)
        self._size -= 1
        remaining = self._key_counts[key] - 1
        if remaining:
            self._key_counts[key] = remaining
        else:
            del self._key_counts[key]
        if not thirds:
            del by_second[second]
        if not by_second:
            del self._index[key]
        return True

    def bulk_extend(self, entries: "list[Tuple[int, int, int]]") -> None:
        """Extend from a **sorted, deduplicated** run of new entries.

        The columnar bulk-load path: ``entries`` must be sorted by
        ``(key, second, third)`` and contain no entry already present in
        the index (the store dedupes against its flat triple map before
        calling this).  Each ``(key, second)`` group is contiguous, so the
        third-level containers are assembled by appending in sorted order
        — no bisect insertion, no re-sort, no intermediate copies.  The
        steady-state cost per entry is one unpack, two comparisons and one
        C-level append; group/key bookkeeping only runs at boundaries.
        """
        if not entries:
            return
        index = self._index
        key_counts = self._key_counts
        make_run = SortedList.__new__

        iterator = iter(entries)
        current_key, current_second, third = next(iterator)
        run = make_run(SortedList)
        run.append(third)
        by_second = index.get(current_key)
        if by_second is None:
            by_second = index[current_key] = {}
        added_for_key = 0

        for key, second, third in iterator:
            if key == current_key and second == current_second:
                run.append(third)
                continue
            existing = by_second.get(current_second)
            if existing is None:
                by_second[current_second] = run
            else:
                existing.update(run)
            added_for_key += len(run)
            run = make_run(SortedList)
            run.append(third)
            current_second = second
            if key != current_key:
                key_counts[current_key] = key_counts.get(current_key, 0) + added_for_key
                added_for_key = 0
                current_key = key
                by_second = index.get(key)
                if by_second is None:
                    by_second = index[key] = {}
        existing = by_second.get(current_second)
        if existing is None:
            by_second[current_second] = run
        else:
            existing.update(run)
        added_for_key += len(run)
        key_counts[current_key] = key_counts.get(current_key, 0) + added_for_key
        self._size += len(entries)

    def bulk_extend_grouped(
        self,
        keys: "list[int]",
        seconds: "list[int]",
        bounds: "list[int]",
        thirds: "list[int]",
    ) -> None:
        """Extend from pre-grouped sorted runs (vectorised bulk-load path).

        ``keys[g]`` / ``seconds[g]`` identify group ``g``; its third IDs are
        ``thirds[bounds[g]:bounds[g + 1]]``, already sorted and all new to
        the index.  The caller (the store's numpy-backed column sorter) has
        done the per-entry work in C, so this loop only runs per *group*.
        """
        if not keys:
            return
        index = self._index
        key_counts = self._key_counts
        make_run = SortedList.__new__
        extend = list.extend
        append = list.append

        current_key = keys[0]
        by_second = index.get(current_key)
        if by_second is None:
            by_second = index[current_key] = {}
        added_for_key = 0
        start = bounds[0]
        for key, second, end in zip(keys, seconds, bounds[1:]):
            if key != current_key:
                key_counts[current_key] = key_counts.get(current_key, 0) + added_for_key
                added_for_key = 0
                current_key = key
                by_second = index.get(key)
                if by_second is None:
                    by_second = index[key] = {}
            existing = by_second.get(second)
            if existing is None:
                run = make_run(SortedList)
                if end - start == 1:  # singleton groups dominate: skip the slice
                    append(run, thirds[start])
                else:
                    extend(run, thirds[start:end])
                by_second[second] = run
            else:
                existing.update(thirds[start:end])
            added_for_key += end - start
            start = end
        key_counts[current_key] = key_counts.get(current_key, 0) + added_for_key
        self._size += len(thirds)

    def clear(self) -> None:
        """Remove all entries."""
        self._index.clear()
        self._key_counts.clear()
        self._size = 0

    def csr_columns(self):
        """The index content as the five sorted CSR snapshot columns.

        Returns ``(keys, key_groups, seconds, group_starts, thirds)`` as
        ``array('q')`` values in the exact layout :class:`FrozenIdIndex`
        consumes (keys ascending, seconds ascending per key, thirds
        already sorted per group) — the snapshot writer serialises these
        verbatim.
        """
        from array import array

        keys = array("q")
        key_groups = array("q", [0])
        seconds = array("q")
        group_starts = array("q", [0])
        thirds = array("q")
        index = self._index
        for key in sorted(index):
            by_second = index[key]
            for second in sorted(by_second):
                seconds.append(second)
                thirds.extend(by_second[second])
                group_starts.append(len(thirds))
            keys.append(key)
            key_groups.append(len(seconds))
        return keys, key_groups, seconds, group_starts, thirds

    def key_columns(self, key: int):
        """One key's entries as CSR run columns: ``(seconds, bounds, thirds)``.

        ``seconds[g]`` is group ``g``'s second ID (ascending); its sorted
        thirds are ``thirds[bounds[g] - bounds[0] : bounds[g + 1] - bounds[0]]``
        (``bounds`` has ``len(seconds) + 1`` entries and may be rebased —
        the frozen twin hands out absolute snapshot offsets).  The block
        join kernels consume these as numpy views; for the writable index
        the columns are assembled per call with C-level extends, so the
        cost is O(groups) Python plus O(entries) C.
        """
        from array import array

        seconds = array("q")
        bounds = array("q", [0])
        thirds = array("q")
        by_second = self._index.get(key)
        if by_second is not None:
            for second in sorted(by_second):
                seconds.append(second)
                thirds.extend(by_second[second])
                bounds.append(len(thirds))
        return seconds, bounds, thirds

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def contains(self, key: int, second: int, third: int) -> bool:
        """Membership test for a fully specified entry."""
        by_second = self._index.get(key)
        if by_second is None:
            return False
        thirds = by_second.get(second)
        return thirds is not None and third in thirds

    def keys(self) -> Iterator[int]:
        """Iterate over all distinct keys."""
        return iter(self._index)

    def seconds(self, key: int) -> Iterator[int]:
        """Iterate over the distinct second IDs under ``key``."""
        by_second = self._index.get(key)
        return iter(()) if by_second is None else iter(by_second)

    def thirds(self, key: int, second: int) -> Iterator[int]:
        """Iterate over the third IDs under ``(key, second)`` in sorted order."""
        by_second = self._index.get(key)
        if by_second is None:
            return iter(())
        thirds = by_second.get(second)
        return iter(()) if thirds is None else iter(thirds)

    def sorted_thirds(self, key: int, second: int):
        """The sorted third-level container under ``(key, second)``.

        Returns the container itself (or an empty tuple) so merge joins can
        walk the run without copying.  Callers must not mutate it.
        """
        by_second = self._index.get(key)
        if by_second is None:
            return ()
        return by_second.get(second, ())

    def pairs(self, key: int) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(second, third)`` pairs under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return
        for second, thirds in by_second.items():
            for third in thirds:
                yield second, third

    def items_for_key(self, key: int) -> Iterator[Tuple[int, SortedList]]:
        """Iterate over ``(second, thirds)`` groups under ``key``.

        Exposes the sorted third-level containers directly so callers can
        take ``len`` per group without iterating entries (the statistics
        layer uses this for literal-object counts).
        """
        by_second = self._index.get(key)
        if by_second is None:
            return iter(())
        return iter(by_second.items())

    def triples(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over every ``(key, second, third)`` entry."""
        for key, by_second in self._index.items():
            for second, thirds in by_second.items():
                for third in thirds:
                    yield key, second, third

    # ------------------------------------------------------------------ #
    # Counting (no materialisation)
    # ------------------------------------------------------------------ #
    def key_count(self) -> int:
        """Number of distinct keys."""
        return len(self._index)

    def count_for_key(self, key: int) -> int:
        """Number of entries under ``key`` — O(1) from maintained counts."""
        return self._key_counts.get(key, 0)

    def second_count_for_key(self, key: int) -> int:
        """Number of distinct second IDs under ``key``."""
        by_second = self._index.get(key)
        return 0 if by_second is None else len(by_second)

    def third_count(self, key: int, second: int) -> int:
        """Number of entries under ``(key, second)`` — a pure index lookup."""
        by_second = self._index.get(key)
        if by_second is None:
            return 0
        thirds = by_second.get(second)
        return 0 if thirds is None else len(thirds)

    def distinct_third_count(self, key: int) -> int:
        """Number of distinct third IDs across all seconds under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return 0
        if len(by_second) == 1:
            return len(next(iter(by_second.values())))
        distinct: Set[int] = set()
        for thirds in by_second.values():
            distinct.update(thirds)
        return len(distinct)

    def has_key(self, key: int) -> bool:
        """Whether any entry exists under ``key``."""
        return key in self._index


class ColumnView:
    """A read-only window onto a run of little-endian int64 IDs.

    The snapshot layer hands these out wherever the writable store would
    hand out a :class:`SortedList`: the underlying storage is a
    ``memoryview`` cast to ``'q'`` — over a ``bytes`` buffer or an
    ``mmap`` — so iteration and indexing run at C speed and slicing never
    copies.  Views returned from :meth:`FrozenIdIndex.sorted_thirds` are
    sorted ascending; ``in`` relies on that (bisect probe, like
    :class:`SortedList`).
    """

    __slots__ = ("mv",)

    def __init__(self, mv: memoryview):
        #: The backing int64 memoryview (exposed so hot paths — bisect,
        #: iteration — can work on the raw view without a method call).
        self.mv = mv

    def __len__(self) -> int:
        return len(self.mv)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return ColumnView(self.mv[item])
        return self.mv[item]

    def __iter__(self):
        return iter(self.mv)

    def __contains__(self, value) -> bool:
        mv = self.mv
        index = bisect_left(mv, value)
        return index < len(mv) and mv[index] == value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnView):
            return self.mv == other.mv
        if isinstance(other, (list, tuple)):
            return len(other) == len(self.mv) and all(
                a == b for a, b in zip(self.mv, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        preview = ", ".join(map(str, self.mv[:6]))
        suffix = ", ..." if len(self.mv) > 6 else ""
        return f"ColumnView([{preview}{suffix}], len={len(self.mv)})"

    def tolist(self) -> "list[int]":
        """Materialise the window as a plain list (promotion paths only)."""
        return self.mv.tolist()


class FrozenIdIndex:
    """A read-only :class:`IdTripleIndex` over CSR-laid-out ID columns.

    The five columns describe one permutation's entries sorted by
    ``(key, second, third)``:

    * ``keys[i]`` — the i-th distinct key, ascending;
    * ``key_groups[i] : key_groups[i + 1]`` — that key's group range;
    * ``seconds[g]`` — group ``g``'s second ID (ascending per key);
    * ``group_starts[g] : group_starts[g + 1]`` — group ``g``'s run
      bounds in ``thirds``;
    * ``thirds`` — all third IDs, ascending within each group.

    Every lookup is a bisect over a raw int64 ``memoryview`` (C-level
    ``__getitem__``), so probes cost O(log n) with tiny constants and the
    structure needs no Python dicts or lists at all — opening a snapshot
    builds exactly five views, independent of the KB size.  The writable
    store promotes ("thaws") one of these into an :class:`IdTripleIndex`
    via :meth:`groups` + :meth:`IdTripleIndex.bulk_extend_grouped` the
    first time a mutation touches it.
    """

    __slots__ = ("_keys", "_key_groups", "_seconds", "_group_starts", "_thirds")

    def __init__(
        self,
        keys: memoryview,
        key_groups: memoryview,
        seconds: memoryview,
        group_starts: memoryview,
        thirds: memoryview,
    ):
        self._keys = keys
        self._key_groups = key_groups
        self._seconds = seconds
        self._group_starts = group_starts
        self._thirds = thirds

    def __len__(self) -> int:
        return len(self._thirds)

    # ------------------------------------------------------------------ #
    # Internal slot lookups
    # ------------------------------------------------------------------ #
    def _key_slot(self, key: int) -> int:
        """Position of ``key`` in the keys column, or ``-1``."""
        keys = self._keys
        slot = bisect_left(keys, key)
        if slot < len(keys) and keys[slot] == key:
            return slot
        return -1

    def _group_slot(self, key: int, second: int) -> int:
        """Group index of ``(key, second)``, or ``-1``."""
        slot = self._key_slot(key)
        if slot < 0:
            return -1
        seconds = self._seconds
        start = self._key_groups[slot]
        end = self._key_groups[slot + 1]
        group = bisect_left(seconds, second, start, end)
        if group < end and seconds[group] == second:
            return group
        return -1

    # ------------------------------------------------------------------ #
    # Lookup (mirrors IdTripleIndex)
    # ------------------------------------------------------------------ #
    def contains(self, key: int, second: int, third: int) -> bool:
        """Membership test for a fully specified entry."""
        group = self._group_slot(key, second)
        if group < 0:
            return False
        thirds = self._thirds
        start = self._group_starts[group]
        end = self._group_starts[group + 1]
        slot = bisect_left(thirds, third, start, end)
        return slot < end and thirds[slot] == third

    def keys(self) -> Iterator[int]:
        """Iterate over all distinct keys (ascending)."""
        return iter(self._keys)

    def seconds(self, key: int) -> Iterator[int]:
        """Iterate over the distinct second IDs under ``key`` (ascending)."""
        slot = self._key_slot(key)
        if slot < 0:
            return iter(())
        return iter(self._seconds[self._key_groups[slot] : self._key_groups[slot + 1]])

    def thirds(self, key: int, second: int) -> Iterator[int]:
        """Iterate over the third IDs under ``(key, second)`` in sorted order."""
        group = self._group_slot(key, second)
        if group < 0:
            return iter(())
        return iter(
            self._thirds[self._group_starts[group] : self._group_starts[group + 1]]
        )

    def sorted_thirds(self, key: int, second: int):
        """The sorted third-level run under ``(key, second)`` (no copy)."""
        group = self._group_slot(key, second)
        if group < 0:
            return ()
        return ColumnView(
            self._thirds[self._group_starts[group] : self._group_starts[group + 1]]
        )

    def key_columns(self, key: int):
        """One key's entries as CSR run columns: ``(seconds, bounds, thirds)``.

        Same contract as :meth:`IdTripleIndex.key_columns`, but answered
        with zero-copy windows over the snapshot columns; ``bounds`` keeps
        its absolute offsets (callers rebase against ``bounds[0]``).
        """
        slot = self._key_slot(key)
        if slot < 0:
            from array import array

            return array("q"), array("q", [0]), array("q")
        group_start = self._key_groups[slot]
        group_end = self._key_groups[slot + 1]
        run_start = self._group_starts[group_start]
        run_end = self._group_starts[group_end]
        return (
            self._seconds[group_start:group_end],
            self._group_starts[group_start : group_end + 1],
            self._thirds[run_start:run_end],
        )

    def pairs(self, key: int) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(second, third)`` pairs under ``key``."""
        slot = self._key_slot(key)
        if slot < 0:
            return
        seconds = self._seconds
        group_starts = self._group_starts
        thirds = self._thirds
        for group in range(self._key_groups[slot], self._key_groups[slot + 1]):
            second = seconds[group]
            for third in thirds[group_starts[group] : group_starts[group + 1]]:
                yield second, third

    def items_for_key(self, key: int) -> Iterator[Tuple[int, ColumnView]]:
        """Iterate over ``(second, sorted thirds view)`` groups under ``key``."""
        slot = self._key_slot(key)
        if slot < 0:
            return iter(())
        return self._iter_items(slot)

    def _iter_items(self, slot: int) -> Iterator[Tuple[int, ColumnView]]:
        seconds = self._seconds
        group_starts = self._group_starts
        thirds = self._thirds
        for group in range(self._key_groups[slot], self._key_groups[slot + 1]):
            yield seconds[group], ColumnView(
                thirds[group_starts[group] : group_starts[group + 1]]
            )

    def triples(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over every ``(key, second, third)`` entry (sorted)."""
        keys = self._keys
        key_groups = self._key_groups
        seconds = self._seconds
        group_starts = self._group_starts
        thirds = self._thirds
        for slot in range(len(keys)):
            key = keys[slot]
            for group in range(key_groups[slot], key_groups[slot + 1]):
                second = seconds[group]
                for third in thirds[group_starts[group] : group_starts[group + 1]]:
                    yield key, second, third

    # ------------------------------------------------------------------ #
    # Counting (no materialisation)
    # ------------------------------------------------------------------ #
    def key_count(self) -> int:
        """Number of distinct keys."""
        return len(self._keys)

    def count_for_key(self, key: int) -> int:
        """Number of entries under ``key`` — two bisects and a subtraction."""
        slot = self._key_slot(key)
        if slot < 0:
            return 0
        group_starts = self._group_starts
        return (
            group_starts[self._key_groups[slot + 1]]
            - group_starts[self._key_groups[slot]]
        )

    def second_count_for_key(self, key: int) -> int:
        """Number of distinct second IDs under ``key``."""
        slot = self._key_slot(key)
        if slot < 0:
            return 0
        return self._key_groups[slot + 1] - self._key_groups[slot]

    def third_count(self, key: int, second: int) -> int:
        """Number of entries under ``(key, second)``."""
        group = self._group_slot(key, second)
        if group < 0:
            return 0
        return self._group_starts[group + 1] - self._group_starts[group]

    def distinct_third_count(self, key: int) -> int:
        """Number of distinct third IDs across all seconds under ``key``."""
        slot = self._key_slot(key)
        if slot < 0:
            return 0
        start = self._key_groups[slot]
        end = self._key_groups[slot + 1]
        group_starts = self._group_starts
        thirds = self._thirds
        if end - start == 1:
            return group_starts[start + 1] - group_starts[start]
        distinct: Set[int] = set()
        for group in range(start, end):
            distinct.update(thirds[group_starts[group] : group_starts[group + 1]])
        return len(distinct)

    def has_key(self, key: int) -> bool:
        """Whether any entry exists under ``key``."""
        return self._key_slot(key) >= 0

    # ------------------------------------------------------------------ #
    # Promotion / serialisation support
    # ------------------------------------------------------------------ #
    def columns(self) -> Tuple[memoryview, memoryview, memoryview, memoryview, memoryview]:
        """The five raw CSR columns (keys, key_groups, seconds,
        group_starts, thirds) — the snapshot writer copies these verbatim,
        which is what makes save→open→save byte-identical."""
        return (
            self._keys,
            self._key_groups,
            self._seconds,
            self._group_starts,
            self._thirds,
        )

    def groups(self) -> Tuple["list[int]", "list[int]", "list[int]", "list[int]"]:
        """Group-level runs in :meth:`IdTripleIndex.bulk_extend_grouped` form.

        Returns ``(keys, seconds, bounds, thirds)`` where ``keys[g]`` /
        ``seconds[g]`` identify group ``g`` and its thirds are
        ``thirds[bounds[g]:bounds[g + 1]]`` — the store's thaw path feeds
        this straight into a fresh writable index.
        """
        group_keys: "list[int]" = []
        keys = self._keys
        key_groups = self._key_groups
        for slot in range(len(keys)):
            group_keys.extend([keys[slot]] * (key_groups[slot + 1] - key_groups[slot]))
        return (
            group_keys,
            self._seconds.tolist(),
            self._group_starts.tolist(),
            self._thirds.tolist(),
        )

    def thaw(self) -> IdTripleIndex:
        """A writable :class:`IdTripleIndex` with identical content."""
        index = IdTripleIndex()
        group_keys, seconds, bounds, thirds = self.groups()
        index.bulk_extend_grouped(group_keys, seconds, bounds, thirds)
        return index


class TripleIndex:
    """A two-level nested hash index: ``key -> second -> {third}``.

    The original Term-keyed index.  It is generic over any hashable value,
    so it still serves as a general-purpose three-column index; the store
    itself now runs on :class:`IdTripleIndex` over dictionary IDs.
    """

    __slots__ = ("_index", "_size")

    def __init__(self) -> None:
        self._index: Dict[Term, Dict[Term, Set[Term]]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, key: Term, second: Term, third: Term) -> bool:
        """Insert an entry.  Returns ``True`` if it was not already present."""
        by_second = self._index.get(key)
        if by_second is None:
            by_second = {}
            self._index[key] = by_second
        thirds = by_second.get(second)
        if thirds is None:
            thirds = set()
            by_second[second] = thirds
        if third in thirds:
            return False
        thirds.add(third)
        self._size += 1
        return True

    def remove(self, key: Term, second: Term, third: Term) -> bool:
        """Remove an entry.  Returns ``True`` if it was present."""
        by_second = self._index.get(key)
        if by_second is None:
            return False
        thirds = by_second.get(second)
        if thirds is None or third not in thirds:
            return False
        thirds.remove(third)
        self._size -= 1
        if not thirds:
            del by_second[second]
        if not by_second:
            del self._index[key]
        return True

    def contains(self, key: Term, second: Term, third: Term) -> bool:
        """Membership test for a fully specified entry."""
        by_second = self._index.get(key)
        if by_second is None:
            return False
        thirds = by_second.get(second)
        return thirds is not None and third in thirds

    def keys(self) -> Iterator[Term]:
        """Iterate over all distinct keys."""
        return iter(self._index)

    def seconds(self, key: Term) -> Iterator[Term]:
        """Iterate over the distinct second terms under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return iter(())
        return iter(by_second)

    def thirds(self, key: Term, second: Term) -> Iterator[Term]:
        """Iterate over the third terms under ``(key, second)``."""
        by_second = self._index.get(key)
        if by_second is None:
            return iter(())
        thirds = by_second.get(second)
        if thirds is None:
            return iter(())
        return iter(thirds)

    def pairs(self, key: Term) -> Iterator[Tuple[Term, Term]]:
        """Iterate over ``(second, third)`` pairs under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return
        for second, thirds in by_second.items():
            for third in thirds:
                yield second, third

    def triples(self) -> Iterator[Tuple[Term, Term, Term]]:
        """Iterate over every ``(key, second, third)`` entry."""
        for key, by_second in self._index.items():
            for second, thirds in by_second.items():
                for third in thirds:
                    yield key, second, third

    def key_count(self) -> int:
        """Number of distinct keys."""
        return len(self._index)

    def count_for_key(self, key: Term) -> int:
        """Number of entries under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return 0
        return sum(len(thirds) for thirds in by_second.values())

    def second_count_for_key(self, key: Term) -> int:
        """Number of distinct second terms under ``key``."""
        by_second = self._index.get(key)
        return 0 if by_second is None else len(by_second)

    def has_key(self, key: Term) -> bool:
        """Whether any entry exists under ``key``."""
        return key in self._index

    def clear(self) -> None:
        """Remove all entries."""
        self._index.clear()
        self._size = 0
