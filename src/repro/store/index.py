"""Permutation indexes for triples.

Two index families live here:

* :class:`IdTripleIndex` — the store's workhorse since the dictionary
  encoding refactor: a two-level nested index over **integer term IDs**,
  ``key -> second -> sorted array of thirds``.  Integer keys hash and
  compare in a few nanoseconds, and the sorted third-level
  (:class:`SortedList`, a bisect-maintained ``list`` subclass) keeps
  bisect membership, range iteration and sort-merge joins cheap.
* :class:`TripleIndex` — the original hash-based index over full
  :class:`~repro.rdf.terms.Term` objects, kept as a standalone utility (it
  is generic over any hashable key and still used by external callers and
  tests).

Three instances with different orderings (SPO, POS, OSP) give the store
constant-time dispatch for every pattern shape.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterator, Set, Tuple

from repro.rdf.terms import Term


class SortedList(list):
    """A bisect-maintained sorted ``list`` of integers.

    The third-level runs of this store are short (objects per
    ``(subject, predicate)``, subjects per ``(predicate, object)``, ...),
    so a plain list with C-level ``insort`` beats chunked sorted-container
    libraries by a wide margin here — and, crucially for the columnar bulk
    loader, constructing one from an already-sorted run is a plain list
    copy (Timsort recognises sorted input in O(n)).
    """

    __slots__ = ()

    def __init__(self, iterable=()):
        super().__init__(iterable)
        self.sort()

    def add(self, value):
        """Insert ``value`` keeping the list sorted."""
        insort(self, value)

    def update(self, iterable):
        """Merge new values in (one sort instead of one insort per value)."""
        self.extend(iterable)
        self.sort()

    def remove(self, value):
        """Remove ``value``; raises ``ValueError`` when absent."""
        index = bisect_left(self, value)
        if index >= len(self) or self[index] != value:
            raise ValueError(f"{value!r} not in list")
        del self[index]

    def __contains__(self, value):
        index = bisect_left(self, value)
        return index < len(self) and self[index] == value


class IdTripleIndex:
    """A two-level nested index over integer IDs: ``key -> second -> [thirds]``.

    The meaning of the three positions is decided by the caller (the store
    uses subject/predicate/object permutations).  The third level is a
    sorted integer sequence, so membership is a bisect and iteration yields
    IDs in sorted (therefore deterministic) order.
    """

    __slots__ = ("_index", "_size", "_key_counts")

    def __init__(self) -> None:
        self._index: Dict[int, Dict[int, SortedList]] = {}
        self._size = 0
        self._key_counts: Dict[int, int] = {}

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, key: int, second: int, third: int) -> bool:
        """Insert an entry.  Returns ``True`` if it was not already present."""
        by_second = self._index.get(key)
        if by_second is None:
            by_second = {}
            self._index[key] = by_second
        thirds = by_second.get(second)
        if thirds is None:
            thirds = SortedList()
            by_second[second] = thirds
        elif third in thirds:
            return False
        thirds.add(third)
        self._size += 1
        self._key_counts[key] = self._key_counts.get(key, 0) + 1
        return True

    def remove(self, key: int, second: int, third: int) -> bool:
        """Remove an entry.  Returns ``True`` if it was present."""
        by_second = self._index.get(key)
        if by_second is None:
            return False
        thirds = by_second.get(second)
        if thirds is None or third not in thirds:
            return False
        thirds.remove(third)
        self._size -= 1
        remaining = self._key_counts[key] - 1
        if remaining:
            self._key_counts[key] = remaining
        else:
            del self._key_counts[key]
        if not thirds:
            del by_second[second]
        if not by_second:
            del self._index[key]
        return True

    def bulk_extend(self, entries: "list[Tuple[int, int, int]]") -> None:
        """Extend from a **sorted, deduplicated** run of new entries.

        The columnar bulk-load path: ``entries`` must be sorted by
        ``(key, second, third)`` and contain no entry already present in
        the index (the store dedupes against its flat triple map before
        calling this).  Each ``(key, second)`` group is contiguous, so the
        third-level containers are assembled by appending in sorted order
        — no bisect insertion, no re-sort, no intermediate copies.  The
        steady-state cost per entry is one unpack, two comparisons and one
        C-level append; group/key bookkeeping only runs at boundaries.
        """
        if not entries:
            return
        index = self._index
        key_counts = self._key_counts
        make_run = SortedList.__new__

        iterator = iter(entries)
        current_key, current_second, third = next(iterator)
        run = make_run(SortedList)
        run.append(third)
        by_second = index.get(current_key)
        if by_second is None:
            by_second = index[current_key] = {}
        added_for_key = 0

        for key, second, third in iterator:
            if key == current_key and second == current_second:
                run.append(third)
                continue
            existing = by_second.get(current_second)
            if existing is None:
                by_second[current_second] = run
            else:
                existing.update(run)
            added_for_key += len(run)
            run = make_run(SortedList)
            run.append(third)
            current_second = second
            if key != current_key:
                key_counts[current_key] = key_counts.get(current_key, 0) + added_for_key
                added_for_key = 0
                current_key = key
                by_second = index.get(key)
                if by_second is None:
                    by_second = index[key] = {}
        existing = by_second.get(current_second)
        if existing is None:
            by_second[current_second] = run
        else:
            existing.update(run)
        added_for_key += len(run)
        key_counts[current_key] = key_counts.get(current_key, 0) + added_for_key
        self._size += len(entries)

    def bulk_extend_grouped(
        self,
        keys: "list[int]",
        seconds: "list[int]",
        bounds: "list[int]",
        thirds: "list[int]",
    ) -> None:
        """Extend from pre-grouped sorted runs (vectorised bulk-load path).

        ``keys[g]`` / ``seconds[g]`` identify group ``g``; its third IDs are
        ``thirds[bounds[g]:bounds[g + 1]]``, already sorted and all new to
        the index.  The caller (the store's numpy-backed column sorter) has
        done the per-entry work in C, so this loop only runs per *group*.
        """
        if not keys:
            return
        index = self._index
        key_counts = self._key_counts
        make_run = SortedList.__new__
        extend = list.extend
        append = list.append

        current_key = keys[0]
        by_second = index.get(current_key)
        if by_second is None:
            by_second = index[current_key] = {}
        added_for_key = 0
        start = bounds[0]
        for key, second, end in zip(keys, seconds, bounds[1:]):
            if key != current_key:
                key_counts[current_key] = key_counts.get(current_key, 0) + added_for_key
                added_for_key = 0
                current_key = key
                by_second = index.get(key)
                if by_second is None:
                    by_second = index[key] = {}
            existing = by_second.get(second)
            if existing is None:
                run = make_run(SortedList)
                if end - start == 1:  # singleton groups dominate: skip the slice
                    append(run, thirds[start])
                else:
                    extend(run, thirds[start:end])
                by_second[second] = run
            else:
                existing.update(thirds[start:end])
            added_for_key += end - start
            start = end
        key_counts[current_key] = key_counts.get(current_key, 0) + added_for_key
        self._size += len(thirds)

    def clear(self) -> None:
        """Remove all entries."""
        self._index.clear()
        self._key_counts.clear()
        self._size = 0

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def contains(self, key: int, second: int, third: int) -> bool:
        """Membership test for a fully specified entry."""
        by_second = self._index.get(key)
        if by_second is None:
            return False
        thirds = by_second.get(second)
        return thirds is not None and third in thirds

    def keys(self) -> Iterator[int]:
        """Iterate over all distinct keys."""
        return iter(self._index)

    def seconds(self, key: int) -> Iterator[int]:
        """Iterate over the distinct second IDs under ``key``."""
        by_second = self._index.get(key)
        return iter(()) if by_second is None else iter(by_second)

    def thirds(self, key: int, second: int) -> Iterator[int]:
        """Iterate over the third IDs under ``(key, second)`` in sorted order."""
        by_second = self._index.get(key)
        if by_second is None:
            return iter(())
        thirds = by_second.get(second)
        return iter(()) if thirds is None else iter(thirds)

    def sorted_thirds(self, key: int, second: int):
        """The sorted third-level container under ``(key, second)``.

        Returns the container itself (or an empty tuple) so merge joins can
        walk the run without copying.  Callers must not mutate it.
        """
        by_second = self._index.get(key)
        if by_second is None:
            return ()
        return by_second.get(second, ())

    def pairs(self, key: int) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(second, third)`` pairs under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return
        for second, thirds in by_second.items():
            for third in thirds:
                yield second, third

    def items_for_key(self, key: int) -> Iterator[Tuple[int, SortedList]]:
        """Iterate over ``(second, thirds)`` groups under ``key``.

        Exposes the sorted third-level containers directly so callers can
        take ``len`` per group without iterating entries (the statistics
        layer uses this for literal-object counts).
        """
        by_second = self._index.get(key)
        if by_second is None:
            return iter(())
        return iter(by_second.items())

    def triples(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over every ``(key, second, third)`` entry."""
        for key, by_second in self._index.items():
            for second, thirds in by_second.items():
                for third in thirds:
                    yield key, second, third

    # ------------------------------------------------------------------ #
    # Counting (no materialisation)
    # ------------------------------------------------------------------ #
    def key_count(self) -> int:
        """Number of distinct keys."""
        return len(self._index)

    def count_for_key(self, key: int) -> int:
        """Number of entries under ``key`` — O(1) from maintained counts."""
        return self._key_counts.get(key, 0)

    def second_count_for_key(self, key: int) -> int:
        """Number of distinct second IDs under ``key``."""
        by_second = self._index.get(key)
        return 0 if by_second is None else len(by_second)

    def third_count(self, key: int, second: int) -> int:
        """Number of entries under ``(key, second)`` — a pure index lookup."""
        by_second = self._index.get(key)
        if by_second is None:
            return 0
        thirds = by_second.get(second)
        return 0 if thirds is None else len(thirds)

    def distinct_third_count(self, key: int) -> int:
        """Number of distinct third IDs across all seconds under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return 0
        if len(by_second) == 1:
            return len(next(iter(by_second.values())))
        distinct: Set[int] = set()
        for thirds in by_second.values():
            distinct.update(thirds)
        return len(distinct)

    def has_key(self, key: int) -> bool:
        """Whether any entry exists under ``key``."""
        return key in self._index


class TripleIndex:
    """A two-level nested hash index: ``key -> second -> {third}``.

    The original Term-keyed index.  It is generic over any hashable value,
    so it still serves as a general-purpose three-column index; the store
    itself now runs on :class:`IdTripleIndex` over dictionary IDs.
    """

    __slots__ = ("_index", "_size")

    def __init__(self) -> None:
        self._index: Dict[Term, Dict[Term, Set[Term]]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, key: Term, second: Term, third: Term) -> bool:
        """Insert an entry.  Returns ``True`` if it was not already present."""
        by_second = self._index.get(key)
        if by_second is None:
            by_second = {}
            self._index[key] = by_second
        thirds = by_second.get(second)
        if thirds is None:
            thirds = set()
            by_second[second] = thirds
        if third in thirds:
            return False
        thirds.add(third)
        self._size += 1
        return True

    def remove(self, key: Term, second: Term, third: Term) -> bool:
        """Remove an entry.  Returns ``True`` if it was present."""
        by_second = self._index.get(key)
        if by_second is None:
            return False
        thirds = by_second.get(second)
        if thirds is None or third not in thirds:
            return False
        thirds.remove(third)
        self._size -= 1
        if not thirds:
            del by_second[second]
        if not by_second:
            del self._index[key]
        return True

    def contains(self, key: Term, second: Term, third: Term) -> bool:
        """Membership test for a fully specified entry."""
        by_second = self._index.get(key)
        if by_second is None:
            return False
        thirds = by_second.get(second)
        return thirds is not None and third in thirds

    def keys(self) -> Iterator[Term]:
        """Iterate over all distinct keys."""
        return iter(self._index)

    def seconds(self, key: Term) -> Iterator[Term]:
        """Iterate over the distinct second terms under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return iter(())
        return iter(by_second)

    def thirds(self, key: Term, second: Term) -> Iterator[Term]:
        """Iterate over the third terms under ``(key, second)``."""
        by_second = self._index.get(key)
        if by_second is None:
            return iter(())
        thirds = by_second.get(second)
        if thirds is None:
            return iter(())
        return iter(thirds)

    def pairs(self, key: Term) -> Iterator[Tuple[Term, Term]]:
        """Iterate over ``(second, third)`` pairs under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return
        for second, thirds in by_second.items():
            for third in thirds:
                yield second, third

    def triples(self) -> Iterator[Tuple[Term, Term, Term]]:
        """Iterate over every ``(key, second, third)`` entry."""
        for key, by_second in self._index.items():
            for second, thirds in by_second.items():
                for third in thirds:
                    yield key, second, third

    def key_count(self) -> int:
        """Number of distinct keys."""
        return len(self._index)

    def count_for_key(self, key: Term) -> int:
        """Number of entries under ``key``."""
        by_second = self._index.get(key)
        if by_second is None:
            return 0
        return sum(len(thirds) for thirds in by_second.values())

    def second_count_for_key(self, key: Term) -> int:
        """Number of distinct second terms under ``key``."""
        by_second = self._index.get(key)
        return 0 if by_second is None else len(by_second)

    def has_key(self, key: Term) -> bool:
        """Whether any entry exists under ``key``."""
        return key in self._index

    def clear(self) -> None:
        """Remove all entries."""
        self._index.clear()
        self._size = 0
